//! Immutable point-in-time views of a [`SystemState`].
//!
//! The admission service plane (DESIGN.md §13) answers read-only
//! what-if/γ-probe queries *while* a writer batch is mid-transaction.
//! Handing probes a `&SystemState` would expose half-applied mutations,
//! so instead readers take a [`StateSnapshot`]: an owned copy of
//! everything the probe path needs — BE rates, GR reservations, the
//! GR-residual capacities, the resident-priority tracker of eq. (6),
//! and a per-application placement index. Once taken, a snapshot never
//! changes; in-flight transactions (committed *or* rolled back) are
//! invisible to it.
//!
//! A probe then runs the public, side-effect-free pipeline front half:
//! [`StateSnapshot::predicted_capacities`] reproduces the capacity
//! prediction an admission would see, and the result feeds a plain
//! [`crate::DynamicRankingAssigner::assign`] over the same network.

use crate::state::{gr_touched_elements, SystemState};
use crate::system::SparcleSystem;
use sparcle_alloc::predict::PriorityLoads;
use sparcle_model::{AppId, CapacityMap, NetworkElement};

/// One admitted Best-Effort application as captured by a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotBeApp {
    /// System-assigned identifier.
    pub id: AppId,
    /// Proportional-fair priority `P_J`.
    pub priority: f64,
    /// Rate allocated by the most recent committed solve.
    pub allocated_rate: f64,
}

/// One admitted Guaranteed-Rate application as captured by a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotGrApp {
    /// System-assigned identifier.
    pub id: AppId,
    /// The guaranteed rate `R_J`.
    pub guaranteed_rate: f64,
    /// Total capacity-rate reserved across the entry's failover paths.
    pub reserved_rate: f64,
}

/// An immutable, owned view of a [`SystemState`] at one instant.
///
/// Everything a read-only probe needs, detached from the live state:
/// see the module docs. Obtain one with [`SparcleSystem::snapshot`] or
/// [`SystemState::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct StateSnapshot {
    be: Vec<SnapshotBeApp>,
    gr: Vec<SnapshotGrApp>,
    gr_residual: CapacityMap,
    priority_loads: PriorityLoads,
    /// Per-app sorted/deduplicated element footprint, in the same order
    /// as `be` then `gr`.
    placements: Vec<(AppId, Vec<NetworkElement>)>,
}

impl StateSnapshot {
    pub(crate) fn capture(state: &SystemState) -> Self {
        let be: Vec<SnapshotBeApp> = state
            .be_apps
            .iter()
            .map(|a| SnapshotBeApp {
                id: a.id,
                priority: a.priority,
                allocated_rate: a.allocated_rate,
            })
            .collect();
        let gr: Vec<SnapshotGrApp> = state
            .gr_apps
            .iter()
            .map(|a| SnapshotGrApp {
                id: a.id,
                guaranteed_rate: a.guaranteed_rate(),
                reserved_rate: a.reserved_rate(),
            })
            .collect();
        let mut placements = Vec::with_capacity(be.len() + gr.len());
        for entry in &state.be_apps {
            let mut elements = entry.combined_load.loaded_elements();
            elements.sort_unstable();
            elements.dedup();
            placements.push((entry.id, elements));
        }
        for entry in &state.gr_apps {
            placements.push((entry.id, gr_touched_elements(entry)));
        }
        StateSnapshot {
            be,
            gr,
            gr_residual: state.gr_residual.clone(),
            priority_loads: state.priority_loads.clone(),
            placements,
        }
    }

    /// Admitted Best-Effort applications in admission order.
    pub fn be_apps(&self) -> &[SnapshotBeApp] {
        &self.be
    }

    /// Admitted Guaranteed-Rate applications in admission order.
    pub fn gr_apps(&self) -> &[SnapshotGrApp] {
        &self.gr
    }

    /// The BE `allocated_rate`s in admission order — the public face of
    /// the rate vector the undo log snapshots before each solve (and
    /// the arity contract `debug_assert`s guard internally).
    pub fn be_rates(&self) -> Vec<f64> {
        self.be.iter().map(|a| a.allocated_rate).collect()
    }

    /// Capacities remaining after all GR reservations.
    pub fn gr_residual(&self) -> &CapacityMap {
        &self.gr_residual
    }

    /// The capacity an arriving application with `priority` would be
    /// *predicted* to see (eq. (6)) — exactly the map admission's path
    /// search starts from, so feeding it to
    /// [`crate::DynamicRankingAssigner::assign`] yields a faithful
    /// read-only γ-probe.
    ///
    /// # Panics
    ///
    /// Panics if `priority` is not positive and finite.
    pub fn predicted_capacities(&self, priority: f64) -> CapacityMap {
        self.priority_loads.predict(&self.gr_residual, priority)
    }

    /// The rate the identified application carries (BE: last allocated;
    /// GR: guaranteed), or `None` for an unknown id.
    pub fn rate_of(&self, id: AppId) -> Option<f64> {
        if let Some(a) = self.be.iter().find(|a| a.id == id) {
            return Some(a.allocated_rate);
        }
        self.gr
            .iter()
            .find(|a| a.id == id)
            .map(|a| a.guaranteed_rate)
    }

    /// The sorted element footprint of one application, or `None` for an
    /// unknown id.
    pub fn elements_of(&self, id: AppId) -> Option<&[NetworkElement]> {
        self.placements
            .iter()
            .find(|(app, _)| *app == id)
            .map(|(_, elements)| elements.as_slice())
    }

    /// Every application whose placement crosses `element`, in admission
    /// order (BE first, then GR) — the blast-radius query a failure
    /// handler or probe asks.
    pub fn apps_on(&self, element: NetworkElement) -> Vec<AppId> {
        self.placements
            .iter()
            .filter(|(_, elements)| elements.binary_search(&element).is_ok())
            .map(|(id, _)| *id)
            .collect()
    }

    /// Number of applications captured (BE + GR).
    pub fn len(&self) -> usize {
        self.be.len() + self.gr.len()
    }

    /// `true` when no applications were admitted at capture time.
    pub fn is_empty(&self) -> bool {
        self.be.is_empty() && self.gr.is_empty()
    }
}

impl SystemState {
    /// Captures an immutable [`StateSnapshot`] of this state.
    pub fn snapshot(&self) -> StateSnapshot {
        StateSnapshot::capture(self)
    }
}

impl SparcleSystem {
    /// Captures an immutable [`StateSnapshot`] of the current state —
    /// the read side of the service plane's snapshot-read protocol.
    pub fn snapshot(&self) -> StateSnapshot {
        StateSnapshot::capture(self.state())
    }
}

#[cfg(test)]
mod tests {
    use sparcle_model::{
        Application, NcpId, NetworkBuilder, QoeClass, ResourceVec, TaskGraphBuilder,
    };

    use crate::SparcleSystem;

    fn network() -> sparcle_model::Network {
        let mut nb = NetworkBuilder::new();
        let a = nb.add_ncp("a", ResourceVec::cpu(100.0));
        let b = nb.add_ncp("b", ResourceVec::cpu(100.0));
        nb.add_link("ab", a, b, 1000.0).expect("valid link");
        nb.build().expect("valid network")
    }

    fn app(qoe: QoeClass) -> Application {
        let mut tb = TaskGraphBuilder::new();
        let s = tb.add_ct("s", ResourceVec::new());
        let w = tb.add_ct("w", ResourceVec::cpu(10.0));
        let t = tb.add_ct("t", ResourceVec::new());
        tb.add_tt("sw", s, w, 50.0).expect("valid tt");
        tb.add_tt("wt", w, t, 5.0).expect("valid tt");
        Application::new(
            tb.build().expect("valid graph"),
            qoe,
            [(s, NcpId::new(0)), (t, NcpId::new(1))],
        )
        .expect("valid app")
    }

    #[test]
    fn snapshot_matches_live_state() {
        let mut system = SparcleSystem::new(network());
        let be = system
            .submit(app(QoeClass::best_effort(2.0)))
            .expect("valid input")
            .id()
            .expect("admitted");
        let gr = system
            .submit(app(QoeClass::guaranteed_rate(1.0, 0.0)))
            .expect("valid input")
            .id()
            .expect("admitted");

        let snapshot = system.snapshot();
        assert_eq!(snapshot.len(), 2);
        assert!(!snapshot.is_empty());
        assert_eq!(snapshot.be_apps().len(), 1);
        assert_eq!(snapshot.gr_apps().len(), 1);
        assert_eq!(
            snapshot.be_rates(),
            vec![system.be_apps()[0].allocated_rate]
        );
        assert_eq!(
            snapshot.rate_of(be),
            Some(system.be_apps()[0].allocated_rate)
        );
        assert_eq!(snapshot.rate_of(gr), Some(1.0));
        assert_eq!(snapshot.gr_residual(), system.gr_residual());
        assert_eq!(snapshot.rate_of(sparcle_model::AppId::new(99)), None);

        // Both apps cross the single link and both hosts.
        let elements = snapshot.elements_of(be).expect("known id");
        assert!(!elements.is_empty());
        assert!(
            elements.windows(2).all(|w| w[0] < w[1]),
            "sorted: {elements:?}"
        );
        for &element in elements {
            assert!(snapshot.apps_on(element).contains(&be));
        }
    }

    #[test]
    fn predicted_capacities_match_admission_prediction() {
        let mut system = SparcleSystem::new(network());
        system
            .submit(app(QoeClass::best_effort(1.0)))
            .expect("valid input");
        let snapshot = system.snapshot();
        // An equal-priority arrival splits each loaded element in half:
        // predicted = residual * P/(P + resident).
        let predicted = snapshot.predicted_capacities(1.0);
        let residual = snapshot.gr_residual();
        let loaded = snapshot
            .elements_of(snapshot.be_apps()[0].id)
            .expect("known id");
        for &element in loaded {
            let (have, full) = match element {
                sparcle_model::NetworkElement::Ncp(id) => (
                    predicted.ncp(id).amount(sparcle_model::ResourceKind::Cpu),
                    residual.ncp(id).amount(sparcle_model::ResourceKind::Cpu),
                ),
                sparcle_model::NetworkElement::Link(id) => (predicted.link(id), residual.link(id)),
            };
            assert!(
                (have - full / 2.0).abs() < 1e-9,
                "element {element:?}: predicted {have} vs residual {full}"
            );
        }
    }

    #[test]
    fn rolled_back_transactions_leave_snapshots_unperturbed() {
        let mut system = SparcleSystem::new(network());
        system
            .submit(app(QoeClass::best_effort(1.0)))
            .expect("valid input");
        let before = system.snapshot();

        let mut txn = system.begin();
        txn.submit(app(QoeClass::best_effort(3.0)))
            .expect("valid input");
        txn.submit(app(QoeClass::guaranteed_rate(2.0, 0.0)))
            .expect("valid input");
        // The live state has moved, the snapshot has not.
        assert_eq!(txn.system().state().be_apps().len(), 2);
        assert_eq!(before.be_apps().len(), 1);
        txn.rollback();

        let after = system.snapshot();
        assert_eq!(before, after, "rollback must restore the snapshot view");
    }
}
