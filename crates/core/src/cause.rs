//! Cause codes for the decision-provenance plane (DESIGN.md §14).
//!
//! Every negative decision the system makes — rejecting an admission,
//! shedding a queued request, displacing a running app — is attributed
//! to one of the closed cause taxonomies below. The enums replace the
//! ad-hoc reason strings that used to leak into telemetry: emitters
//! attach [`RejectCause::code`]/[`ShedCause::code`]/
//! [`DisplaceCause::code`] to the event's `cause` key, so `sparcle-trace
//! explain` and the summary cause-taxonomy rollup aggregate on stable
//! identifiers while the `detail` renderings keep the binding
//! constraint (bottleneck element, losing availability comparison,
//! writer-busy horizon) human-readable.
//!
//! The code strings are part of the trace schema: renaming one is a
//! breaking change for stored traces, so variants may be added but not
//! reworded.

use crate::system::RejectReason;
use std::fmt;

/// Why an admission (or readmission) was rejected.
///
/// Derived from the richer [`RejectReason`] via [`RejectReason::cause`];
/// the payload carries the binding constraint at decision time.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RejectCause {
    /// No task assignment path with positive rate exists.
    NoPath,
    /// The availability target could not be reached with the configured
    /// maximum number of paths — the losing comparison is attached.
    AvailabilityUnreachable {
        /// Best availability achieved.
        achieved: f64,
        /// The requested target.
        target: f64,
    },
    /// The proportional-fair allocation was infeasible.
    AllocationInfeasible,
    /// A preserved placement no longer fits the current capacities; the
    /// index of the first unfit path is the binding constraint.
    PlacementUnfit {
        /// Index of the first path that no longer fits.
        path: usize,
    },
}

impl RejectCause {
    /// The stable cause code carried on trace lines.
    pub fn code(&self) -> &'static str {
        match self {
            RejectCause::NoPath => "no_path",
            RejectCause::AvailabilityUnreachable { .. } => "availability_unreachable",
            RejectCause::AllocationInfeasible => "allocation_infeasible",
            RejectCause::PlacementUnfit { .. } => "placement_unfit",
        }
    }
}

impl fmt::Display for RejectCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectCause::NoPath => write!(f, "no_path"),
            RejectCause::AvailabilityUnreachable { achieved, target } => {
                write!(
                    f,
                    "availability_unreachable (achieved {achieved:.4} < target {target:.4})"
                )
            }
            RejectCause::AllocationInfeasible => write!(f, "allocation_infeasible"),
            RejectCause::PlacementUnfit { path } => {
                write!(f, "placement_unfit (path {path})")
            }
        }
    }
}

impl RejectReason {
    /// The cause-coded view of this rejection.
    pub fn cause(&self) -> RejectCause {
        match self {
            RejectReason::NoPath(_) => RejectCause::NoPath,
            RejectReason::QoeUnreachable { achieved, target } => {
                RejectCause::AvailabilityUnreachable {
                    achieved: *achieved,
                    target: *target,
                }
            }
            RejectReason::AllocationFailed(_) => RejectCause::AllocationInfeasible,
            RejectReason::PlacementUnfit { path } => RejectCause::PlacementUnfit { path: *path },
        }
    }

    /// Shorthand for `self.cause().code()`.
    pub fn cause_code(&self) -> &'static str {
        self.cause().code()
    }
}

/// Why the admission service shed a queued request before placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ShedCause {
    /// The bounded request queue overflowed and this request lost the
    /// lowest-rank-first comparison.
    QueueOverflow,
    /// The request sat through more deferred windows than its budget
    /// allows.
    DeferBudget,
}

impl ShedCause {
    /// The stable cause code carried on trace lines.
    pub fn code(self) -> &'static str {
        match self {
            ShedCause::QueueOverflow => "queue_overflow",
            ShedCause::DeferBudget => "defer_budget",
        }
    }
}

impl fmt::Display for ShedCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// Why a running application lost its placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DisplaceCause {
    /// A network element its placement routed through failed.
    ElementFailure,
}

impl DisplaceCause {
    /// The stable cause code carried on trace lines.
    pub fn code(self) -> &'static str {
        match self {
            DisplaceCause::ElementFailure => "element_failure",
        }
    }
}

impl fmt::Display for DisplaceCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// Why a placed application was deliberately moved to a new placement
/// (a planned migration, as opposed to a failure-driven displacement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MigrationCause {
    /// A background defragmentation pass found a net-positive move on
    /// the current capacities.
    Defragmentation,
}

impl MigrationCause {
    /// The stable cause code carried on trace lines.
    pub fn code(self) -> &'static str {
        match self {
            MigrationCause::Defragmentation => "defrag_net_gain",
        }
    }
}

impl fmt::Display for MigrationCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// Cause code for a wholesale window deferral (the writer was still
/// busy committing the previous batch). A constant rather than an enum:
/// deferral has exactly one cause today, but the code string is schema
/// like the enum codes above.
pub const DEFER_WRITER_BUSY: &str = "writer_busy";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reject_reasons_map_to_stable_codes() {
        assert_eq!(RejectReason::NoPath("x").cause_code(), "no_path");
        let qoe = RejectReason::QoeUnreachable {
            achieved: 0.5,
            target: 0.9,
        };
        assert_eq!(qoe.cause_code(), "availability_unreachable");
        assert!(qoe.cause().to_string().contains("0.5000"));
        assert_eq!(
            RejectReason::AllocationFailed("solver".into()).cause_code(),
            "allocation_infeasible"
        );
        assert_eq!(
            RejectReason::PlacementUnfit { path: 2 }.cause_code(),
            "placement_unfit"
        );
        assert_eq!(
            RejectReason::PlacementUnfit { path: 2 }.cause().to_string(),
            "placement_unfit (path 2)"
        );
    }

    #[test]
    fn shed_and_displace_codes_are_stable() {
        assert_eq!(ShedCause::QueueOverflow.code(), "queue_overflow");
        assert_eq!(ShedCause::DeferBudget.code(), "defer_budget");
        assert_eq!(DisplaceCause::ElementFailure.code(), "element_failure");
        assert_eq!(ShedCause::DeferBudget.to_string(), "defer_budget");
        assert_eq!(DEFER_WRITER_BUSY, "writer_busy");
    }

    #[test]
    fn migration_codes_are_stable() {
        assert_eq!(MigrationCause::Defragmentation.code(), "defrag_net_gain");
        assert_eq!(
            MigrationCause::Defragmentation.to_string(),
            "defrag_net_gain"
        );
    }
}
