//! SPARCLE's core scheduling algorithms (§IV of the paper).
//!
//! * [`mod@widest_path`] — Algorithm 1: load-aware widest-path routing for
//!   transport tasks (`P*_k(j, j')`, eq. (3)).
//! * [`engine`] — the incremental placement engine computing the paper's
//!   `γ_{i,j}` bottleneck metric (eq. (2)) and committing placements
//!   with widest-path TT routing. Shared with the baseline algorithms.
//! * [`assignment`] — Algorithm 2: the dynamic-ranking task assignment
//!   maximizing an application's stable processing rate, plus multi-path
//!   extraction over residual capacities.
//! * [`system`] — the full SPARCLE pipeline of Figure 3: admission
//!   control for Best-Effort and Guaranteed-Rate applications, capacity
//!   prediction (eq. (6)), availability-driven path addition, GR
//!   reservation, and proportional-fair rate allocation (problem (4)).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod assignment;
pub mod cause;
pub mod engine;
pub mod error;
pub mod snapshot;
pub mod state;
pub mod system;
pub mod trace;
pub mod widest_path;

pub use assignment::{
    assign_multipath, assign_multipath_diverse, assign_multipath_scratch_stats,
    assign_multipath_stats, DynamicRankingAssigner, EvalMode,
};
pub use cause::{DisplaceCause, MigrationCause, RejectCause, ShedCause, DEFER_WRITER_BUSY};
pub use engine::{
    fewest_hops_path, AssignStats, AssignedPath, EngineScratch, GammaRows, PlacementEngine,
    RoutePolicy,
};
pub use error::AssignError;
pub use snapshot::{SnapshotBeApp, SnapshotGrApp, StateSnapshot};
pub use sparcle_model::GraphRepr;
#[cfg(feature = "telemetry")]
pub use sparcle_telemetry as telemetry;
pub use state::{StateMaintenance, StateStats, SystemState};
pub use system::{
    Admission, AllocationPolicy, DisplacedApp, MigrationOutcome, PlacedBeApp, PlacedGrApp,
    RejectReason, SparcleSystem, SystemConfig, SystemTxn,
};
pub use trace::{SpanGuard, TraceHandle};
pub use widest_path::{
    csr_widest_path, csr_widest_path_with, csr_widest_tree, widest_path, widest_path_brute_force,
    widest_path_with, widest_tree, BucketQueue, CsrScratch, CsrWidestTree, DijkstraScratch,
    ReverseAdjacency, WidestPath, WidestTree,
};
