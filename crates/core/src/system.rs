//! The full SPARCLE system pipeline (Figure 3 of the paper).
//!
//! Applications arrive over time and are admitted or rejected:
//!
//! * **Guaranteed-Rate** applications reserve capacity outright. SPARCLE
//!   finds task assignment paths one at a time (Algorithm 2 on the
//!   GR-residual capacities), reserving each path's rate (capped at the
//!   requested `R_J`), until the min-rate availability of eq. (7) meets
//!   the target — or rejects the application, touching nothing.
//! * **Best-Effort** applications share what the GR applications leave.
//!   Arriving BE application `J` first *predicts* its share of each
//!   element via eq. (6) ([`sparcle_alloc::PriorityLoads`]), runs
//!   Algorithm 2 against the predicted capacities, adds paths until its
//!   availability target holds, and then the processing rates of *all*
//!   BE applications are re-computed by solving the weighted
//!   proportional-fair problem (4).
//!
//! Task placements are never migrated after admission (the paper's
//! no-migration constraint); only BE rates are re-allocated.

use crate::assignment::{assign_multipath, DynamicRankingAssigner};
use crate::engine::AssignedPath;
use crate::error::AssignError;
use sparcle_alloc::availability::PathAvailability;
use sparcle_alloc::maxmin::max_min_allocation;
use sparcle_alloc::num::{Allocation, ConstraintSystem, ProportionalFairSolver};
use sparcle_alloc::predict::PriorityLoads;
use sparcle_model::{AppId, Application, CapacityMap, LoadMap, Network, QoeClass};

/// How Best-Effort rates are shared (§IV-C; the paper uses weighted
/// proportional fairness, problem (4)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocationPolicy {
    /// Weighted proportional fairness — the paper's objective
    /// `max Σ P_i log x_i`.
    #[default]
    ProportionalFair,
    /// Weighted max-min fairness (progressive filling): protects the
    /// weakest application absolutely.
    MaxMin,
}

/// Tunables of the system pipeline.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Maximum task assignment paths per application (the paper keeps
    /// this small; path extraction has diminishing returns).
    pub max_paths_per_app: usize,
    /// Paths with a rate at or below this threshold are not used.
    pub min_path_rate: f64,
    /// Solver for the proportional-fair allocation (4).
    pub solver: ProportionalFairSolver,
    /// How Best-Effort rates are shared.
    pub allocation_policy: AllocationPolicy,
    /// Worker threads of the γ evaluator
    /// ([`crate::EvalMode::Cached`]); results are bit-identical for
    /// every thread count.
    pub assigner_threads: usize,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            max_paths_per_app: 8,
            min_path_rate: 1e-9,
            solver: ProportionalFairSolver::new(),
            allocation_policy: AllocationPolicy::ProportionalFair,
            assigner_threads: 1,
        }
    }
}

/// An application lifted out of the system by [`SparcleSystem::displace`]
/// with its placement intact, ready for [`SparcleSystem::readmit`] (which
/// reinstates the exact placement if it still fits) or for a fresh
/// [`SparcleSystem::submit`] of [`DisplacedApp::application`] (which
/// re-runs the full pipeline).
#[derive(Debug, Clone)]
pub enum DisplacedApp {
    /// A displaced Guaranteed-Rate application.
    Gr(PlacedGrApp),
    /// A displaced Best-Effort application.
    Be(PlacedBeApp),
}

impl DisplacedApp {
    /// The id the application held (preserved by
    /// [`SparcleSystem::readmit`]).
    pub fn id(&self) -> AppId {
        match self {
            DisplacedApp::Gr(a) => a.id,
            DisplacedApp::Be(a) => a.id,
        }
    }

    /// The application as originally submitted.
    pub fn application(&self) -> &Application {
        match self {
            DisplacedApp::Gr(a) => &a.app,
            DisplacedApp::Be(a) => &a.app,
        }
    }

    /// `true` for a Guaranteed-Rate application.
    pub fn is_gr(&self) -> bool {
        matches!(self, DisplacedApp::Gr(_))
    }

    /// The rate the application carried when displaced (GR: the
    /// guaranteed rate; BE: the last allocated rate). Reconcile policies
    /// use this as the γ-impact ordering key.
    pub fn displaced_rate(&self) -> f64 {
        match self {
            DisplacedApp::Gr(a) => a.guaranteed_rate(),
            DisplacedApp::Be(a) => a.allocated_rate,
        }
    }

    /// The scheduling weight (GR applications outrank every BE one;
    /// among BE, the proportional-fair priority decides).
    pub fn priority_rank(&self) -> f64 {
        match self {
            DisplacedApp::Gr(_) => f64::INFINITY,
            DisplacedApp::Be(a) => a.priority,
        }
    }
}

/// A Best-Effort application admitted into the system.
#[derive(Debug, Clone)]
pub struct PlacedBeApp {
    /// System-assigned identifier.
    pub id: AppId,
    /// The application as submitted.
    pub app: Application,
    /// Its task assignment paths (at least one).
    pub paths: Vec<AssignedPath>,
    /// Per-unit-rate load: `Σ_p f_p · load_p` with `f_p` the fraction of
    /// the application's rate carried by path `p` (proportional to the
    /// paths' standalone rates).
    pub combined_load: LoadMap,
    /// Priority `P_J`.
    pub priority: f64,
    /// Achieved availability (`None` if no target was requested).
    pub availability: Option<f64>,
    /// Rate allocated by the most recent solve of problem (4).
    pub allocated_rate: f64,
}

/// A Guaranteed-Rate application admitted into the system.
#[derive(Debug, Clone)]
pub struct PlacedGrApp {
    /// System-assigned identifier.
    pub id: AppId,
    /// The application as submitted.
    pub app: Application,
    /// Its task assignment paths with the rate reserved on each.
    pub paths: Vec<(AssignedPath, f64)>,
    /// Achieved min-rate availability (eq. (7)).
    pub min_rate_availability: f64,
    /// The requested minimum rate `R_J`.
    pub min_rate: f64,
}

impl PlacedGrApp {
    /// Total capacity-rate reserved across this application's paths —
    /// redundant failover paths each reserve up to the requested rate,
    /// so this can exceed [`Self::guaranteed_rate`].
    pub fn reserved_rate(&self) -> f64 {
        self.paths.iter().map(|(_, r)| r).sum()
    }

    /// The rate this application is guaranteed (`R_J`).
    pub fn guaranteed_rate(&self) -> f64 {
        self.min_rate
    }
}

/// Why an application was rejected.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RejectReason {
    /// No task assignment path could be found at all.
    NoPath(String),
    /// The requested (min-rate) availability could not be reached with
    /// the configured maximum number of paths.
    QoeUnreachable {
        /// Best availability achieved.
        achieved: f64,
        /// The requested target.
        target: f64,
    },
    /// The proportional-fair allocation failed (e.g. a path was left
    /// with zero capacity).
    AllocationFailed(String),
    /// A [`SparcleSystem::readmit`] found that the preserved placement
    /// no longer fits the current capacities.
    PlacementUnfit {
        /// Index of the first path that no longer fits.
        path: usize,
    },
}

/// The outcome of submitting an application.
#[derive(Debug, Clone, PartialEq)]
pub enum Admission {
    /// Admitted with the given id.
    Admitted(AppId),
    /// Rejected; the system state is unchanged.
    Rejected(RejectReason),
}

impl Admission {
    /// The admitted id, if any.
    pub fn id(&self) -> Option<AppId> {
        match self {
            Admission::Admitted(id) => Some(*id),
            Admission::Rejected(_) => None,
        }
    }

    /// `true` if the application was admitted.
    pub fn is_admitted(&self) -> bool {
        matches!(self, Admission::Admitted(_))
    }
}

/// The SPARCLE scheduling system: admission control, task assignment, and
/// resource allocation over one dispersed computing network.
///
/// # Examples
///
/// ```
/// use sparcle_core::{SparcleSystem};
/// use sparcle_model::{
///     Application, NetworkBuilder, QoeClass, ResourceVec, TaskGraphBuilder,
/// };
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut nb = NetworkBuilder::new();
/// let a = nb.add_ncp("a", ResourceVec::cpu(100.0));
/// let b = nb.add_ncp("b", ResourceVec::cpu(100.0));
/// nb.add_link("ab", a, b, 1000.0)?;
/// let network = nb.build()?;
///
/// let mut tb = TaskGraphBuilder::new();
/// let s = tb.add_ct("s", ResourceVec::new());
/// let w = tb.add_ct("w", ResourceVec::cpu(10.0));
/// let t = tb.add_ct("t", ResourceVec::new());
/// tb.add_tt("sw", s, w, 50.0)?;
/// tb.add_tt("wt", w, t, 5.0)?;
/// let app = Application::new(tb.build()?, QoeClass::best_effort(1.0), [(s, a), (t, b)])?;
///
/// let mut system = SparcleSystem::new(network);
/// let admission = system.submit(app)?;
/// assert!(admission.is_admitted());
/// assert!(system.be_apps()[0].allocated_rate > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SparcleSystem {
    network: Network,
    config: SystemConfig,
    assigner: DynamicRankingAssigner,
    /// The network's current capacities (nominal until a fluctuation is
    /// applied).
    current_capacities: CapacityMap,
    /// Current capacities minus all GR reservations.
    gr_residual: CapacityMap,
    be_apps: Vec<PlacedBeApp>,
    gr_apps: Vec<PlacedGrApp>,
    priority_loads: PriorityLoads,
    next_id: u32,
}

impl SparcleSystem {
    /// Creates a system over `network` with default configuration.
    pub fn new(network: Network) -> Self {
        Self::with_config(network, SystemConfig::default())
    }

    /// Creates a system with explicit configuration.
    pub fn with_config(network: Network, config: SystemConfig) -> Self {
        let current_capacities = network.capacity_map();
        let gr_residual = current_capacities.clone();
        let priority_loads = PriorityLoads::zeroed(&network);
        let assigner = DynamicRankingAssigner::with_threads(config.assigner_threads.max(1));
        SparcleSystem {
            network,
            config,
            assigner,
            current_capacities,
            gr_residual,
            be_apps: Vec::new(),
            gr_apps: Vec::new(),
            priority_loads,
            next_id: 0,
        }
    }

    /// The network the system schedules onto.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Capacities remaining after GR reservations (shared by BE apps).
    pub fn gr_residual(&self) -> &CapacityMap {
        &self.gr_residual
    }

    /// Admitted Best-Effort applications.
    pub fn be_apps(&self) -> &[PlacedBeApp] {
        &self.be_apps
    }

    /// Admitted Guaranteed-Rate applications.
    pub fn gr_apps(&self) -> &[PlacedGrApp] {
        &self.gr_apps
    }

    /// Total *guaranteed* rate of all admitted GR applications (the
    /// Figure 14 metric). Capacity reserved for failover paths is larger;
    /// see [`PlacedGrApp::reserved_rate`].
    pub fn total_gr_rate(&self) -> f64 {
        self.gr_apps.iter().map(PlacedGrApp::guaranteed_rate).sum()
    }

    /// The BE objective `Σ P_J log x_J` at the current allocation.
    pub fn be_utility(&self) -> f64 {
        self.be_apps
            .iter()
            .map(|a| a.priority * a.allocated_rate.ln())
            .sum()
    }

    /// Submits an application; dispatches on its QoE class.
    ///
    /// # Errors
    ///
    /// Returns [`AssignError`] only for malformed inputs (bad pins); a
    /// *feasibility* failure is an [`Admission::Rejected`], not an error.
    pub fn submit(&mut self, app: Application) -> Result<Admission, AssignError> {
        app.check_against_network(&self.network)?;
        match app.qoe().clone() {
            QoeClass::BestEffort {
                priority,
                availability,
            } => self.submit_be(app, priority, availability),
            QoeClass::GuaranteedRate {
                min_rate,
                min_rate_availability,
            } => self.submit_gr(app, min_rate, min_rate_availability),
        }
    }

    fn fresh_id(&mut self) -> AppId {
        let id = AppId::new(self.next_id);
        self.next_id += 1;
        id
    }

    /// Figure 3, steps 1–4 for a BE application.
    fn submit_be(
        &mut self,
        app: Application,
        priority: f64,
        availability_target: Option<f64>,
    ) -> Result<Admission, AssignError> {
        // Step 1: predict available resources via eq. (6).
        let predicted = self.priority_loads.predict(&self.gr_residual, priority);

        // Steps 2–3: add paths until the availability target is met.
        let want_paths = if availability_target.is_some() {
            self.config.max_paths_per_app
        } else {
            1
        };
        let (all_paths, _) = assign_multipath(
            &self.assigner,
            &app,
            &self.network,
            &predicted,
            want_paths,
            self.config.min_path_rate,
        );
        if all_paths.is_empty() {
            return Ok(Admission::Rejected(RejectReason::NoPath(
                "no task assignment path with positive rate".to_owned(),
            )));
        }
        // Keep the minimal prefix of paths satisfying the target.
        let mut paths: Vec<AssignedPath> = Vec::new();
        let mut achieved: Option<f64> = None;
        let mut analyzer = PathAvailability::new();
        for path in all_paths {
            analyzer
                .add_path(
                    &self.network,
                    path.placement.elements_used(&self.network),
                    path.rate,
                )
                .map_err(|e| AssignError::Model(availability_to_model_error(&e)))?;
            paths.push(path);
            let a = analyzer
                .any_working()
                .map_err(|e| AssignError::Model(availability_to_model_error(&e)))?;
            achieved = Some(a);
            match availability_target {
                Some(target) if a + 1e-12 < target => continue,
                _ => break,
            }
        }
        if let (Some(target), Some(a)) = (availability_target, achieved) {
            if a + 1e-12 < target {
                return Ok(Admission::Rejected(RejectReason::QoeUnreachable {
                    achieved: a,
                    target,
                }));
            }
        }

        // Combined per-unit-rate load, splitting rate across paths
        // proportionally to their standalone rates.
        let combined_load = combine_loads(&self.network, &paths);

        let id = self.fresh_id();
        self.priority_loads.add_app(&combined_load, priority);
        self.be_apps.push(PlacedBeApp {
            id,
            app,
            paths,
            combined_load,
            priority,
            availability: availability_target.and(achieved),
            allocated_rate: 0.0,
        });

        // Step 4: re-solve (4) for all BE applications.
        if let Err(e) = self.solve_be_allocation() {
            // Roll back the admission.
            let entry = self.be_apps.pop().expect("just pushed");
            self.priority_loads
                .remove_app(&entry.combined_load, entry.priority);
            // Restore previous rates.
            let _ = self.solve_be_allocation();
            return Ok(Admission::Rejected(RejectReason::AllocationFailed(
                e.to_string(),
            )));
        }
        Ok(Admission::Admitted(id))
    }

    /// §IV-D for a GR application: iterate paths until eq. (7) meets the
    /// target, reserving capacity; all-or-nothing.
    fn submit_gr(
        &mut self,
        app: Application,
        min_rate: f64,
        target: f64,
    ) -> Result<Admission, AssignError> {
        let mut residual = self.gr_residual.clone();
        let mut paths: Vec<(AssignedPath, f64)> = Vec::new();
        let mut analyzer = PathAvailability::new();
        let mut achieved = 0.0;
        for _ in 0..self.config.max_paths_per_app {
            let path = match self.assigner.assign(&app, &self.network, &residual) {
                Ok(p) if p.rate > self.config.min_path_rate && p.rate.is_finite() => p,
                _ => break,
            };
            // Reserving more than R_J on one path buys no QoE.
            let reserved = path.rate.min(min_rate);
            residual.subtract_load(&path.load, reserved);
            analyzer
                .add_path(
                    &self.network,
                    path.placement.elements_used(&self.network),
                    reserved,
                )
                .map_err(|e| AssignError::Model(availability_to_model_error(&e)))?;
            paths.push((path, reserved));
            achieved = analyzer
                .min_rate(min_rate)
                .map_err(|e| AssignError::Model(availability_to_model_error(&e)))?;
            if achieved + 1e-12 >= target {
                break;
            }
        }
        if achieved + 1e-12 < target {
            // Reject without touching system state.
            return Ok(Admission::Rejected(RejectReason::QoeUnreachable {
                achieved,
                target,
            }));
        }
        let id = self.fresh_id();
        self.gr_residual = residual;
        self.gr_apps.push(PlacedGrApp {
            id,
            app,
            paths,
            min_rate_availability: achieved,
            min_rate,
        });
        // GR reservations shrink what BE apps share; re-solve their rates.
        if !self.be_apps.is_empty() {
            let _ = self.solve_be_allocation();
        }
        Ok(Admission::Admitted(id))
    }

    /// Removes an admitted application (departure). GR departures
    /// release their reserved capacity; BE departures trigger a
    /// re-allocation of the remaining BE applications. Returns `false`
    /// when the id is unknown.
    pub fn remove(&mut self, id: AppId) -> bool {
        self.displace(id).is_some()
    }

    /// Removes an admitted application like [`SparcleSystem::remove`],
    /// but hands back the full placed entry so the caller can later
    /// [`SparcleSystem::readmit`] it (exact placement) or resubmit
    /// [`DisplacedApp::application`] from scratch. Returns `None` for an
    /// unknown id.
    ///
    /// This is the churn runtime's displacement primitive: when a
    /// network element fails, every application whose paths cross it is
    /// displaced, queued, and re-placed by the reconcile policy.
    pub fn displace(&mut self, id: AppId) -> Option<DisplacedApp> {
        if let Some(pos) = self.gr_apps.iter().position(|a| a.id == id) {
            let entry = self.gr_apps.remove(pos);
            // Rebuild the residual from the current capacities rather
            // than adding the departed loads back: after a capacity
            // fluctuation, addition would manufacture phantom capacity
            // (the subtraction had been clamped at zero).
            self.recompute_gr_residual();
            if !self.be_apps.is_empty() {
                let _ = self.solve_be_allocation();
            }
            return Some(DisplacedApp::Gr(entry));
        }
        if let Some(pos) = self.be_apps.iter().position(|a| a.id == id) {
            let entry = self.be_apps.remove(pos);
            self.priority_loads
                .remove_app(&entry.combined_load, entry.priority);
            let _ = self.solve_be_allocation();
            return Some(DisplacedApp::Be(entry));
        }
        None
    }

    /// Reinstates a displaced application with its *original* placement
    /// and id, without re-running task assignment.
    ///
    /// * **GR**: every path's reservation must still fit the current
    ///   GR-residual capacities (checked sequentially, all-or-nothing);
    ///   on success the reservations are re-subtracted exactly as
    ///   admission did, so capacity accounting round-trips bit-for-bit.
    /// * **BE**: the placement is reinstalled and problem (4) re-solved;
    ///   a solver failure rolls back and rejects.
    ///
    /// This is the cheap path after a transient failure: if the element
    /// recovered, the old placement is still optimal-enough and costs no
    /// γ evaluation. A rejection leaves the system untouched — fall back
    /// to `submit(displaced.application().clone())` for a fresh search.
    ///
    /// # Panics
    ///
    /// Panics if the displaced id is still admitted (double readmit).
    pub fn readmit(&mut self, displaced: DisplacedApp) -> Admission {
        let id = displaced.id();
        assert!(
            self.gr_apps.iter().all(|a| a.id != id) && self.be_apps.iter().all(|a| a.id != id),
            "readmit of an id that is still admitted: {id:?}"
        );
        // Keep fresh ids from colliding with the preserved one.
        self.next_id = self.next_id.max(id.as_u32() + 1);
        match displaced {
            DisplacedApp::Gr(entry) => {
                let mut residual = self.gr_residual.clone();
                for (i, (path, rate)) in entry.paths.iter().enumerate() {
                    if residual.bottleneck_rate(&path.load) + 1e-9 < *rate {
                        return Admission::Rejected(RejectReason::PlacementUnfit { path: i });
                    }
                    residual.subtract_load(&path.load, *rate);
                }
                self.gr_residual = residual;
                self.gr_apps.push(entry);
                if !self.be_apps.is_empty() {
                    let _ = self.solve_be_allocation();
                }
                Admission::Admitted(id)
            }
            DisplacedApp::Be(mut entry) => {
                entry.allocated_rate = 0.0;
                self.priority_loads
                    .add_app(&entry.combined_load, entry.priority);
                self.be_apps.push(entry);
                if let Err(e) = self.solve_be_allocation() {
                    let entry = self.be_apps.pop().expect("just pushed");
                    self.priority_loads
                        .remove_app(&entry.combined_load, entry.priority);
                    let _ = self.solve_be_allocation();
                    return Admission::Rejected(RejectReason::AllocationFailed(e.to_string()));
                }
                Admission::Admitted(id)
            }
        }
    }

    /// Ids of all admitted applications (GR first, then BE, each in
    /// admission order).
    pub fn app_ids(&self) -> Vec<AppId> {
        self.gr_apps
            .iter()
            .map(|a| a.id)
            .chain(self.be_apps.iter().map(|a| a.id))
            .collect()
    }

    /// `true` when `id` is currently admitted.
    pub fn contains(&self, id: AppId) -> bool {
        self.gr_apps.iter().any(|a| a.id == id) || self.be_apps.iter().any(|a| a.id == id)
    }

    /// Ids of admitted applications with at least one task assignment
    /// path crossing `element` (GR first, then BE, each in admission
    /// order) — the blast radius of an element failure.
    pub fn apps_using_element(&self, element: sparcle_model::NetworkElement) -> Vec<AppId> {
        let uses = |placement: &sparcle_model::Placement| {
            placement.elements_used(&self.network).contains(&element)
        };
        let gr = self
            .gr_apps
            .iter()
            .filter(|a| a.paths.iter().any(|(p, _)| uses(&p.placement)))
            .map(|a| a.id);
        let be = self
            .be_apps
            .iter()
            .filter(|a| a.paths.iter().any(|p| uses(&p.placement)))
            .map(|a| a.id);
        gr.chain(be).collect()
    }

    /// Reacts to a computing-network capacity fluctuation (the paper's
    /// stated future-work direction): replaces the base capacities with
    /// `new_capacities` (same shape as the network), re-derives the
    /// GR-residual by subtracting the existing GR reservations, and
    /// re-solves the BE allocation. Placements are *not* migrated — only
    /// rates adapt, consistent with the no-migration constraint.
    ///
    /// Returns the ids of GR applications whose reservations no longer
    /// fit the new capacities (their guarantee is violated until
    /// capacity recovers or the caller removes and resubmits them).
    ///
    /// # Panics
    ///
    /// Panics if `new_capacities` does not match the network shape.
    pub fn apply_capacity_fluctuation(&mut self, new_capacities: CapacityMap) -> Vec<AppId> {
        assert_eq!(
            new_capacities.ncp_count(),
            self.network.ncp_count(),
            "capacity map must match the network"
        );
        assert_eq!(
            new_capacities.link_count(),
            self.network.link_count(),
            "capacity map must match the network"
        );
        self.current_capacities = new_capacities;
        let mut residual = self.current_capacities.clone();
        let mut violated = Vec::new();
        for gr in &self.gr_apps {
            for (path, rate) in &gr.paths {
                // Check fit before subtracting (subtraction clamps).
                let fits = residual.bottleneck_rate(&path.load) + 1e-9 >= *rate;
                if !fits && !violated.contains(&gr.id) {
                    violated.push(gr.id);
                }
                residual.subtract_load(&path.load, *rate);
            }
        }
        self.gr_residual = residual;
        if !self.be_apps.is_empty() {
            let _ = self.solve_be_allocation();
        }
        violated
    }

    /// Rebuilds `gr_residual` as the current capacities minus every
    /// admitted GR reservation.
    fn recompute_gr_residual(&mut self) {
        let mut residual = self.current_capacities.clone();
        for gr in &self.gr_apps {
            for (path, rate) in &gr.paths {
                residual.subtract_load(&path.load, *rate);
            }
        }
        self.gr_residual = residual;
    }

    /// Re-schedules an admitted application from scratch: releases its
    /// current placement, runs the full admission pipeline again on the
    /// freed capacities, and — if the fresh admission fails — reinstates
    /// the old placement untouched.
    ///
    /// This is the *migration* escape hatch for capacity fluctuation:
    /// when [`Self::apply_capacity_fluctuation`] flags a GR application,
    /// `reschedule` finds it new paths that fit the shrunken network (or
    /// proves none exist). It deliberately breaks the paper's
    /// no-migration rule, so it is never invoked implicitly.
    ///
    /// Returns `None` for an unknown id; `Some(admission)` otherwise,
    /// where a rejection means the old placement is still in force.
    pub fn reschedule(&mut self, id: AppId) -> Option<Admission> {
        if let Some(pos) = self.gr_apps.iter().position(|a| a.id == id) {
            let entry = self.gr_apps[pos].clone();
            self.remove(id);
            let admission = self
                .submit(entry.app.clone())
                .expect("previously admitted apps are well-formed");
            if !admission.is_admitted() {
                // Reinstate the old reservation.
                self.gr_apps.push(entry);
                self.recompute_gr_residual();
                let _ = self.solve_be_allocation();
            }
            return Some(admission);
        }
        if let Some(pos) = self.be_apps.iter().position(|a| a.id == id) {
            let entry = self.be_apps[pos].clone();
            self.remove(id);
            let admission = self
                .submit(entry.app.clone())
                .expect("previously admitted apps are well-formed");
            if !admission.is_admitted() {
                self.priority_loads
                    .add_app(&entry.combined_load, entry.priority);
                self.be_apps.push(entry);
                let _ = self.solve_be_allocation();
            }
            return Some(admission);
        }
        None
    }

    /// Solves problem (4) over all admitted BE applications against the
    /// GR-residual capacities and stores each `allocated_rate`.
    ///
    /// # Errors
    ///
    /// Propagates solver errors (infeasible / unconstrained columns).
    pub fn solve_be_allocation(&mut self) -> Result<Option<Allocation>, sparcle_alloc::AllocError> {
        if self.be_apps.is_empty() {
            return Ok(None);
        }
        let loads: Vec<&LoadMap> = self.be_apps.iter().map(|a| &a.combined_load).collect();
        let priorities: Vec<f64> = self.be_apps.iter().map(|a| a.priority).collect();
        let system = ConstraintSystem::from_loads(&self.network, &self.gr_residual, &loads);
        let allocation = match self.config.allocation_policy {
            AllocationPolicy::ProportionalFair => {
                // Warm-start from the incumbent rates when every app
                // already has one (epoch re-allocations); cold-start on
                // admission (the newcomer's rate is still zero).
                let previous: Vec<f64> = self.be_apps.iter().map(|a| a.allocated_rate).collect();
                if previous.iter().all(|&r| r > 0.0) {
                    self.config
                        .solver
                        .solve_warm(&system, &priorities, &previous)?
                } else {
                    self.config.solver.solve(&system, &priorities)?
                }
            }
            AllocationPolicy::MaxMin => {
                let mm = max_min_allocation(&system, &priorities)?;
                let utility = priorities
                    .iter()
                    .zip(&mm.rates)
                    .map(|(&p, &x)| p * x.ln())
                    .sum();
                Allocation {
                    rates: mm.rates,
                    duals: vec![0.0; system.rows().len()],
                    utility,
                }
            }
        };
        for (entry, &rate) in self.be_apps.iter_mut().zip(&allocation.rates) {
            entry.allocated_rate = rate;
        }
        Ok(Some(allocation))
    }
}

/// Merges per-path loads into one per-unit-rate load, weighting each path
/// by its share of the total standalone rate.
fn combine_loads(network: &Network, paths: &[AssignedPath]) -> LoadMap {
    let total: f64 = paths.iter().map(|p| p.rate).sum();
    let mut combined = LoadMap::zeroed(network);
    if total <= 0.0 {
        return combined;
    }
    for path in paths {
        combined.merge_scaled(&path.load, path.rate / total);
    }
    combined
}

fn availability_to_model_error(e: &sparcle_alloc::AvailabilityError) -> sparcle_model::ModelError {
    sparcle_model::ModelError::InvalidQuantity {
        what: "availability analysis",
        value: match e {
            sparcle_alloc::AvailabilityError::TooManyElements(n) => *n as f64,
            sparcle_alloc::AvailabilityError::TooManyPaths(n) => *n as f64,
            sparcle_alloc::AvailabilityError::BadProbability(p) => *p,
            _ => f64::NAN,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparcle_model::{NcpId, NetworkBuilder, ResourceVec, TaskGraphBuilder};

    fn star_network(failure: f64) -> Network {
        let mut nb = NetworkBuilder::new();
        let hub = nb.add_ncp("hub", ResourceVec::cpu(50.0));
        for i in 0..4 {
            let leaf = nb
                .add_ncp_with_failure(format!("leaf{i}"), ResourceVec::cpu(100.0), 0.0)
                .unwrap();
            nb.add_link_full(
                format!("l{i}"),
                hub,
                leaf,
                500.0,
                sparcle_model::LinkDirection::Undirected,
                failure,
            )
            .unwrap();
        }
        nb.build().unwrap()
    }

    fn simple_app(qoe: QoeClass, cycles: f64, bits: f64) -> Application {
        let mut tb = TaskGraphBuilder::new();
        let s = tb.add_ct("s", ResourceVec::new());
        let w = tb.add_ct("w", ResourceVec::cpu(cycles));
        let t = tb.add_ct("t", ResourceVec::new());
        tb.add_tt("sw", s, w, bits).unwrap();
        tb.add_tt("wt", w, t, bits / 10.0).unwrap();
        let graph = tb.build().unwrap();
        Application::new(graph, qoe, [(s, NcpId::new(0)), (t, NcpId::new(0))]).unwrap()
    }

    #[test]
    fn single_be_app_gets_its_bottleneck_rate() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        let adm = sys
            .submit(simple_app(QoeClass::best_effort(1.0), 10.0, 50.0))
            .unwrap();
        assert!(adm.is_admitted());
        let app = &sys.be_apps()[0];
        assert_eq!(app.paths.len(), 1);
        assert!(
            (app.allocated_rate - app.paths[0].rate).abs() < 1e-4,
            "allocated {} vs path {}",
            app.allocated_rate,
            app.paths[0].rate
        );
    }

    #[test]
    fn two_equal_be_apps_share_fairly() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        sys.submit(simple_app(QoeClass::best_effort(1.0), 10.0, 50.0))
            .unwrap();
        sys.submit(simple_app(QoeClass::best_effort(1.0), 10.0, 50.0))
            .unwrap();
        let r0 = sys.be_apps()[0].allocated_rate;
        let r1 = sys.be_apps()[1].allocated_rate;
        assert!(r0 > 0.0 && r1 > 0.0);
        // With symmetric apps the rates should be within a few percent.
        assert!((r0 - r1).abs() / r0.max(r1) < 0.25, "r0={r0} r1={r1}");
    }

    #[test]
    fn priority_2x_app_gets_more() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        sys.submit(simple_app(QoeClass::best_effort(1.0), 100.0, 5000.0))
            .unwrap();
        sys.submit(simple_app(QoeClass::best_effort(2.0), 100.0, 5000.0))
            .unwrap();
        let r0 = sys.be_apps()[0].allocated_rate;
        let r1 = sys.be_apps()[1].allocated_rate;
        assert!(r1 > r0, "higher priority should earn more: {r0} vs {r1}");
    }

    #[test]
    fn be_availability_adds_paths() {
        let net = star_network(0.02);
        let mut sys = SparcleSystem::new(net);
        let qoe = QoeClass::BestEffort {
            priority: 1.0,
            availability: Some(0.9),
        };
        // Heavy enough that the worker leaves the hub, making links (and
        // their 2% failure) part of the path.
        let adm = sys.submit(simple_app(qoe, 500.0, 10.0)).unwrap();
        assert!(adm.is_admitted(), "{adm:?}");
        let app = &sys.be_apps()[0];
        if let Some(a) = app.availability {
            assert!(a + 1e-12 >= 0.9, "availability {a}");
        }
    }

    #[test]
    fn gr_app_reserves_capacity() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        let adm = sys
            .submit(simple_app(QoeClass::guaranteed_rate(2.0, 0.9), 10.0, 50.0))
            .unwrap();
        assert!(adm.is_admitted());
        assert!((sys.total_gr_rate() - 2.0).abs() < 1e-9);
        let gr = &sys.gr_apps()[0];
        assert!(gr.min_rate_availability >= 0.9);
        // The hub lost 10 cycles/unit × 2 units/s = 20 CPU if the worker
        // stayed local, or a leaf did. Either way total capacity shrank.
        let full = sys.network().capacity_map();
        let mut shrank = false;
        for ncp in sys.network().ncp_ids() {
            if sys
                .gr_residual()
                .ncp(ncp)
                .amount(sparcle_model::ResourceKind::Cpu)
                < full.ncp(ncp).amount(sparcle_model::ResourceKind::Cpu) - 1e-9
            {
                shrank = true;
            }
        }
        assert!(shrank);
    }

    #[test]
    fn infeasible_gr_is_rejected_without_side_effects() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        let before = sys.gr_residual().clone();
        let adm = sys
            .submit(simple_app(QoeClass::guaranteed_rate(1e9, 0.9), 10.0, 50.0))
            .unwrap();
        assert!(!adm.is_admitted());
        assert_eq!(sys.gr_apps().len(), 0);
        assert_eq!(sys.gr_residual(), &before);
    }

    #[test]
    fn gr_then_be_shares_residual() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        sys.submit(simple_app(QoeClass::guaranteed_rate(3.0, 0.5), 10.0, 50.0))
            .unwrap();
        let adm = sys
            .submit(simple_app(QoeClass::best_effort(1.0), 10.0, 50.0))
            .unwrap();
        assert!(adm.is_admitted());
        let be_rate = sys.be_apps()[0].allocated_rate;
        assert!(be_rate > 0.0);
        // A lone BE app on the untouched network would beat this.
        let mut fresh = SparcleSystem::new(star_network(0.0));
        fresh
            .submit(simple_app(QoeClass::best_effort(1.0), 10.0, 50.0))
            .unwrap();
        assert!(fresh.be_apps()[0].allocated_rate >= be_rate - 1e-9);
    }

    #[test]
    fn unreachable_be_availability_rejects() {
        // Make every link extremely flaky; even max paths cannot reach
        // 0.99999 availability when the worker must leave the hub.
        let mut nb = NetworkBuilder::new();
        let hub = nb.add_ncp("hub", ResourceVec::cpu(0.0));
        let leaf = nb
            .add_ncp_with_failure("leaf", ResourceVec::cpu(100.0), 0.5)
            .unwrap();
        nb.add_link_full(
            "l",
            hub,
            leaf,
            500.0,
            sparcle_model::LinkDirection::Undirected,
            0.5,
        )
        .unwrap();
        let net = nb.build().unwrap();
        let mut sys = SparcleSystem::new(net);
        let qoe = QoeClass::BestEffort {
            priority: 1.0,
            availability: Some(0.99999),
        };
        let adm = sys.submit(simple_app(qoe, 500.0, 10.0)).unwrap();
        assert!(matches!(
            adm,
            Admission::Rejected(RejectReason::QoeUnreachable { .. })
        ));
        assert!(sys.be_apps().is_empty());
    }

    #[test]
    fn ids_are_unique_and_increasing() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        let a = sys
            .submit(simple_app(QoeClass::best_effort(1.0), 10.0, 50.0))
            .unwrap();
        let b = sys
            .submit(simple_app(QoeClass::best_effort(1.0), 10.0, 50.0))
            .unwrap();
        assert!(a.id().unwrap() < b.id().unwrap());
    }

    #[test]
    fn gr_departure_releases_capacity() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        let before = sys.gr_residual().clone();
        let adm = sys
            .submit(simple_app(QoeClass::guaranteed_rate(2.0, 0.9), 10.0, 50.0))
            .unwrap();
        let id = adm.id().unwrap();
        assert_ne!(sys.gr_residual(), &before);
        assert!(sys.remove(id));
        // Capacity restored to within rounding.
        for ncp in sys.network().ncp_ids() {
            let a = sys
                .gr_residual()
                .ncp(ncp)
                .amount(sparcle_model::ResourceKind::Cpu);
            let b = before.ncp(ncp).amount(sparcle_model::ResourceKind::Cpu);
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        assert!(!sys.remove(id), "double removal reports false");
    }

    #[test]
    fn be_departure_reallocates_survivor() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        let a = sys
            .submit(simple_app(QoeClass::best_effort(1.0), 100.0, 5000.0))
            .unwrap()
            .id()
            .unwrap();
        sys.submit(simple_app(QoeClass::best_effort(1.0), 100.0, 5000.0))
            .unwrap();
        let shared_rate = sys.be_apps().iter().map(|x| x.allocated_rate).sum::<f64>();
        assert!(sys.remove(a));
        assert_eq!(sys.be_apps().len(), 1);
        let solo_rate = sys.be_apps()[0].allocated_rate;
        // The survivor should gain at least something whenever the two
        // apps contended (they may not have; then rates are equal).
        assert!(solo_rate + 1e-9 >= shared_rate / 2.0);
    }

    #[test]
    fn capacity_fluctuation_rescales_be_rates() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        sys.submit(simple_app(QoeClass::best_effort(1.0), 10.0, 50.0))
            .unwrap();
        let before = sys.be_apps()[0].allocated_rate;
        // Halve every capacity.
        let mut halved = sys.network().capacity_map();
        for ncp in sys.network().ncp_ids() {
            halved.ncp_mut(ncp).scale(0.5);
        }
        for link in sys.network().link_ids() {
            let bw = halved.link(link);
            halved.set_link(link, bw * 0.5);
        }
        let violated = sys.apply_capacity_fluctuation(halved);
        assert!(violated.is_empty());
        let after = sys.be_apps()[0].allocated_rate;
        assert!(
            (after - before * 0.5).abs() / before < 0.05,
            "rate should halve: {before} -> {after}"
        );
    }

    #[test]
    fn capacity_fluctuation_flags_broken_gr() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        let id = sys
            .submit(simple_app(QoeClass::guaranteed_rate(2.0, 0.9), 10.0, 50.0))
            .unwrap()
            .id()
            .unwrap();
        // Collapse the network to 1 % capacity.
        let mut tiny = sys.network().capacity_map();
        for ncp in sys.network().ncp_ids() {
            tiny.ncp_mut(ncp).scale(0.01);
        }
        for link in sys.network().link_ids() {
            let bw = tiny.link(link);
            tiny.set_link(link, bw * 0.01);
        }
        let violated = sys.apply_capacity_fluctuation(tiny);
        assert_eq!(violated, vec![id]);
    }

    #[test]
    fn reschedule_finds_new_gr_paths_after_fluctuation() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        let id = sys
            .submit(simple_app(QoeClass::guaranteed_rate(2.0, 0.9), 10.0, 50.0))
            .unwrap()
            .id()
            .unwrap();
        // Shrink capacity to 10 %: the old single-path reservation is
        // violated, but a fresh multi-path schedule still covers the
        // 2 units/s across several leaves.
        let mut caps = sys.network().capacity_map();
        for ncp in sys.network().ncp_ids() {
            caps.ncp_mut(ncp).scale(0.1);
        }
        for link in sys.network().link_ids() {
            let bw = caps.link(link);
            caps.set_link(link, bw * 0.1);
        }
        let violated = sys.apply_capacity_fluctuation(caps);
        assert_eq!(violated, vec![id]);
        let admission = sys.reschedule(id).expect("known id");
        assert!(admission.is_admitted(), "{admission:?}");
        assert_eq!(sys.gr_apps().len(), 1);
        // The new reservation fits the shrunken capacities.
        let gr = &sys.gr_apps()[0];
        assert!((gr.guaranteed_rate() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn reschedule_reinstates_on_failure() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        let id = sys
            .submit(simple_app(QoeClass::guaranteed_rate(2.0, 0.9), 10.0, 50.0))
            .unwrap()
            .id()
            .unwrap();
        // Collapse the network so a fresh schedule is impossible.
        let mut caps = sys.network().capacity_map();
        for ncp in sys.network().ncp_ids() {
            caps.ncp_mut(ncp).scale(1e-6);
        }
        for link in sys.network().link_ids() {
            let bw = caps.link(link);
            caps.set_link(link, bw * 1e-6);
        }
        sys.apply_capacity_fluctuation(caps);
        let before = sys.gr_apps()[0].clone();
        let admission = sys.reschedule(id).expect("known id");
        assert!(!admission.is_admitted());
        // Old placement still in force.
        assert_eq!(sys.gr_apps().len(), 1);
        assert_eq!(sys.gr_apps()[0].id, before.id);
        assert_eq!(sys.gr_apps()[0].paths.len(), before.paths.len());
    }

    #[test]
    fn reschedule_unknown_id_is_none() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        assert!(sys.reschedule(AppId::new(42)).is_none());
    }

    #[test]
    fn displace_then_readmit_round_trips_exactly() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        let gr_id = sys
            .submit(simple_app(QoeClass::guaranteed_rate(2.0, 0.9), 10.0, 50.0))
            .unwrap()
            .id()
            .unwrap();
        let be_id = sys
            .submit(simple_app(QoeClass::best_effort(1.0), 10.0, 50.0))
            .unwrap()
            .id()
            .unwrap();
        let residual_before = sys.gr_residual().clone();
        let be_rate_before = sys.be_apps()[0].allocated_rate;

        let displaced = sys.displace(gr_id).expect("known id");
        assert!(displaced.is_gr());
        assert_eq!(displaced.id(), gr_id);
        assert!(!sys.contains(gr_id));
        let adm = sys.readmit(displaced);
        assert_eq!(adm.id(), Some(gr_id));
        assert_eq!(sys.gr_residual(), &residual_before, "exact round-trip");

        let displaced = sys.displace(be_id).expect("known id");
        let adm = sys.readmit(displaced);
        assert_eq!(adm.id(), Some(be_id));
        assert!(
            (sys.be_apps()[0].allocated_rate - be_rate_before).abs() < 1e-9,
            "BE rate restored"
        );
        // Fresh ids never collide with preserved ones.
        let next = sys
            .submit(simple_app(QoeClass::best_effort(1.0), 10.0, 50.0))
            .unwrap()
            .id()
            .unwrap();
        assert!(next > be_id);
    }

    #[test]
    fn readmit_rejects_when_placement_no_longer_fits() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        let id = sys
            .submit(simple_app(QoeClass::guaranteed_rate(2.0, 0.9), 10.0, 50.0))
            .unwrap()
            .id()
            .unwrap();
        let displaced = sys.displace(id).expect("known id");
        // Crush the network so the old reservation cannot fit.
        let mut tiny = sys.network().capacity_map();
        for ncp in sys.network().ncp_ids() {
            tiny.ncp_mut(ncp).scale(1e-6);
        }
        for link in sys.network().link_ids() {
            let bw = tiny.link(link);
            tiny.set_link(link, bw * 1e-6);
        }
        sys.apply_capacity_fluctuation(tiny);
        let before = sys.gr_residual().clone();
        let adm = sys.readmit(displaced);
        assert!(matches!(
            adm,
            Admission::Rejected(RejectReason::PlacementUnfit { .. })
        ));
        assert_eq!(sys.gr_residual(), &before, "rejection leaves no trace");
        assert!(!sys.contains(id));
    }

    #[test]
    fn apps_using_element_finds_the_blast_radius() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        let id = sys
            .submit(simple_app(QoeClass::best_effort(1.0), 10.0, 50.0))
            .unwrap()
            .id()
            .unwrap();
        // The app's endpoints are pinned on the hub, so the hub is
        // always in the blast radius.
        let hub = sparcle_model::NetworkElement::Ncp(NcpId::new(0));
        assert_eq!(sys.apps_using_element(hub), vec![id]);
        // Union over all elements covers every app.
        let mut seen = std::collections::BTreeSet::new();
        for e in sys.network().elements().collect::<Vec<_>>() {
            seen.extend(sys.apps_using_element(e));
        }
        assert!(seen.contains(&id));
    }

    #[test]
    fn max_min_policy_is_selectable() {
        let net = star_network(0.0);
        let config = SystemConfig {
            allocation_policy: AllocationPolicy::MaxMin,
            ..SystemConfig::default()
        };
        let mut sys = SparcleSystem::with_config(net, config);
        sys.submit(simple_app(QoeClass::best_effort(1.0), 100.0, 5000.0))
            .unwrap();
        sys.submit(simple_app(QoeClass::best_effort(1.0), 100.0, 5000.0))
            .unwrap();
        for be in sys.be_apps() {
            assert!(be.allocated_rate > 0.0);
        }
        // Joint feasibility under the max-min rates.
        let mut demand = LoadMap::zeroed(sys.network());
        for be in sys.be_apps() {
            demand.merge_scaled(&be.combined_load, be.allocated_rate);
        }
        assert!(sys.gr_residual().bottleneck_rate(&demand) >= 1.0 - 1e-9);
    }

    #[test]
    fn be_utility_matches_definition() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        sys.submit(simple_app(QoeClass::best_effort(2.0), 10.0, 50.0))
            .unwrap();
        let expect = 2.0 * sys.be_apps()[0].allocated_rate.ln();
        assert!((sys.be_utility() - expect).abs() < 1e-12);
    }
}
