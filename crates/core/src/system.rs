//! The full SPARCLE system pipeline (Figure 3 of the paper).
//!
//! Applications arrive over time and are admitted or rejected:
//!
//! * **Guaranteed-Rate** applications reserve capacity outright. SPARCLE
//!   finds task assignment paths one at a time (Algorithm 2 on the
//!   GR-residual capacities), reserving each path's rate (capped at the
//!   requested `R_J`), until the min-rate availability of eq. (7) meets
//!   the target — or rejects the application, touching nothing.
//! * **Best-Effort** applications share what the GR applications leave.
//!   Arriving BE application `J` first *predicts* its share of each
//!   element via eq. (6) ([`sparcle_alloc::PriorityLoads`]), runs
//!   Algorithm 2 against the predicted capacities, adds paths until its
//!   availability target holds, and then the processing rates of *all*
//!   BE applications are re-computed by solving the weighted
//!   proportional-fair problem (4).
//!
//! Task placements are never migrated *implicitly* (the paper's
//! no-migration constraint): admission and rate re-allocation alone
//! never move a placed application. Planned moves are an explicit,
//! transactional operation — [`SystemTxn::migrate`] atomically releases
//! a placement and re-runs the admission pipeline inside one undo log,
//! so a rejected move is invisible and a committed one is a single
//! atomic placement change.
//!
//! ## Transactions
//!
//! All mutation flows through [`SystemTxn`] ([`SparcleSystem::begin`]):
//! each operation records undo steps into the transaction's log, and a
//! rollback (explicit, or implicit when the transaction is dropped)
//! replays them in reverse, restoring the state bitwise (see
//! [`crate::state`] for the invariant that makes this exact). The
//! convenience methods ([`SparcleSystem::submit`],
//! [`SparcleSystem::displace`], …) each open, run, and commit one
//! transaction. Rollback-only transactions are cheap what-if probes:
//! submit a displaced application, read the rate it would get, roll
//! back, and the system — including the id counter and every BE rate —
//! is exactly as before.

use crate::assignment::{assign_multipath_scratch_stats, DynamicRankingAssigner};
use crate::engine::AssignedPath;
use crate::engine::EngineScratch;
use crate::error::AssignError;
use crate::state::{
    gr_touched_elements, StateMaintenance, StateStats, SystemState, TxnLog, UndoOp,
};
use sparcle_alloc::availability::PathAvailability;
use sparcle_alloc::maxmin::max_min_allocation;
use sparcle_alloc::num::{Allocation, ConstraintSystem, ProportionalFairSolver};
use sparcle_model::{AppId, Application, CapacityMap, GraphRepr, LoadMap, Network, QoeClass};
use std::sync::Arc;

/// How Best-Effort rates are shared (§IV-C; the paper uses weighted
/// proportional fairness, problem (4)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocationPolicy {
    /// Weighted proportional fairness — the paper's objective
    /// `max Σ P_i log x_i`.
    #[default]
    ProportionalFair,
    /// Weighted max-min fairness (progressive filling): protects the
    /// weakest application absolutely.
    MaxMin,
}

/// Tunables of the system pipeline.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Maximum task assignment paths per application (the paper keeps
    /// this small; path extraction has diminishing returns).
    pub max_paths_per_app: usize,
    /// Paths with a rate at or below this threshold are not used.
    pub min_path_rate: f64,
    /// Solver for the proportional-fair allocation (4).
    pub solver: ProportionalFairSolver,
    /// How Best-Effort rates are shared.
    pub allocation_policy: AllocationPolicy,
    /// Worker threads of the γ evaluator
    /// ([`crate::EvalMode::Cached`]); results are bit-identical for
    /// every thread count.
    pub assigner_threads: usize,
    /// Graph representation the γ evaluator traverses
    /// ([`GraphRepr::Csr`] by default); results are bit-identical for
    /// both, only speed differs.
    pub graph_repr: GraphRepr,
    /// How derived state (GR residual, priority loads, constraint
    /// matrix) is maintained. [`StateMaintenance::Incremental`] and
    /// [`StateMaintenance::Scratch`] produce bitwise-identical results;
    /// the scratch path exists as the differential-testing reference.
    pub maintenance: StateMaintenance,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            max_paths_per_app: 8,
            min_path_rate: 1e-9,
            solver: ProportionalFairSolver::new(),
            allocation_policy: AllocationPolicy::ProportionalFair,
            assigner_threads: 1,
            graph_repr: GraphRepr::default(),
            maintenance: StateMaintenance::Incremental,
        }
    }
}

/// An application lifted out of the system by [`SparcleSystem::displace`]
/// with its placement intact, ready for [`SparcleSystem::readmit`] (which
/// reinstates the exact placement if it still fits) or for a fresh
/// [`SparcleSystem::submit`] of [`DisplacedApp::application_arc`] (which
/// re-runs the full pipeline).
#[derive(Debug, Clone)]
pub enum DisplacedApp {
    /// A displaced Guaranteed-Rate application.
    Gr(PlacedGrApp),
    /// A displaced Best-Effort application.
    Be(PlacedBeApp),
}

impl DisplacedApp {
    /// The id the application held (preserved by
    /// [`SparcleSystem::readmit`]).
    pub fn id(&self) -> AppId {
        match self {
            DisplacedApp::Gr(a) => a.id,
            DisplacedApp::Be(a) => a.id,
        }
    }

    /// The application as originally submitted.
    pub fn application(&self) -> &Application {
        match self {
            DisplacedApp::Gr(a) => &a.app,
            DisplacedApp::Be(a) => &a.app,
        }
    }

    /// The application as originally submitted, as a cheap shared
    /// handle — resubmitting via this avoids cloning the task graph.
    pub fn application_arc(&self) -> Arc<Application> {
        match self {
            DisplacedApp::Gr(a) => a.app.clone(),
            DisplacedApp::Be(a) => a.app.clone(),
        }
    }

    /// `true` for a Guaranteed-Rate application.
    pub fn is_gr(&self) -> bool {
        matches!(self, DisplacedApp::Gr(_))
    }

    /// The rate the application carried when displaced (GR: the
    /// guaranteed rate; BE: the last allocated rate). Reconcile policies
    /// use this as the γ-impact ordering key.
    pub fn displaced_rate(&self) -> f64 {
        match self {
            DisplacedApp::Gr(a) => a.guaranteed_rate(),
            DisplacedApp::Be(a) => a.allocated_rate,
        }
    }

    /// The scheduling weight (GR applications outrank every BE one;
    /// among BE, the proportional-fair priority decides).
    pub fn priority_rank(&self) -> f64 {
        match self {
            DisplacedApp::Gr(_) => f64::INFINITY,
            DisplacedApp::Be(a) => a.priority,
        }
    }
}

/// The result of one planned migration ([`SystemTxn::migrate`]): the
/// application was atomically lifted and the admission pipeline re-run
/// on the freed capacities inside the same undo log.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationOutcome {
    /// The id the application held before the move.
    pub old_id: AppId,
    /// Rate before the move (guaranteed rate for GR, allocated rate for
    /// BE).
    pub old_rate: f64,
    /// The fresh admission: `Admitted(new_id)` when the move landed,
    /// `Rejected(..)` when the move was unwound and the old placement
    /// kept.
    pub admission: Admission,
}

impl MigrationOutcome {
    /// `true` when the application now sits on its new placement.
    pub fn moved(&self) -> bool {
        self.admission.is_admitted()
    }

    /// The id under the new placement (`None` when the move was
    /// rejected and the old placement — and id — kept).
    pub fn new_id(&self) -> Option<AppId> {
        self.admission.id()
    }
}

/// A Best-Effort application admitted into the system.
#[derive(Debug, Clone)]
pub struct PlacedBeApp {
    /// System-assigned identifier.
    pub id: AppId,
    /// The application as submitted (shared — placements referencing
    /// the same submission clone only the handle).
    pub app: Arc<Application>,
    /// Its task assignment paths (at least one).
    pub paths: Vec<AssignedPath>,
    /// Per-unit-rate load: `Σ_p f_p · load_p` with `f_p` the fraction of
    /// the application's rate carried by path `p` (proportional to the
    /// paths' standalone rates).
    pub combined_load: LoadMap,
    /// Priority `P_J`.
    pub priority: f64,
    /// Achieved availability (`None` if no target was requested).
    pub availability: Option<f64>,
    /// Rate allocated by the most recent solve of problem (4).
    pub allocated_rate: f64,
}

/// A Guaranteed-Rate application admitted into the system.
#[derive(Debug, Clone)]
pub struct PlacedGrApp {
    /// System-assigned identifier.
    pub id: AppId,
    /// The application as submitted (shared).
    pub app: Arc<Application>,
    /// Its task assignment paths with the rate reserved on each.
    pub paths: Vec<(AssignedPath, f64)>,
    /// Achieved min-rate availability (eq. (7)).
    pub min_rate_availability: f64,
    /// The requested minimum rate `R_J`.
    pub min_rate: f64,
}

impl PlacedGrApp {
    /// Total capacity-rate reserved across this application's paths —
    /// redundant failover paths each reserve up to the requested rate,
    /// so this can exceed [`Self::guaranteed_rate`].
    pub fn reserved_rate(&self) -> f64 {
        self.paths.iter().map(|(_, r)| r).sum()
    }

    /// The rate this application is guaranteed (`R_J`).
    pub fn guaranteed_rate(&self) -> f64 {
        self.min_rate
    }
}

/// Why an application was rejected.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RejectReason {
    /// No task assignment path could be found at all.
    NoPath(&'static str),
    /// The requested (min-rate) availability could not be reached with
    /// the configured maximum number of paths.
    QoeUnreachable {
        /// Best availability achieved.
        achieved: f64,
        /// The requested target.
        target: f64,
    },
    /// The proportional-fair allocation failed (e.g. a path was left
    /// with zero capacity).
    AllocationFailed(String),
    /// A [`SparcleSystem::readmit`] found that the preserved placement
    /// no longer fits the current capacities.
    PlacementUnfit {
        /// Index of the first path that no longer fits.
        path: usize,
    },
}

/// The outcome of submitting an application.
#[derive(Debug, Clone, PartialEq)]
pub enum Admission {
    /// Admitted with the given id.
    Admitted(AppId),
    /// Rejected; the system state is unchanged.
    Rejected(RejectReason),
}

impl Admission {
    /// The admitted id, if any.
    pub fn id(&self) -> Option<AppId> {
        match self {
            Admission::Admitted(id) => Some(*id),
            Admission::Rejected(_) => None,
        }
    }

    /// `true` if the application was admitted.
    pub fn is_admitted(&self) -> bool {
        matches!(self, Admission::Admitted(_))
    }
}

/// The SPARCLE scheduling system: admission control, task assignment, and
/// resource allocation over one dispersed computing network.
///
/// # Examples
///
/// ```
/// use sparcle_core::{SparcleSystem};
/// use sparcle_model::{
///     Application, NetworkBuilder, QoeClass, ResourceVec, TaskGraphBuilder,
/// };
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut nb = NetworkBuilder::new();
/// let a = nb.add_ncp("a", ResourceVec::cpu(100.0));
/// let b = nb.add_ncp("b", ResourceVec::cpu(100.0));
/// nb.add_link("ab", a, b, 1000.0)?;
/// let network = nb.build()?;
///
/// let mut tb = TaskGraphBuilder::new();
/// let s = tb.add_ct("s", ResourceVec::new());
/// let w = tb.add_ct("w", ResourceVec::cpu(10.0));
/// let t = tb.add_ct("t", ResourceVec::new());
/// tb.add_tt("sw", s, w, 50.0)?;
/// tb.add_tt("wt", w, t, 5.0)?;
/// let app = Application::new(tb.build()?, QoeClass::best_effort(1.0), [(s, a), (t, b)])?;
///
/// let mut system = SparcleSystem::new(network);
/// let admission = system.submit(app)?;
/// assert!(admission.is_admitted());
/// assert!(system.be_apps()[0].allocated_rate > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SparcleSystem {
    network: Network,
    config: SystemConfig,
    assigner: DynamicRankingAssigner,
    state: SystemState,
    /// Hoisted placement-engine buffers, reused by every assignment the
    /// system runs (admissions, reconcile probes, migration probes) so
    /// probe loops stay off the allocator for content-independent
    /// scratch. Carries no placement state — rollback never touches it.
    engine_scratch: EngineScratch,
}

impl SparcleSystem {
    /// Creates a system over `network` with default configuration.
    pub fn new(network: Network) -> Self {
        Self::with_config(network, SystemConfig::default())
    }

    /// Creates a system with explicit configuration.
    pub fn with_config(network: Network, config: SystemConfig) -> Self {
        let assigner = DynamicRankingAssigner::with_threads(config.assigner_threads.max(1))
            .with_repr(config.graph_repr);
        let state = SystemState::new(&network);
        SparcleSystem {
            network,
            config,
            assigner,
            state,
            engine_scratch: EngineScratch::default(),
        }
    }

    /// The network the system schedules onto.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The full mutable state (admitted apps, capacities, residuals) as
    /// a read-only view.
    pub fn state(&self) -> &SystemState {
        &self.state
    }

    /// Work counters of the state core: solves (warm/cold split),
    /// residual recomputations, transaction commits and rollbacks.
    pub fn state_stats(&self) -> &StateStats {
        self.state.stats()
    }

    /// Capacities remaining after GR reservations (shared by BE apps).
    pub fn gr_residual(&self) -> &CapacityMap {
        self.state.gr_residual()
    }

    /// Admitted Best-Effort applications.
    pub fn be_apps(&self) -> &[PlacedBeApp] {
        self.state.be_apps()
    }

    /// Admitted Guaranteed-Rate applications.
    pub fn gr_apps(&self) -> &[PlacedGrApp] {
        self.state.gr_apps()
    }

    /// Total *guaranteed* rate of all admitted GR applications (the
    /// Figure 14 metric). Capacity reserved for failover paths is larger;
    /// see [`PlacedGrApp::reserved_rate`].
    pub fn total_gr_rate(&self) -> f64 {
        self.state
            .gr_apps()
            .iter()
            .map(PlacedGrApp::guaranteed_rate)
            .sum()
    }

    /// The BE objective `Σ P_J log x_J` at the current allocation.
    pub fn be_utility(&self) -> f64 {
        self.state
            .be_apps()
            .iter()
            .map(|a| a.priority * a.allocated_rate.ln())
            .sum()
    }

    /// Opens a transaction. Mutations made through the returned handle
    /// become permanent on [`SystemTxn::commit`]; [`SystemTxn::rollback`]
    /// (or dropping the handle) restores the state bitwise.
    pub fn begin(&mut self) -> SystemTxn<'_> {
        SystemTxn {
            sys: self,
            log: TxnLog::default(),
        }
    }

    /// Submits an application; dispatches on its QoE class. Accepts an
    /// owned [`Application`] or a shared `Arc<Application>`.
    ///
    /// # Errors
    ///
    /// Returns [`AssignError`] only for malformed inputs (bad pins); a
    /// *feasibility* failure is an [`Admission::Rejected`], not an error.
    pub fn submit(&mut self, app: impl Into<Arc<Application>>) -> Result<Admission, AssignError> {
        let mut txn = self.begin();
        let admission = txn.submit(app)?;
        txn.commit();
        Ok(admission)
    }

    /// Submits a batch of applications in one transaction with a single
    /// BE re-solve at the end (see [`SystemTxn::submit_all`]): decisions
    /// are bitwise identical to sequential submission, at one solve per
    /// batch instead of one per admission. An error unwinds the whole
    /// batch.
    ///
    /// # Errors
    ///
    /// Returns [`AssignError`] only for malformed inputs (bad pins);
    /// feasibility failures are per-application [`Admission::Rejected`]
    /// entries.
    pub fn submit_batch(
        &mut self,
        apps: &[Arc<Application>],
    ) -> Result<Vec<Admission>, AssignError> {
        let mut txn = self.begin();
        let admissions = txn.submit_all(apps)?;
        txn.commit();
        Ok(admissions)
    }

    /// Removes an admitted application (departure). GR departures
    /// release their reserved capacity; BE departures trigger a
    /// re-allocation of the remaining BE applications. Returns `false`
    /// when the id is unknown.
    pub fn remove(&mut self, id: AppId) -> bool {
        self.displace(id).is_some()
    }

    /// Removes an admitted application like [`SparcleSystem::remove`],
    /// but hands back the full placed entry so the caller can later
    /// [`SparcleSystem::readmit`] it (exact placement) or resubmit
    /// [`DisplacedApp::application_arc`] from scratch. Returns `None`
    /// for an unknown id.
    ///
    /// This is the churn runtime's displacement primitive: when a
    /// network element fails, every application whose paths cross it is
    /// displaced, queued, and re-placed by the reconcile policy.
    pub fn displace(&mut self, id: AppId) -> Option<DisplacedApp> {
        let mut txn = self.begin();
        if !txn.displace(id) {
            return None;
        }
        txn.commit().into_iter().next()
    }

    /// Displaces every listed application in one transaction with a
    /// single BE re-solve at the end, returning the placed entries in
    /// `ids` order. A failure's whole blast radius should leave through
    /// this: per-removal intermediate allocations are never observable,
    /// so computing them is pure waste.
    ///
    /// # Panics
    ///
    /// Panics if any id is not admitted.
    pub fn displace_batch(&mut self, ids: &[AppId]) -> Vec<DisplacedApp> {
        let mut txn = self.begin();
        txn.displace_all(ids);
        txn.commit()
    }

    /// Reinstates a displaced application with its *original* placement
    /// and id, without re-running task assignment.
    ///
    /// * **GR**: every path's reservation must still fit the current
    ///   GR-residual capacities (checked sequentially, all-or-nothing);
    ///   on success the reservations are re-subtracted exactly as
    ///   admission did, so capacity accounting round-trips bit-for-bit.
    /// * **BE**: the placement is reinstalled and problem (4) re-solved;
    ///   a solver failure rolls back and rejects.
    ///
    /// This is the cheap path after a transient failure: if the element
    /// recovered, the old placement is still optimal-enough and costs no
    /// γ evaluation. A rejection leaves the system untouched — fall back
    /// to `submit(displaced.application_arc())` for a fresh search (or
    /// use [`SparcleSystem::try_readmit`] to get the entry back without
    /// cloning it up front).
    ///
    /// # Panics
    ///
    /// Panics if the displaced id is still admitted (double readmit).
    pub fn readmit(&mut self, displaced: DisplacedApp) -> Admission {
        match self.try_readmit(displaced) {
            Ok(id) => Admission::Admitted(id),
            Err((_, reason)) => Admission::Rejected(reason),
        }
    }

    /// Like [`SparcleSystem::readmit`], but a rejection returns the
    /// displaced entry (with its pre-displacement rate intact) along
    /// with the reason, so callers keep ownership without cloning.
    ///
    /// # Panics
    ///
    /// Panics if the displaced id is still admitted (double readmit).
    // The wide Err is the point: it hands the entry back without a clone.
    #[allow(clippy::result_large_err)]
    pub fn try_readmit(
        &mut self,
        displaced: DisplacedApp,
    ) -> Result<AppId, (DisplacedApp, RejectReason)> {
        let id = displaced.id();
        assert!(
            !self.contains(id),
            "readmit of an id that is still admitted: {id:?}"
        );
        let mut txn = self.begin();
        match txn.readmit_inner(displaced) {
            Ok(id) => {
                txn.commit();
                Ok(id)
            }
            Err(out) => {
                // The log is already unwound; dropping the empty
                // transaction is free.
                drop(txn);
                Err(out)
            }
        }
    }

    /// Ids of all admitted applications (GR first, then BE, each in
    /// admission order).
    pub fn app_ids(&self) -> Vec<AppId> {
        self.state
            .gr_apps()
            .iter()
            .map(|a| a.id)
            .chain(self.state.be_apps().iter().map(|a| a.id))
            .collect()
    }

    /// `true` when `id` is currently admitted.
    pub fn contains(&self, id: AppId) -> bool {
        self.state.gr_apps().iter().any(|a| a.id == id)
            || self.state.be_apps().iter().any(|a| a.id == id)
    }

    /// Ids of admitted applications with at least one task assignment
    /// path crossing `element` (GR first, then BE, each in admission
    /// order) — the blast radius of an element failure.
    pub fn apps_using_element(&self, element: sparcle_model::NetworkElement) -> Vec<AppId> {
        let uses = |placement: &sparcle_model::Placement| {
            placement.elements_used(&self.network).contains(&element)
        };
        let gr = self
            .state
            .gr_apps()
            .iter()
            .filter(|a| a.paths.iter().any(|(p, _)| uses(&p.placement)))
            .map(|a| a.id);
        let be = self
            .state
            .be_apps()
            .iter()
            .filter(|a| a.paths.iter().any(|p| uses(&p.placement)))
            .map(|a| a.id);
        gr.chain(be).collect()
    }

    /// Reacts to a computing-network capacity fluctuation (the paper's
    /// stated future-work direction): replaces the base capacities with
    /// `new_capacities` (same shape as the network), re-derives the
    /// GR-residual by subtracting the existing GR reservations, and
    /// re-solves the BE allocation. Placements are *not* migrated — only
    /// rates adapt, consistent with the no-migration constraint.
    ///
    /// Returns the ids of GR applications whose reservations no longer
    /// fit the new capacities (sorted by id, deduplicated); their
    /// guarantee is violated until capacity recovers or the caller
    /// removes and resubmits them.
    ///
    /// # Panics
    ///
    /// Panics if `new_capacities` does not match the network shape or
    /// contains negative / non-finite entries.
    pub fn apply_capacity_fluctuation(&mut self, new_capacities: CapacityMap) -> Vec<AppId> {
        assert_eq!(
            new_capacities.ncp_count(),
            self.network.ncp_count(),
            "capacity map must match the network"
        );
        assert_eq!(
            new_capacities.link_count(),
            self.network.link_count(),
            "capacity map must match the network"
        );
        assert!(
            new_capacities.is_finite_non_negative(),
            "capacities must be finite and non-negative"
        );
        let mut txn = self.begin();
        let violated = txn.apply_fluctuation(new_capacities);
        txn.commit();
        violated
    }

    /// Re-schedules an admitted application from scratch: releases its
    /// current placement, runs the full admission pipeline again on the
    /// freed capacities, and — if the fresh admission fails — rolls the
    /// whole transaction back, reinstating the old placement (and every
    /// BE rate) exactly.
    ///
    /// This is the *migration* escape hatch for capacity fluctuation:
    /// when [`Self::apply_capacity_fluctuation`] flags a GR application,
    /// `reschedule` finds it new paths that fit the shrunken network (or
    /// proves none exist). It deliberately breaks the paper's
    /// no-migration rule, so it is never invoked implicitly. For a
    /// planned move inside a larger transaction (or one whose
    /// displaced-seconds the caller wants to budget), use
    /// [`SystemTxn::migrate`] / [`SparcleSystem::migrate`] instead — the
    /// first-class primitive this wrapper predates.
    ///
    /// Returns `None` for an unknown id; `Some(admission)` otherwise,
    /// where a rejection means the old placement is still in force.
    pub fn reschedule(&mut self, id: AppId) -> Option<Admission> {
        let app: Arc<Application> = self
            .state
            .gr_apps()
            .iter()
            .find(|a| a.id == id)
            .map(|a| a.app.clone())
            .or_else(|| {
                self.state
                    .be_apps()
                    .iter()
                    .find(|a| a.id == id)
                    .map(|a| a.app.clone())
            })?;
        let mut txn = self.begin();
        txn.displace(id);
        let admission = txn
            .submit(app)
            .expect("previously admitted apps are well-formed");
        if admission.is_admitted() {
            txn.commit();
        } else {
            txn.rollback();
        }
        Some(admission)
    }

    /// Migrates an admitted application to a fresh placement in one
    /// transaction (see [`SystemTxn::migrate`]): commits when the move
    /// lands, rolls back — leaving the old placement bitwise intact —
    /// when the fresh admission fails. Returns `None` for an unknown id.
    pub fn migrate(&mut self, id: AppId) -> Option<MigrationOutcome> {
        let mut txn = self.begin();
        let outcome = txn.migrate(id)?;
        if outcome.moved() {
            txn.commit();
        } else {
            txn.rollback();
        }
        Some(outcome)
    }

    /// Solves problem (4) over all admitted BE applications against the
    /// GR-residual capacities and stores each `allocated_rate`.
    ///
    /// # Errors
    ///
    /// Propagates solver errors (infeasible / unconstrained columns).
    pub fn solve_be_allocation(&mut self) -> Result<Option<Allocation>, sparcle_alloc::AllocError> {
        self.solve_be_internal()
    }

    /// Re-solves the BE allocation: refresh the incrementally-maintained
    /// constraint system (or rebuild it, in scratch mode) and run the
    /// solver warm-started from the incumbent rates. The solver demotes
    /// itself to a bitwise-cold start when no incumbent rate is usable
    /// (first admission, lone readmit).
    fn solve_be_internal(&mut self) -> Result<Option<Allocation>, sparcle_alloc::AllocError> {
        if self.state.be_apps().is_empty() {
            return Ok(None);
        }
        let t0 = std::time::Instant::now();
        let state = &mut self.state;
        let priorities: Vec<f64> = state.be_apps.iter().map(|a| a.priority).collect();
        let scratch;
        let system: &ConstraintSystem = match self.config.maintenance {
            StateMaintenance::Incremental => {
                state.constraints.refresh_capacities(&state.gr_residual);
                state.constraints.system()
            }
            StateMaintenance::Scratch => {
                let loads: Vec<&LoadMap> = state.be_apps.iter().map(|a| &a.combined_load).collect();
                scratch = ConstraintSystem::from_loads(&self.network, &state.gr_residual, &loads);
                &scratch
            }
        };
        let (allocation, solve_stats) = match self.config.allocation_policy {
            AllocationPolicy::ProportionalFair => {
                let previous: Vec<f64> = state.be_apps.iter().map(|a| a.allocated_rate).collect();
                let (allocation, stats) =
                    self.config
                        .solver
                        .solve_warm_with_stats(system, &priorities, &previous)?;
                (allocation, Some(stats))
            }
            AllocationPolicy::MaxMin => {
                let mm = max_min_allocation(system, &priorities)?;
                let utility = priorities
                    .iter()
                    .zip(&mm.rates)
                    .map(|(&p, &x)| p * x.ln())
                    .sum();
                (
                    Allocation {
                        rates: mm.rates,
                        duals: vec![0.0; system.rows().len()],
                        utility,
                    },
                    None,
                )
            }
        };
        state.stats.solves += 1;
        match solve_stats {
            Some(s) if s.warm_started => {
                state.stats.warm_solves += 1;
                state.stats.inner_iters_warm += s.inner_iters as u64;
            }
            Some(s) => {
                state.stats.cold_solves += 1;
                state.stats.inner_iters_cold += s.inner_iters as u64;
            }
            None => {}
        }
        state.stats.solve_nanos += t0.elapsed().as_nanos() as u64;
        for (entry, &rate) in state.be_apps.iter_mut().zip(&allocation.rates) {
            entry.allocated_rate = rate;
        }
        Ok(Some(allocation))
    }
}

/// An open transaction over a [`SparcleSystem`].
///
/// Every mutating operation appends undo records; [`Self::commit`] makes
/// the changes permanent, while [`Self::rollback`] — or dropping the
/// handle — replays the records in reverse, restoring the pre-transaction
/// state bitwise (BE rates, residuals, priority loads, constraint
/// matrix, and the id counter included).
#[derive(Debug)]
pub struct SystemTxn<'a> {
    sys: &'a mut SparcleSystem,
    log: TxnLog,
}

impl SystemTxn<'_> {
    /// Read access to the system mid-transaction (e.g. to inspect the
    /// rate a probe submission would receive before rolling back).
    pub fn system(&self) -> &SparcleSystem {
        self.sys
    }

    /// Submits an application inside this transaction (see
    /// [`SparcleSystem::submit`]).
    ///
    /// # Errors
    ///
    /// Returns [`AssignError`] for malformed inputs; the transaction's
    /// earlier operations stay intact (the failed submission itself is
    /// unwound).
    pub fn submit(&mut self, app: impl Into<Arc<Application>>) -> Result<Admission, AssignError> {
        self.submit_inner(app.into(), false)
    }

    fn submit_inner(
        &mut self,
        app: Arc<Application>,
        defer_solve: bool,
    ) -> Result<Admission, AssignError> {
        app.check_against_network(&self.sys.network)?;
        match app.qoe().clone() {
            QoeClass::BestEffort {
                priority,
                availability,
            } => self.submit_be(app, priority, availability, defer_solve),
            QoeClass::GuaranteedRate {
                min_rate,
                min_rate_availability,
            } => self.submit_gr(app, min_rate, min_rate_availability, defer_solve),
        }
    }

    /// Submits a whole batch of applications with **one** BE re-solve at
    /// the end instead of one per admission — the micro-batch admission
    /// the service plane coalesces arrivals into (the write-side dual of
    /// [`Self::displace_all`]).
    ///
    /// Decisions are bitwise identical to submitting the batch
    /// sequentially: admission control reads only the GR residual and
    /// the resident-priority tracker (never the incumbent BE
    /// `allocated_rate`s), so deferring the solve cannot change any
    /// reject/admit outcome, path set, reservation, or assigned id.
    /// Only the *final* BE rates are solved jointly (warm-started from
    /// the pre-batch incumbents) rather than through the chain of
    /// intermediate allocations — intermediates no caller can observe.
    /// A batch of one is bitwise identical to [`Self::submit`], rates
    /// included.
    ///
    /// If the batch-final solve fails, the whole batch is unwound and
    /// replayed through the sequential path, so per-application
    /// [`RejectReason::AllocationFailed`] attribution matches the
    /// sequential semantics exactly.
    ///
    /// # Errors
    ///
    /// Returns [`AssignError`] for malformed inputs (bad pins); the
    /// whole batch is unwound — all-or-nothing, unlike feasibility
    /// rejections which are per-application [`Admission`] values.
    pub fn submit_all(&mut self, apps: &[Arc<Application>]) -> Result<Vec<Admission>, AssignError> {
        let batch = self.log.savepoint();
        let mut admissions = Vec::with_capacity(apps.len());
        let mut deferred = false;
        for app in apps {
            match self.submit_inner(Arc::clone(app), true) {
                Ok(admission) => {
                    deferred |= admission.is_admitted();
                    admissions.push(admission);
                }
                Err(e) => {
                    self.unwind_to(batch);
                    return Err(e);
                }
            }
        }
        if deferred && !self.sys.state.be_apps.is_empty() {
            self.log
                .push(UndoOp::RestoreRates(self.sys.state.snapshot_rates()));
            if self.sys.solve_be_internal().is_err() {
                // The joint solve failed where the sequential chain
                // might partially succeed: fall back to the sequential
                // path for exact per-application attribution.
                self.unwind_to(batch);
                admissions.clear();
                for app in apps {
                    admissions.push(self.submit_inner(Arc::clone(app), false)?);
                }
            }
        }
        Ok(admissions)
    }

    /// Displaces an admitted application inside this transaction. The
    /// entry is handed out by [`Self::commit`]; a rollback reinstates it
    /// at its original position. Returns `false` for an unknown id.
    pub fn displace(&mut self, id: AppId) -> bool {
        self.displace_inner(id, true)
    }

    /// Displaces every listed application, then re-solves the BE
    /// allocation **once** instead of after every removal — the batch
    /// form a failure's blast radius wants. The removals and the final
    /// rates land in the same transaction, so a rollback restores every
    /// entry and every rate bitwise.
    ///
    /// # Panics
    ///
    /// Panics if any id is not admitted (the batch is taken from the
    /// system's own index, so a miss is caller corruption).
    pub fn displace_all(&mut self, ids: &[AppId]) -> usize {
        let mut removed = 0;
        for &id in ids {
            assert!(
                self.displace_inner(id, false),
                "batch displace of unknown id {id:?}"
            );
            removed += 1;
        }
        if removed > 0 && !self.sys.state.be_apps.is_empty() {
            self.log
                .push(UndoOp::RestoreRates(self.sys.state.snapshot_rates()));
            let _ = self.sys.solve_be_internal();
        }
        removed
    }

    fn displace_inner(&mut self, id: AppId, solve: bool) -> bool {
        let mode = self.sys.config.maintenance;
        let sys = &mut *self.sys;
        if let Some(pos) = sys.state.gr_apps.iter().position(|a| a.id == id) {
            let entry = sys.state.gr_apps.remove(pos);
            let touched = gr_touched_elements(&entry);
            sys.state.refresh_residual(mode, &touched);
            self.log.push(UndoOp::InsertGr(pos, entry));
            if solve && !sys.state.be_apps.is_empty() {
                self.log
                    .push(UndoOp::RestoreRates(sys.state.snapshot_rates()));
                let _ = sys.solve_be_internal();
            }
            return true;
        }
        if let Some(pos) = sys.state.be_apps.iter().position(|a| a.id == id) {
            let entry = sys.state.be_apps.remove(pos);
            if mode == StateMaintenance::Incremental {
                sys.state.constraints.remove_app(pos);
            }
            let touched = entry.combined_load.loaded_elements();
            sys.state.refresh_priorities(&sys.network, mode, &touched);
            self.log.push(UndoOp::InsertBe(pos, entry));
            if solve {
                self.log
                    .push(UndoOp::RestoreRates(sys.state.snapshot_rates()));
                let _ = sys.solve_be_internal();
            }
            return true;
        }
        false
    }

    /// Atomically moves an admitted application to a fresh placement
    /// inside this transaction: the current placement is released
    /// (delta-maintaining residuals and priority loads), the full
    /// admission pipeline re-runs on the freed capacities, and the BE
    /// allocation is re-solved **once** over the combined remove +
    /// re-place — never the intermediate state a displace + resubmit
    /// pair would expose.
    ///
    /// Both halves share one undo log: if the fresh admission fails,
    /// the migration unwinds to its own savepoint, reinstating the old
    /// placement (and every BE rate, and the id counter) bitwise while
    /// leaving the transaction's earlier operations intact; and a
    /// rollback of the enclosing transaction undoes a *successful* move
    /// just as exactly — which is what makes rollback-only migration
    /// what-if probes free. Returns `None` for an unknown id.
    pub fn migrate(&mut self, id: AppId) -> Option<MigrationOutcome> {
        let (app, old_rate) = {
            let state = &self.sys.state;
            if let Some(a) = state.gr_apps.iter().find(|a| a.id == id) {
                (a.app.clone(), a.guaranteed_rate())
            } else if let Some(a) = state.be_apps.iter().find(|a| a.id == id) {
                (a.app.clone(), a.allocated_rate)
            } else {
                return None;
            }
        };
        let savepoint = self.log.savepoint();
        // Lift without the intermediate BE solve: the submission half
        // solves once over the final membership.
        assert!(
            self.displace_inner(id, false),
            "id was found in the state above"
        );
        let admission = self
            .submit_inner(app, false)
            .expect("previously admitted apps are well-formed");
        if !admission.is_admitted() {
            self.unwind_to(savepoint);
        }
        Some(MigrationOutcome {
            old_id: id,
            old_rate,
            admission,
        })
    }

    /// Makes the transaction's changes permanent. Returns the entries
    /// displaced during the transaction (ownership leaves the log here,
    /// so displacement never clones a placement).
    pub fn commit(mut self) -> Vec<DisplacedApp> {
        let mut displaced = Vec::new();
        for op in self.log.ops.drain(..) {
            match op {
                UndoOp::InsertGr(_, entry) => displaced.push(DisplacedApp::Gr(entry)),
                UndoOp::InsertBe(_, entry) => displaced.push(DisplacedApp::Be(entry)),
                _ => {}
            }
        }
        self.sys.state.stats.txn_commits += 1;
        displaced
    }

    /// Undoes everything this transaction did, restoring the system
    /// bitwise to its state at [`SparcleSystem::begin`].
    pub fn rollback(mut self) {
        self.unwind_to(0);
        self.sys.state.stats.txn_rollbacks += 1;
    }

    fn unwind_to(&mut self, savepoint: usize) -> Vec<DisplacedApp> {
        let mut popped = Vec::new();
        let sys = &mut *self.sys;
        while self.log.ops.len() > savepoint {
            let op = self.log.ops.pop().expect("length checked");
            if let Some(entry) = sys
                .state
                .apply_undo(op, &sys.network, sys.config.maintenance)
            {
                popped.push(entry);
            }
        }
        popped
    }

    fn fresh_id(&mut self) -> AppId {
        self.log.push(UndoOp::RestoreNextId(self.sys.state.next_id));
        let id = AppId::new(self.sys.state.next_id);
        self.sys.state.next_id += 1;
        id
    }

    /// Figure 3, steps 1–4 for a BE application. With `defer_solve` the
    /// final re-solve (step 4) is left to the caller's batch epilogue —
    /// sound because nothing in steps 1–3 reads `allocated_rate`s (see
    /// [`Self::submit_all`]).
    fn submit_be(
        &mut self,
        app: Arc<Application>,
        priority: f64,
        availability_target: Option<f64>,
        defer_solve: bool,
    ) -> Result<Admission, AssignError> {
        let sys = &mut *self.sys;
        // Step 1: predict available resources via eq. (6).
        let predicted = sys
            .state
            .priority_loads
            .predict(&sys.state.gr_residual, priority);

        // Steps 2–3: add paths until the availability target is met.
        // This phase only reads system state, so rejections here leave
        // nothing to unwind.
        let want_paths = if availability_target.is_some() {
            sys.config.max_paths_per_app
        } else {
            1
        };
        // `assigner`/`network` (shared) and `engine_scratch` (mutable)
        // are disjoint fields, so the borrows coexist.
        let (all_paths, _, assign_stats) = assign_multipath_scratch_stats(
            &sys.assigner,
            &mut sys.engine_scratch,
            &app,
            &sys.network,
            &predicted,
            want_paths,
            sys.config.min_path_rate,
        );
        sys.state.stats.gamma_cache_hits += assign_stats.cache_hits;
        sys.state.stats.gamma_cache_misses += assign_stats.cache_misses;
        if all_paths.is_empty() {
            return Ok(Admission::Rejected(RejectReason::NoPath(
                "no task assignment path with positive rate",
            )));
        }
        // Keep the minimal prefix of paths satisfying the target.
        let mut paths: Vec<AssignedPath> = Vec::new();
        let mut achieved: Option<f64> = None;
        let mut analyzer = PathAvailability::new();
        for path in all_paths {
            analyzer
                .add_path(
                    &sys.network,
                    path.placement.elements_used(&sys.network),
                    path.rate,
                )
                .map_err(|e| AssignError::Model(availability_to_model_error(&e)))?;
            paths.push(path);
            let a = analyzer
                .any_working()
                .map_err(|e| AssignError::Model(availability_to_model_error(&e)))?;
            achieved = Some(a);
            match availability_target {
                Some(target) if a + 1e-12 < target => continue,
                _ => break,
            }
        }
        if let (Some(target), Some(a)) = (availability_target, achieved) {
            if a + 1e-12 < target {
                return Ok(Admission::Rejected(RejectReason::QoeUnreachable {
                    achieved: a,
                    target,
                }));
            }
        }

        // Combined per-unit-rate load, splitting rate across paths
        // proportionally to their standalone rates.
        let combined_load = combine_loads(&sys.network, &paths);

        let savepoint = self.log.savepoint();
        let id = self.fresh_id();
        let sys = &mut *self.sys;
        sys.state.priority_loads.add_app(&combined_load, priority);
        if sys.config.maintenance == StateMaintenance::Incremental {
            sys.state.constraints.push_app(&combined_load);
        }
        sys.state.be_apps.push(PlacedBeApp {
            id,
            app,
            paths,
            combined_load,
            priority,
            availability: availability_target.and(achieved),
            allocated_rate: 0.0,
        });
        self.log.push(UndoOp::PopBe);
        if defer_solve {
            return Ok(Admission::Admitted(id));
        }
        self.log
            .push(UndoOp::RestoreRates(sys.state.snapshot_rates()));

        // Step 4: re-solve (4) for all BE applications.
        match self.sys.solve_be_internal() {
            Ok(_) => Ok(Admission::Admitted(id)),
            Err(e) => {
                let message = e.to_string();
                self.unwind_to(savepoint);
                Ok(Admission::Rejected(RejectReason::AllocationFailed(message)))
            }
        }
    }

    /// §IV-D for a GR application: iterate paths until eq. (7) meets the
    /// target, reserving capacity; all-or-nothing (a rejection unwinds
    /// the trial reservations exactly).
    fn submit_gr(
        &mut self,
        app: Arc<Application>,
        min_rate: f64,
        target: f64,
        defer_solve: bool,
    ) -> Result<Admission, AssignError> {
        let savepoint = self.log.savepoint();
        let (paths, achieved) = match self.collect_gr_paths(&app, min_rate, target) {
            Ok(found) => found,
            Err(e) => {
                self.unwind_to(savepoint);
                return Err(e);
            }
        };
        if achieved + 1e-12 < target {
            self.unwind_to(savepoint);
            return Ok(Admission::Rejected(RejectReason::QoeUnreachable {
                achieved,
                target,
            }));
        }
        let id = self.fresh_id();
        let sys = &mut *self.sys;
        sys.state.gr_apps.push(PlacedGrApp {
            id,
            app,
            paths,
            min_rate_availability: achieved,
            min_rate,
        });
        self.log.push(UndoOp::PopGr);
        // GR reservations shrink what BE apps share; re-solve their rates
        // (deferred to the batch epilogue under `defer_solve`).
        if !defer_solve && !sys.state.be_apps.is_empty() {
            self.log
                .push(UndoOp::RestoreRates(sys.state.snapshot_rates()));
            let _ = sys.solve_be_internal();
        }
        Ok(Admission::Admitted(id))
    }

    /// The GR path loop: reserve trial paths directly on the residual
    /// (each subtraction is logged for exact undo) until the min-rate
    /// availability of eq. (7) reaches the target or paths run out.
    fn collect_gr_paths(
        &mut self,
        app: &Application,
        min_rate: f64,
        target: f64,
    ) -> Result<(Vec<(AssignedPath, f64)>, f64), AssignError> {
        let mut paths: Vec<(AssignedPath, f64)> = Vec::new();
        let mut analyzer = PathAvailability::new();
        let mut achieved = 0.0;
        for _ in 0..self.sys.config.max_paths_per_app {
            let sys = &mut *self.sys;
            let path = match sys.assigner.assign_scratch_with_stats(
                &mut sys.engine_scratch,
                app,
                &sys.network,
                &sys.state.gr_residual,
            ) {
                Ok((p, s)) if p.rate > sys.config.min_path_rate && p.rate.is_finite() => {
                    sys.state.stats.gamma_cache_hits += s.cache_hits;
                    sys.state.stats.gamma_cache_misses += s.cache_misses;
                    p
                }
                _ => break,
            };
            // Reserving more than R_J on one path buys no QoE.
            let reserved = path.rate.min(min_rate);
            let touched = path.load.loaded_elements();
            sys.state
                .gr_residual
                .subtract_load_sparse(&path.load, reserved);
            self.log.push(UndoOp::RecomputeResidual(touched));
            analyzer
                .add_path(
                    &sys.network,
                    path.placement.elements_used(&sys.network),
                    reserved,
                )
                .map_err(|e| AssignError::Model(availability_to_model_error(&e)))?;
            paths.push((path, reserved));
            achieved = analyzer
                .min_rate(min_rate)
                .map_err(|e| AssignError::Model(availability_to_model_error(&e)))?;
            if achieved + 1e-12 >= target {
                break;
            }
        }
        Ok((paths, achieved))
    }

    /// Reinstates a displaced entry (see [`SparcleSystem::try_readmit`]).
    #[allow(clippy::result_large_err)] // Err returns ownership, not a message
    fn readmit_inner(
        &mut self,
        displaced: DisplacedApp,
    ) -> Result<AppId, (DisplacedApp, RejectReason)> {
        let id = displaced.id();
        let savepoint = self.log.savepoint();
        // Keep fresh ids from colliding with the preserved one.
        self.log.push(UndoOp::RestoreNextId(self.sys.state.next_id));
        self.sys.state.next_id = self.sys.state.next_id.max(id.as_u32() + 1);
        match displaced {
            DisplacedApp::Gr(entry) => {
                let mut unfit = None;
                for (i, (path, rate)) in entry.paths.iter().enumerate() {
                    let sys = &mut *self.sys;
                    if sys.state.gr_residual.bottleneck_rate(&path.load) + 1e-9 < *rate {
                        unfit = Some(i);
                        break;
                    }
                    let touched = path.load.loaded_elements();
                    sys.state
                        .gr_residual
                        .subtract_load_sparse(&path.load, *rate);
                    self.log.push(UndoOp::RecomputeResidual(touched));
                }
                if let Some(path) = unfit {
                    self.unwind_to(savepoint);
                    return Err((
                        DisplacedApp::Gr(entry),
                        RejectReason::PlacementUnfit { path },
                    ));
                }
                let sys = &mut *self.sys;
                sys.state.gr_apps.push(entry);
                self.log.push(UndoOp::PopGr);
                if !sys.state.be_apps.is_empty() {
                    self.log
                        .push(UndoOp::RestoreRates(sys.state.snapshot_rates()));
                    let _ = sys.solve_be_internal();
                }
                Ok(id)
            }
            DisplacedApp::Be(mut entry) => {
                let displaced_rate = entry.allocated_rate;
                entry.allocated_rate = 0.0;
                let sys = &mut *self.sys;
                sys.state
                    .priority_loads
                    .add_app(&entry.combined_load, entry.priority);
                if sys.config.maintenance == StateMaintenance::Incremental {
                    sys.state.constraints.push_app(&entry.combined_load);
                }
                sys.state.be_apps.push(entry);
                self.log.push(UndoOp::PopBe);
                self.log
                    .push(UndoOp::RestoreRates(sys.state.snapshot_rates()));
                match self.sys.solve_be_internal() {
                    Ok(_) => Ok(id),
                    Err(e) => {
                        let message = e.to_string();
                        let mut popped = self.unwind_to(savepoint);
                        let mut entry = match popped.pop() {
                            Some(DisplacedApp::Be(entry)) => entry,
                            other => {
                                unreachable!("undo log returns the pushed entry, got {other:?}")
                            }
                        };
                        // Keep the pre-displacement rate visible to the
                        // caller: reconcile policies order by it.
                        entry.allocated_rate = displaced_rate;
                        Err((
                            DisplacedApp::Be(entry),
                            RejectReason::AllocationFailed(message),
                        ))
                    }
                }
            }
        }
    }

    /// Replaces the base capacities (see
    /// [`SparcleSystem::apply_capacity_fluctuation`]). The residual
    /// rebuild below *is* the canonical fold, interleaved with the
    /// per-path fit checks that flag violated GR guarantees.
    fn apply_fluctuation(&mut self, new_capacities: CapacityMap) -> Vec<AppId> {
        let sys = &mut *self.sys;
        let old = std::mem::replace(&mut sys.state.current_capacities, new_capacities);
        self.log.push(UndoOp::RestoreCaps(old));
        let mut residual = sys.state.current_capacities.clone();
        let mut violated = Vec::new();
        for gr in &sys.state.gr_apps {
            for (path, rate) in &gr.paths {
                // Check fit before subtracting (subtraction clamps).
                if residual.bottleneck_rate(&path.load) + 1e-9 < *rate {
                    violated.push(gr.id);
                }
                residual.subtract_load(&path.load, *rate);
            }
        }
        violated.sort_unstable_by_key(|id| id.as_u32());
        violated.dedup();
        sys.state.gr_residual = residual;
        sys.state.stats.residual_full_recomputes += 1;
        if !sys.state.be_apps.is_empty() {
            self.log
                .push(UndoOp::RestoreRates(sys.state.snapshot_rates()));
            let _ = sys.solve_be_internal();
        }
        violated
    }
}

impl Drop for SystemTxn<'_> {
    /// A transaction dropped without [`SystemTxn::commit`] rolls back —
    /// this is what makes what-if probes and error paths safe by
    /// construction.
    fn drop(&mut self) {
        if !self.log.ops.is_empty() {
            self.unwind_to(0);
            self.sys.state.stats.txn_rollbacks += 1;
        }
    }
}

/// Merges per-path loads into one per-unit-rate load, weighting each path
/// by its share of the total standalone rate.
fn combine_loads(network: &Network, paths: &[AssignedPath]) -> LoadMap {
    let total: f64 = paths.iter().map(|p| p.rate).sum();
    let mut combined = LoadMap::zeroed(network);
    if total <= 0.0 {
        return combined;
    }
    for path in paths {
        combined.merge_scaled(&path.load, path.rate / total);
    }
    combined
}

fn availability_to_model_error(e: &sparcle_alloc::AvailabilityError) -> sparcle_model::ModelError {
    sparcle_model::ModelError::InvalidQuantity {
        what: "availability analysis",
        value: match e {
            sparcle_alloc::AvailabilityError::TooManyElements(n) => *n as f64,
            sparcle_alloc::AvailabilityError::TooManyPaths(n) => *n as f64,
            sparcle_alloc::AvailabilityError::BadProbability(p) => *p,
            _ => f64::NAN,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparcle_model::{NcpId, NetworkBuilder, ResourceVec, TaskGraphBuilder};

    fn star_network(failure: f64) -> Network {
        let mut nb = NetworkBuilder::new();
        let hub = nb.add_ncp("hub", ResourceVec::cpu(50.0));
        for i in 0..4 {
            let leaf = nb
                .add_ncp_with_failure(format!("leaf{i}"), ResourceVec::cpu(100.0), 0.0)
                .unwrap();
            nb.add_link_full(
                format!("l{i}"),
                hub,
                leaf,
                500.0,
                sparcle_model::LinkDirection::Undirected,
                failure,
            )
            .unwrap();
        }
        nb.build().unwrap()
    }

    fn simple_app(qoe: QoeClass, cycles: f64, bits: f64) -> Application {
        let mut tb = TaskGraphBuilder::new();
        let s = tb.add_ct("s", ResourceVec::new());
        let w = tb.add_ct("w", ResourceVec::cpu(cycles));
        let t = tb.add_ct("t", ResourceVec::new());
        tb.add_tt("sw", s, w, bits).unwrap();
        tb.add_tt("wt", w, t, bits / 10.0).unwrap();
        let graph = tb.build().unwrap();
        Application::new(graph, qoe, [(s, NcpId::new(0)), (t, NcpId::new(0))]).unwrap()
    }

    #[test]
    fn single_be_app_gets_its_bottleneck_rate() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        let adm = sys
            .submit(simple_app(QoeClass::best_effort(1.0), 10.0, 50.0))
            .unwrap();
        assert!(adm.is_admitted());
        let app = &sys.be_apps()[0];
        assert_eq!(app.paths.len(), 1);
        assert!(
            (app.allocated_rate - app.paths[0].rate).abs() < 1e-4,
            "allocated {} vs path {}",
            app.allocated_rate,
            app.paths[0].rate
        );
    }

    #[test]
    fn two_equal_be_apps_share_fairly() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        sys.submit(simple_app(QoeClass::best_effort(1.0), 10.0, 50.0))
            .unwrap();
        sys.submit(simple_app(QoeClass::best_effort(1.0), 10.0, 50.0))
            .unwrap();
        let r0 = sys.be_apps()[0].allocated_rate;
        let r1 = sys.be_apps()[1].allocated_rate;
        assert!(r0 > 0.0 && r1 > 0.0);
        // With symmetric apps the rates should be within a few percent.
        assert!((r0 - r1).abs() / r0.max(r1) < 0.25, "r0={r0} r1={r1}");
    }

    #[test]
    fn priority_2x_app_gets_more() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        sys.submit(simple_app(QoeClass::best_effort(1.0), 100.0, 5000.0))
            .unwrap();
        sys.submit(simple_app(QoeClass::best_effort(2.0), 100.0, 5000.0))
            .unwrap();
        let r0 = sys.be_apps()[0].allocated_rate;
        let r1 = sys.be_apps()[1].allocated_rate;
        assert!(r1 > r0, "higher priority should earn more: {r0} vs {r1}");
    }

    #[test]
    fn be_availability_adds_paths() {
        let net = star_network(0.02);
        let mut sys = SparcleSystem::new(net);
        let qoe = QoeClass::BestEffort {
            priority: 1.0,
            availability: Some(0.9),
        };
        // Heavy enough that the worker leaves the hub, making links (and
        // their 2% failure) part of the path.
        let adm = sys.submit(simple_app(qoe, 500.0, 10.0)).unwrap();
        assert!(adm.is_admitted(), "{adm:?}");
        let app = &sys.be_apps()[0];
        if let Some(a) = app.availability {
            assert!(a + 1e-12 >= 0.9, "availability {a}");
        }
    }

    #[test]
    fn gr_app_reserves_capacity() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        let adm = sys
            .submit(simple_app(QoeClass::guaranteed_rate(2.0, 0.9), 10.0, 50.0))
            .unwrap();
        assert!(adm.is_admitted());
        assert!((sys.total_gr_rate() - 2.0).abs() < 1e-9);
        let gr = &sys.gr_apps()[0];
        assert!(gr.min_rate_availability >= 0.9);
        // The hub lost 10 cycles/unit × 2 units/s = 20 CPU if the worker
        // stayed local, or a leaf did. Either way total capacity shrank.
        let full = sys.network().capacity_map();
        let mut shrank = false;
        for ncp in sys.network().ncp_ids() {
            if sys
                .gr_residual()
                .ncp(ncp)
                .amount(sparcle_model::ResourceKind::Cpu)
                < full.ncp(ncp).amount(sparcle_model::ResourceKind::Cpu) - 1e-9
            {
                shrank = true;
            }
        }
        assert!(shrank);
    }

    #[test]
    fn infeasible_gr_is_rejected_without_side_effects() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        let before = sys.gr_residual().clone();
        let adm = sys
            .submit(simple_app(QoeClass::guaranteed_rate(1e9, 0.9), 10.0, 50.0))
            .unwrap();
        assert!(!adm.is_admitted());
        assert_eq!(sys.gr_apps().len(), 0);
        assert_eq!(sys.gr_residual(), &before);
    }

    #[test]
    fn gr_then_be_shares_residual() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        sys.submit(simple_app(QoeClass::guaranteed_rate(3.0, 0.5), 10.0, 50.0))
            .unwrap();
        let adm = sys
            .submit(simple_app(QoeClass::best_effort(1.0), 10.0, 50.0))
            .unwrap();
        assert!(adm.is_admitted());
        let be_rate = sys.be_apps()[0].allocated_rate;
        assert!(be_rate > 0.0);
        // A lone BE app on the untouched network would beat this.
        let mut fresh = SparcleSystem::new(star_network(0.0));
        fresh
            .submit(simple_app(QoeClass::best_effort(1.0), 10.0, 50.0))
            .unwrap();
        assert!(fresh.be_apps()[0].allocated_rate >= be_rate - 1e-9);
    }

    #[test]
    fn unreachable_be_availability_rejects() {
        // Make every link extremely flaky; even max paths cannot reach
        // 0.99999 availability when the worker must leave the hub.
        let mut nb = NetworkBuilder::new();
        let hub = nb.add_ncp("hub", ResourceVec::cpu(0.0));
        let leaf = nb
            .add_ncp_with_failure("leaf", ResourceVec::cpu(100.0), 0.5)
            .unwrap();
        nb.add_link_full(
            "l",
            hub,
            leaf,
            500.0,
            sparcle_model::LinkDirection::Undirected,
            0.5,
        )
        .unwrap();
        let net = nb.build().unwrap();
        let mut sys = SparcleSystem::new(net);
        let qoe = QoeClass::BestEffort {
            priority: 1.0,
            availability: Some(0.99999),
        };
        let adm = sys.submit(simple_app(qoe, 500.0, 10.0)).unwrap();
        assert!(matches!(
            adm,
            Admission::Rejected(RejectReason::QoeUnreachable { .. })
        ));
        assert!(sys.be_apps().is_empty());
    }

    #[test]
    fn ids_are_unique_and_increasing() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        let a = sys
            .submit(simple_app(QoeClass::best_effort(1.0), 10.0, 50.0))
            .unwrap();
        let b = sys
            .submit(simple_app(QoeClass::best_effort(1.0), 10.0, 50.0))
            .unwrap();
        assert!(a.id().unwrap() < b.id().unwrap());
    }

    #[test]
    fn gr_departure_releases_capacity() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        let before = sys.gr_residual().clone();
        let adm = sys
            .submit(simple_app(QoeClass::guaranteed_rate(2.0, 0.9), 10.0, 50.0))
            .unwrap();
        let id = adm.id().unwrap();
        assert_ne!(sys.gr_residual(), &before);
        assert!(sys.remove(id));
        // Capacity restored to within rounding.
        for ncp in sys.network().ncp_ids() {
            let a = sys
                .gr_residual()
                .ncp(ncp)
                .amount(sparcle_model::ResourceKind::Cpu);
            let b = before.ncp(ncp).amount(sparcle_model::ResourceKind::Cpu);
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        assert!(!sys.remove(id), "double removal reports false");
    }

    #[test]
    fn be_departure_reallocates_survivor() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        let a = sys
            .submit(simple_app(QoeClass::best_effort(1.0), 100.0, 5000.0))
            .unwrap()
            .id()
            .unwrap();
        sys.submit(simple_app(QoeClass::best_effort(1.0), 100.0, 5000.0))
            .unwrap();
        let shared_rate = sys.be_apps().iter().map(|x| x.allocated_rate).sum::<f64>();
        assert!(sys.remove(a));
        assert_eq!(sys.be_apps().len(), 1);
        let solo_rate = sys.be_apps()[0].allocated_rate;
        // The survivor should gain at least something whenever the two
        // apps contended (they may not have; then rates are equal).
        assert!(solo_rate + 1e-9 >= shared_rate / 2.0);
    }

    #[test]
    fn capacity_fluctuation_rescales_be_rates() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        sys.submit(simple_app(QoeClass::best_effort(1.0), 10.0, 50.0))
            .unwrap();
        let before = sys.be_apps()[0].allocated_rate;
        // Halve every capacity.
        let mut halved = sys.network().capacity_map();
        for ncp in sys.network().ncp_ids() {
            halved.ncp_mut(ncp).scale(0.5);
        }
        for link in sys.network().link_ids() {
            let bw = halved.link(link);
            halved.set_link(link, bw * 0.5);
        }
        let violated = sys.apply_capacity_fluctuation(halved);
        assert!(violated.is_empty());
        let after = sys.be_apps()[0].allocated_rate;
        assert!(
            (after - before * 0.5).abs() / before < 0.05,
            "rate should halve: {before} -> {after}"
        );
    }

    #[test]
    fn capacity_fluctuation_flags_broken_gr() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        let id = sys
            .submit(simple_app(QoeClass::guaranteed_rate(2.0, 0.9), 10.0, 50.0))
            .unwrap()
            .id()
            .unwrap();
        // Collapse the network to 1 % capacity.
        let mut tiny = sys.network().capacity_map();
        for ncp in sys.network().ncp_ids() {
            tiny.ncp_mut(ncp).scale(0.01);
        }
        for link in sys.network().link_ids() {
            let bw = tiny.link(link);
            tiny.set_link(link, bw * 0.01);
        }
        let violated = sys.apply_capacity_fluctuation(tiny);
        assert_eq!(violated, vec![id]);
    }

    #[test]
    fn reschedule_finds_new_gr_paths_after_fluctuation() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        let id = sys
            .submit(simple_app(QoeClass::guaranteed_rate(2.0, 0.9), 10.0, 50.0))
            .unwrap()
            .id()
            .unwrap();
        // Shrink capacity to 10 %: the old single-path reservation is
        // violated, but a fresh multi-path schedule still covers the
        // 2 units/s across several leaves.
        let mut caps = sys.network().capacity_map();
        for ncp in sys.network().ncp_ids() {
            caps.ncp_mut(ncp).scale(0.1);
        }
        for link in sys.network().link_ids() {
            let bw = caps.link(link);
            caps.set_link(link, bw * 0.1);
        }
        let violated = sys.apply_capacity_fluctuation(caps);
        assert_eq!(violated, vec![id]);
        let admission = sys.reschedule(id).expect("known id");
        assert!(admission.is_admitted(), "{admission:?}");
        assert_eq!(sys.gr_apps().len(), 1);
        // The new reservation fits the shrunken capacities.
        let gr = &sys.gr_apps()[0];
        assert!((gr.guaranteed_rate() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn reschedule_reinstates_on_failure() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        let id = sys
            .submit(simple_app(QoeClass::guaranteed_rate(2.0, 0.9), 10.0, 50.0))
            .unwrap()
            .id()
            .unwrap();
        // Collapse the network so a fresh schedule is impossible.
        let mut caps = sys.network().capacity_map();
        for ncp in sys.network().ncp_ids() {
            caps.ncp_mut(ncp).scale(1e-6);
        }
        for link in sys.network().link_ids() {
            let bw = caps.link(link);
            caps.set_link(link, bw * 1e-6);
        }
        sys.apply_capacity_fluctuation(caps);
        let before = sys.gr_apps()[0].clone();
        let admission = sys.reschedule(id).expect("known id");
        assert!(!admission.is_admitted());
        // Old placement still in force.
        assert_eq!(sys.gr_apps().len(), 1);
        assert_eq!(sys.gr_apps()[0].id, before.id);
        assert_eq!(sys.gr_apps()[0].paths.len(), before.paths.len());
    }

    #[test]
    fn reschedule_unknown_id_is_none() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        assert!(sys.reschedule(AppId::new(42)).is_none());
    }

    #[test]
    fn migrate_moves_an_app_in_one_txn() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        let be_id = sys
            .submit(simple_app(QoeClass::best_effort(1.0), 10.0, 50.0))
            .unwrap()
            .id()
            .unwrap();
        sys.submit(simple_app(QoeClass::best_effort(2.0), 10.0, 50.0))
            .unwrap();
        let commits_before = sys.state_stats().txn_commits;
        let outcome = sys.migrate(be_id).expect("known id");
        assert!(outcome.moved(), "{outcome:?}");
        assert_eq!(outcome.old_id, be_id);
        let new_id = outcome.new_id().expect("moved");
        assert_ne!(new_id, be_id);
        assert!(outcome.old_rate > 0.0);
        // Same population, new identity; exactly one commit.
        assert_eq!(sys.be_apps().len(), 2);
        assert!(!sys.contains(be_id));
        assert!(sys.contains(new_id));
        assert_eq!(sys.state_stats().txn_commits, commits_before + 1);
    }

    #[test]
    fn rejected_migration_is_invisible() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        let id = sys
            .submit(simple_app(QoeClass::guaranteed_rate(2.0, 0.9), 10.0, 50.0))
            .unwrap()
            .id()
            .unwrap();
        sys.submit(simple_app(QoeClass::best_effort(1.0), 10.0, 50.0))
            .unwrap();
        // Collapse the network so the fresh placement search must fail;
        // the old reservation (taken at full capacity) stays in force.
        let mut caps = sys.network().capacity_map();
        for ncp in sys.network().ncp_ids() {
            caps.ncp_mut(ncp).scale(1e-6);
        }
        for link in sys.network().link_ids() {
            let bw = caps.link(link);
            caps.set_link(link, bw * 1e-6);
        }
        sys.apply_capacity_fluctuation(caps);
        let residual = sys.gr_residual().clone();
        let rates: Vec<f64> = sys.be_apps().iter().map(|a| a.allocated_rate).collect();
        let outcome = sys.migrate(id).expect("known id");
        assert!(!outcome.moved(), "{outcome:?}");
        assert_eq!(outcome.new_id(), None);
        // Bitwise no-op: placement, residual, BE rates, and the id
        // counter are exactly as before the attempt.
        assert!(sys.contains(id));
        assert_eq!(sys.gr_residual(), &residual);
        let after: Vec<f64> = sys.be_apps().iter().map(|a| a.allocated_rate).collect();
        assert_eq!(rates, after);
    }

    #[test]
    fn rolled_back_migration_txn_is_invisible() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        sys.submit(simple_app(QoeClass::guaranteed_rate(2.0, 0.9), 10.0, 50.0))
            .unwrap();
        let be_id = sys
            .submit(simple_app(QoeClass::best_effort(1.0), 10.0, 50.0))
            .unwrap()
            .id()
            .unwrap();
        let residual = sys.gr_residual().clone();
        let rates: Vec<f64> = sys.be_apps().iter().map(|a| a.allocated_rate).collect();
        // A rollback-only migration probe: the move lands inside the
        // txn, then the whole thing unwinds.
        let mut txn = sys.begin();
        let outcome = txn.migrate(be_id).expect("known id");
        assert!(outcome.moved());
        assert!(!txn.system().contains(be_id));
        txn.rollback();
        assert!(sys.contains(be_id));
        assert_eq!(sys.gr_residual(), &residual, "residual restored bitwise");
        let after: Vec<f64> = sys.be_apps().iter().map(|a| a.allocated_rate).collect();
        assert_eq!(rates, after, "rates restored bitwise");
        // The id counter rewound too: the next admission takes the id
        // the probe briefly held.
        let next = sys
            .submit(simple_app(QoeClass::best_effort(1.0), 10.0, 50.0))
            .unwrap()
            .id()
            .unwrap();
        assert_eq!(Some(next), outcome.new_id());
    }

    #[test]
    fn migrate_unknown_id_is_none() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        assert!(sys.migrate(AppId::new(7)).is_none());
        let mut txn = sys.begin();
        assert!(txn.migrate(AppId::new(7)).is_none());
    }

    #[test]
    fn displace_then_readmit_round_trips_exactly() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        let gr_id = sys
            .submit(simple_app(QoeClass::guaranteed_rate(2.0, 0.9), 10.0, 50.0))
            .unwrap()
            .id()
            .unwrap();
        let be_id = sys
            .submit(simple_app(QoeClass::best_effort(1.0), 10.0, 50.0))
            .unwrap()
            .id()
            .unwrap();
        let residual_before = sys.gr_residual().clone();
        let be_rate_before = sys.be_apps()[0].allocated_rate;

        let displaced = sys.displace(gr_id).expect("known id");
        assert!(displaced.is_gr());
        assert_eq!(displaced.id(), gr_id);
        assert!(!sys.contains(gr_id));
        let adm = sys.readmit(displaced);
        assert_eq!(adm.id(), Some(gr_id));
        assert_eq!(sys.gr_residual(), &residual_before, "exact round-trip");

        let displaced = sys.displace(be_id).expect("known id");
        let adm = sys.readmit(displaced);
        assert_eq!(adm.id(), Some(be_id));
        assert!(
            (sys.be_apps()[0].allocated_rate - be_rate_before).abs() < 1e-9,
            "BE rate restored"
        );
        // Fresh ids never collide with preserved ones.
        let next = sys
            .submit(simple_app(QoeClass::best_effort(1.0), 10.0, 50.0))
            .unwrap()
            .id()
            .unwrap();
        assert!(next > be_id);
    }

    #[test]
    fn readmit_rejects_when_placement_no_longer_fits() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        let id = sys
            .submit(simple_app(QoeClass::guaranteed_rate(2.0, 0.9), 10.0, 50.0))
            .unwrap()
            .id()
            .unwrap();
        let displaced = sys.displace(id).expect("known id");
        // Crush the network so the old reservation cannot fit.
        let mut tiny = sys.network().capacity_map();
        for ncp in sys.network().ncp_ids() {
            tiny.ncp_mut(ncp).scale(1e-6);
        }
        for link in sys.network().link_ids() {
            let bw = tiny.link(link);
            tiny.set_link(link, bw * 1e-6);
        }
        sys.apply_capacity_fluctuation(tiny);
        let before = sys.gr_residual().clone();
        let adm = sys.readmit(displaced);
        assert!(matches!(
            adm,
            Admission::Rejected(RejectReason::PlacementUnfit { .. })
        ));
        assert_eq!(sys.gr_residual(), &before, "rejection leaves no trace");
        assert!(!sys.contains(id));
    }

    #[test]
    fn apps_using_element_finds_the_blast_radius() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        let id = sys
            .submit(simple_app(QoeClass::best_effort(1.0), 10.0, 50.0))
            .unwrap()
            .id()
            .unwrap();
        // The app's endpoints are pinned on the hub, so the hub is
        // always in the blast radius.
        let hub = sparcle_model::NetworkElement::Ncp(NcpId::new(0));
        assert_eq!(sys.apps_using_element(hub), vec![id]);
        // Union over all elements covers every app.
        let mut seen = std::collections::BTreeSet::new();
        for e in sys.network().elements().collect::<Vec<_>>() {
            seen.extend(sys.apps_using_element(e));
        }
        assert!(seen.contains(&id));
    }

    #[test]
    fn max_min_policy_is_selectable() {
        let net = star_network(0.0);
        let config = SystemConfig {
            allocation_policy: AllocationPolicy::MaxMin,
            ..SystemConfig::default()
        };
        let mut sys = SparcleSystem::with_config(net, config);
        sys.submit(simple_app(QoeClass::best_effort(1.0), 100.0, 5000.0))
            .unwrap();
        sys.submit(simple_app(QoeClass::best_effort(1.0), 100.0, 5000.0))
            .unwrap();
        for be in sys.be_apps() {
            assert!(be.allocated_rate > 0.0);
        }
        // Joint feasibility under the max-min rates.
        let mut demand = LoadMap::zeroed(sys.network());
        for be in sys.be_apps() {
            demand.merge_scaled(&be.combined_load, be.allocated_rate);
        }
        assert!(sys.gr_residual().bottleneck_rate(&demand) >= 1.0 - 1e-9);
    }

    #[test]
    fn be_utility_matches_definition() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        sys.submit(simple_app(QoeClass::best_effort(2.0), 10.0, 50.0))
            .unwrap();
        let expect = 2.0 * sys.be_apps()[0].allocated_rate.ln();
        assert!((sys.be_utility() - expect).abs() < 1e-12);
    }

    #[test]
    fn probe_transaction_rolls_back_bitwise() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        sys.submit(simple_app(QoeClass::guaranteed_rate(2.0, 0.9), 10.0, 50.0))
            .unwrap();
        let be_id = sys
            .submit(simple_app(QoeClass::best_effort(1.0), 10.0, 50.0))
            .unwrap()
            .id()
            .unwrap();
        let residual = sys.gr_residual().clone();
        let rates: Vec<f64> = sys.be_apps().iter().map(|a| a.allocated_rate).collect();

        // Probe: what would a new BE submission get? Then roll back.
        let mut txn = sys.begin();
        let adm = txn
            .submit(simple_app(QoeClass::best_effort(2.0), 10.0, 50.0))
            .unwrap();
        assert!(adm.is_admitted());
        let probe_rate = txn.system().be_apps().last().unwrap().allocated_rate;
        assert!(probe_rate > 0.0);
        txn.rollback();

        assert_eq!(sys.gr_residual(), &residual, "residual restored bitwise");
        let after: Vec<f64> = sys.be_apps().iter().map(|a| a.allocated_rate).collect();
        assert_eq!(rates, after, "rates restored bitwise");
        assert_eq!(sys.be_apps().len(), 1);
        assert_eq!(sys.be_apps()[0].id, be_id);
        // The probe's id was returned to the pool: the next admission
        // gets the id the probe briefly held.
        let next = sys
            .submit(simple_app(QoeClass::best_effort(1.0), 10.0, 50.0))
            .unwrap()
            .id()
            .unwrap();
        assert_eq!(Some(next), adm.id());
        assert!(sys.state_stats().txn_rollbacks >= 1);
    }

    #[test]
    fn dropped_transaction_rolls_back() {
        let net = star_network(0.0);
        let mut sys = SparcleSystem::new(net);
        sys.submit(simple_app(QoeClass::best_effort(1.0), 10.0, 50.0))
            .unwrap();
        let residual = sys.gr_residual().clone();
        let rates: Vec<f64> = sys.be_apps().iter().map(|a| a.allocated_rate).collect();
        {
            let mut txn = sys.begin();
            txn.submit(simple_app(QoeClass::best_effort(3.0), 10.0, 50.0))
                .unwrap();
            // Dropped without commit.
        }
        assert_eq!(sys.be_apps().len(), 1);
        assert_eq!(sys.gr_residual(), &residual);
        let after: Vec<f64> = sys.be_apps().iter().map(|a| a.allocated_rate).collect();
        assert_eq!(rates, after);
    }

    #[test]
    fn scratch_maintenance_matches_incremental() {
        let run = |maintenance: StateMaintenance| {
            let config = SystemConfig {
                maintenance,
                ..SystemConfig::default()
            };
            let mut sys = SparcleSystem::with_config(star_network(0.0), config);
            let gr = sys
                .submit(simple_app(QoeClass::guaranteed_rate(2.0, 0.9), 10.0, 50.0))
                .unwrap()
                .id()
                .unwrap();
            sys.submit(simple_app(QoeClass::best_effort(1.0), 10.0, 50.0))
                .unwrap();
            sys.submit(simple_app(QoeClass::best_effort(2.0), 20.0, 100.0))
                .unwrap();
            let displaced = sys.displace(gr).unwrap();
            sys.readmit(displaced);
            let mut halved = sys.network().capacity_map();
            for ncp in sys.network().ncp_ids() {
                halved.ncp_mut(ncp).scale(0.5);
            }
            sys.apply_capacity_fluctuation(halved);
            (
                sys.gr_residual().clone(),
                sys.be_apps()
                    .iter()
                    .map(|a| a.allocated_rate)
                    .collect::<Vec<_>>(),
                sys.app_ids(),
            )
        };
        let incremental = run(StateMaintenance::Incremental);
        let scratch = run(StateMaintenance::Scratch);
        assert_eq!(incremental.0, scratch.0, "residual bitwise equal");
        assert_eq!(incremental.1, scratch.1, "rates bitwise equal");
        assert_eq!(incremental.2, scratch.2, "admissions equal");
    }

    /// A small mixed workload for the batch-admission tests: BE apps of
    /// varying priority/size, a GR app, and an unplaceable BE app
    /// (rejected `NoPath` in both modes).
    fn batch_workload() -> Vec<Arc<Application>> {
        vec![
            Arc::new(simple_app(QoeClass::best_effort(1.0), 10.0, 50.0)),
            Arc::new(simple_app(QoeClass::best_effort(2.0), 20.0, 100.0)),
            Arc::new(simple_app(QoeClass::guaranteed_rate(2.0, 0.0), 10.0, 50.0)),
            // No path clears `min_path_rate` for this monster.
            Arc::new(simple_app(QoeClass::best_effort(1.0), 1e12, 50.0)),
            Arc::new(simple_app(QoeClass::best_effort(3.0), 15.0, 75.0)),
        ]
    }

    #[test]
    fn batched_submission_matches_sequential_decisions_with_one_solve() {
        let apps = batch_workload();

        let mut sequential = SparcleSystem::new(star_network(0.0));
        let seq_admissions: Vec<Admission> = apps
            .iter()
            .map(|app| sequential.submit(Arc::clone(app)).unwrap())
            .collect();

        let mut batched = SparcleSystem::new(star_network(0.0));
        let solves_before = batched.state_stats().solves;
        let batch_admissions = batched.submit_batch(&apps).unwrap();
        let batch_solves = batched.state_stats().solves - solves_before;

        assert_eq!(batch_admissions, seq_admissions, "decisions bitwise equal");
        assert_eq!(batched.gr_residual(), sequential.gr_residual());
        assert_eq!(batched.app_ids(), sequential.app_ids());
        assert_eq!(batch_solves, 1, "one joint solve for the whole batch");
        assert!(
            sequential.state_stats().solves > 1,
            "sequential admission solves per BE/GR admission"
        );
        // The joint allocation solves the same problem (4) instance as
        // the last sequential solve; rates agree to solver tolerance.
        for (a, b) in batched.be_apps().iter().zip(sequential.be_apps()) {
            assert!(
                (a.allocated_rate - b.allocated_rate).abs() < 1e-6,
                "rates {} vs {}",
                a.allocated_rate,
                b.allocated_rate
            );
        }
    }

    #[test]
    fn failed_joint_solve_falls_back_to_sequential_replay() {
        // A GR app reserving its full path rate starves the BE apps'
        // shared elements, so the batch-final joint solve fails and the
        // batch must replay sequentially — making the whole outcome
        // (decisions AND rates) bitwise identical to sequential.
        let apps = vec![
            Arc::new(simple_app(QoeClass::best_effort(1.0), 10.0, 50.0)),
            Arc::new(simple_app(QoeClass::best_effort(2.0), 20.0, 100.0)),
            Arc::new(simple_app(QoeClass::guaranteed_rate(1e6, 0.0), 10.0, 50.0)),
            Arc::new(simple_app(QoeClass::best_effort(3.0), 15.0, 75.0)),
        ];

        let mut sequential = SparcleSystem::new(star_network(0.0));
        let seq_admissions: Vec<Admission> = apps
            .iter()
            .map(|app| sequential.submit(Arc::clone(app)).unwrap())
            .collect();

        let mut batched = SparcleSystem::new(star_network(0.0));
        let batch_admissions = batched.submit_batch(&apps).unwrap();

        assert_eq!(batch_admissions, seq_admissions, "decisions bitwise equal");
        assert_eq!(batched.gr_residual(), sequential.gr_residual());
        let seq_rates: Vec<f64> = sequential
            .be_apps()
            .iter()
            .map(|a| a.allocated_rate)
            .collect();
        let batch_rates: Vec<f64> = batched.be_apps().iter().map(|a| a.allocated_rate).collect();
        assert_eq!(batch_rates, seq_rates, "replayed rates bitwise equal");
    }

    #[test]
    fn batch_of_one_is_bitwise_identical_to_submit() {
        let app = Arc::new(simple_app(QoeClass::best_effort(1.0), 10.0, 50.0));

        let mut sequential = SparcleSystem::new(star_network(0.0));
        sequential
            .submit(simple_app(QoeClass::best_effort(2.0), 20.0, 100.0))
            .unwrap();
        let mut batched = SparcleSystem::new(star_network(0.0));
        batched
            .submit(simple_app(QoeClass::best_effort(2.0), 20.0, 100.0))
            .unwrap();

        let seq = sequential.submit(Arc::clone(&app)).unwrap();
        let batch = batched.submit_batch(std::slice::from_ref(&app)).unwrap();
        assert_eq!(batch, vec![seq]);
        let seq_rates: Vec<f64> = sequential
            .be_apps()
            .iter()
            .map(|a| a.allocated_rate)
            .collect();
        let batch_rates: Vec<f64> = batched.be_apps().iter().map(|a| a.allocated_rate).collect();
        assert_eq!(batch_rates, seq_rates, "rates bitwise equal");
        assert_eq!(
            batched.state_stats().solves,
            sequential.state_stats().solves
        );
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut sys = SparcleSystem::new(star_network(0.0));
        sys.submit(simple_app(QoeClass::best_effort(1.0), 10.0, 50.0))
            .unwrap();
        let before = sys.snapshot();
        let solves = sys.state_stats().solves;
        let admissions = sys.submit_batch(&[]).unwrap();
        assert!(admissions.is_empty());
        assert_eq!(sys.state_stats().solves, solves, "no solve for no work");
        assert_eq!(sys.snapshot(), before);
    }

    #[test]
    fn rolled_back_batch_restores_state_bitwise() {
        let mut sys = SparcleSystem::new(star_network(0.0));
        sys.submit(simple_app(QoeClass::best_effort(1.0), 10.0, 50.0))
            .unwrap();
        let before = sys.snapshot();
        let rates_before = sys.state().snapshot_rates();

        let mut txn = sys.begin();
        let admissions = txn.submit_all(&batch_workload()).unwrap();
        assert!(admissions.iter().any(Admission::is_admitted));
        txn.rollback();

        assert_eq!(sys.snapshot(), before, "rollback restores the view");
        assert_eq!(sys.state().snapshot_rates(), rates_before, "rates restored");
    }
}
