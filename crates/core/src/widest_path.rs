//! Load-aware widest-path routing — the paper's Algorithm 1.
//!
//! When a transport task `k` must connect NCP `j` to NCP `j'`, SPARCLE
//! places it on the path whose *worst* link imposes the *best* (largest)
//! bottleneck on the application's processing rate (eq. (3)):
//!
//! ```text
//! P*_k(j, j') = argmax over paths P  min over links l ∈ P
//!               C_l^(b) / (a_k^(b) + Σ_i'' y_{i'',l} a_{i''}^(b))
//! ```
//!
//! The per-link *width* is the rate that link could sustain if the TT
//! were added on top of the bits already routed there. Maximizing the
//! minimum width is the classic widest-path (bottleneck shortest path)
//! problem, solved by a modified Dijkstra in `O(|L| log |N|)`.
//!
//! Two implementations coexist, selected by
//! [`sparcle_model::GraphRepr`] at the engine level:
//!
//! * the original binary-heap Dijkstra over [`Network`]'s nested-`Vec`
//!   adjacency ([`widest_path_with`] / [`widest_tree`]), kept as the
//!   ground truth; and
//! * a bucketed (dial-style) queue over the flat [`CsrNetwork`] arrays
//!   ([`csr_widest_path_with`] / [`csr_widest_tree`]), which quantizes
//!   widths by their f64 *exponent* into 256 buckets and keeps an
//!   exact max-heap inside each bucket, so the pop order — including
//!   every tie-break — is identical to the binary heap's and results
//!   stay byte-identical across representations (see [`BucketQueue`]).

use sparcle_model::{CapacityMap, CsrNetwork, LinkId, LoadMap, NcpId, Network};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A widest path between two NCPs.
#[derive(Debug, Clone, PartialEq)]
pub struct WidestPath {
    /// Links in traversal order from source to destination (empty when
    /// source equals destination).
    pub links: Vec<LinkId>,
    /// The bottleneck width: the processing rate the narrowest link of
    /// this path would impose on the TT (`f64::INFINITY` for the empty
    /// path).
    pub width: f64,
}

/// Computes the per-link width for TT bits `tt_bits` on link `link`:
/// `C_l / (a_k + current load)`, or `f64::INFINITY` when the denominator
/// is zero (a zero-bit TT on an unloaded link imposes no constraint).
#[inline]
pub fn link_width(capacities: &CapacityMap, load: &LoadMap, link: LinkId, tt_bits: f64) -> f64 {
    let denom = tt_bits + load.link(link);
    if denom <= 0.0 {
        f64::INFINITY
    } else {
        capacities.link(link) / denom
    }
}

/// Heap entry ordered by width (max-heap).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Candidate {
    width: f64,
    node: NcpId,
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Widths are never NaN (capacities and loads are finite,
        // denominators positive or the width is +inf).
        self.width
            .partial_cmp(&other.width)
            .expect("path widths are never NaN")
            .then_with(|| self.node.cmp(&other.node))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Algorithm 1: finds the best path `P*_k(from, to)` for a TT carrying
/// `tt_bits` bits per data unit, given current residual `capacities` and
/// the bits already routed per link (`load`).
///
/// Returns `None` when no path exists (topologically disconnected — a
/// zero-width path is still returned, since a zero rate may be the best
/// achievable). `from == to` yields the empty path with infinite width.
///
/// # Examples
///
/// ```
/// use sparcle_core::widest_path::widest_path;
/// use sparcle_model::{LoadMap, NetworkBuilder, ResourceVec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetworkBuilder::new();
/// let s = b.add_ncp("s", ResourceVec::new());
/// let m = b.add_ncp("m", ResourceVec::new());
/// let t = b.add_ncp("t", ResourceVec::new());
/// b.add_link("narrow", s, t, 10.0)?; // direct but narrow
/// b.add_link("wide1", s, m, 100.0)?;
/// b.add_link("wide2", m, t, 80.0)?;
/// let net = b.build()?;
/// let caps = net.capacity_map();
/// let load = LoadMap::zeroed(&net);
/// let path = widest_path(&net, &caps, &load, 1.0, s, t).unwrap();
/// assert_eq!(path.links.len(), 2); // two-hop wide route wins
/// assert_eq!(path.width, 80.0);
/// # Ok(())
/// # }
/// ```
pub fn widest_path(
    network: &Network,
    capacities: &CapacityMap,
    load: &LoadMap,
    tt_bits: f64,
    from: NcpId,
    to: NcpId,
) -> Option<WidestPath> {
    let mut scratch = DijkstraScratch::new(network.ncp_count());
    widest_path_with(&mut scratch, network, capacities, load, tt_bits, from, to)
}

/// [`widest_path`] over caller-owned buffers: the modified Dijkstra runs
/// entirely inside `scratch`, so repeated calls (the placement engine's
/// hot loop) allocate only the returned link vector.
///
/// The algorithm, tie-breaking, and returned value are identical to
/// [`widest_path`] — that function is a thin wrapper over this one.
pub fn widest_path_with(
    scratch: &mut DijkstraScratch,
    network: &Network,
    capacities: &CapacityMap,
    load: &LoadMap,
    tt_bits: f64,
    from: NcpId,
    to: NcpId,
) -> Option<WidestPath> {
    if from == to {
        return Some(WidestPath {
            links: Vec::new(),
            width: f64::INFINITY,
        });
    }
    scratch.reset(network.ncp_count());
    let DijkstraScratch {
        phi,
        prev,
        done,
        heap,
    } = scratch;
    phi[from.index()] = f64::INFINITY;
    heap.push(Candidate {
        width: f64::INFINITY,
        node: from,
    });
    while let Some(Candidate { width, node }) = heap.pop() {
        if done[node.index()] {
            continue;
        }
        done[node.index()] = true;
        if node == to {
            // Reconstruct the link sequence.
            let mut links = Vec::new();
            let mut at = to;
            while let Some((p, l)) = prev[at.index()] {
                links.push(l);
                at = p;
            }
            links.reverse();
            heap.clear();
            return Some(WidestPath { links, width });
        }
        for (link, neighbor) in network.neighbors(node) {
            if done[neighbor.index()] {
                continue;
            }
            let w = width.min(link_width(capacities, load, link, tt_bits));
            if w > phi[neighbor.index()] {
                phi[neighbor.index()] = w;
                prev[neighbor.index()] = Some((node, link));
                heap.push(Candidate {
                    width: w,
                    node: neighbor,
                });
            }
        }
    }
    None
}

/// Reusable buffers for the modified Dijkstra: distance (`φ`), parent
/// pointers, visited flags, and the priority queue. Holding one of these
/// in the engine makes every inner routing query allocation-free.
#[derive(Debug, Clone, Default)]
pub struct DijkstraScratch {
    /// Best bottleneck width found so far per node.
    phi: Vec<f64>,
    prev: Vec<Option<(NcpId, LinkId)>>,
    done: Vec<bool>,
    heap: BinaryHeap<Candidate>,
}

impl DijkstraScratch {
    /// Creates buffers sized for an `n`-NCP network.
    pub fn new(n: usize) -> Self {
        DijkstraScratch {
            phi: vec![f64::NEG_INFINITY; n],
            prev: vec![None; n],
            done: vec![false; n],
            heap: BinaryHeap::new(),
        }
    }

    /// Clears all buffers, resizing to `n` nodes if the network grew.
    fn reset(&mut self, n: usize) {
        self.phi.clear();
        self.phi.resize(n, f64::NEG_INFINITY);
        self.prev.clear();
        self.prev.resize(n, None);
        self.done.clear();
        self.done.resize(n, false);
        self.heap.clear();
    }
}

/// The network's adjacency with every traversable arc reversed.
///
/// The batched γ evaluator wants, for one already-placed CT on host
/// `t`, the widest-path width *from every candidate host `j` to `t`* in
/// a single sweep. Running Dijkstra from `t` over the reversed arcs
/// yields exactly those `j → t` widths for all `j` at once (for
/// undirected links the reversal is a no-op; for directed links it is
/// what makes the sharing correct).
#[derive(Debug, Clone)]
pub struct ReverseAdjacency {
    adj: Vec<Vec<(LinkId, NcpId)>>,
}

impl ReverseAdjacency {
    /// Builds the reversed adjacency for `network`.
    pub fn new(network: &Network) -> Self {
        let mut adj = vec![Vec::new(); network.ncp_count()];
        for u in network.ncp_ids() {
            for (link, v) in network.neighbors(u) {
                adj[v.index()].push((link, u));
            }
        }
        ReverseAdjacency { adj }
    }

    /// Number of nodes covered.
    pub fn ncp_count(&self) -> usize {
        self.adj.len()
    }
}

/// A completed single-target widest-path sweep (see
/// [`widest_tree`]): per-source widths and the witness tree.
///
/// `width_from(j)` is bit-identical to
/// `widest_path(…, j, target).map(|p| p.width)`: both compute the exact
/// maximum over paths of the minimum per-link width, and no arithmetic
/// accumulation is involved, so the optimum is a unique `f64`.
#[derive(Debug, Clone, Default)]
pub struct WidestTree {
    phi: Vec<f64>,
    prev: Vec<Option<(NcpId, LinkId)>>,
    done: Vec<bool>,
    heap: BinaryHeap<Candidate>,
}

impl WidestTree {
    /// Creates buffers sized for an `n`-NCP network.
    pub fn new(n: usize) -> Self {
        WidestTree {
            phi: vec![f64::NEG_INFINITY; n],
            prev: vec![None; n],
            done: vec![false; n],
            heap: BinaryHeap::new(),
        }
    }

    /// The widest `from → target` width computed by the last
    /// [`widest_tree`] run, or `None` when `from` cannot reach the
    /// target at all.
    pub fn width_from(&self, from: NcpId) -> Option<f64> {
        let w = self.phi[from.index()];
        if w == f64::NEG_INFINITY {
            None
        } else {
            Some(w)
        }
    }

    /// Calls `f` for every link of the witness tree (the union of one
    /// optimal path per reachable source). These are the links a cached
    /// γ value depends on.
    pub fn for_each_tree_link(&self, mut f: impl FnMut(LinkId)) {
        for entry in self.prev.iter().flatten() {
            f(entry.1);
        }
    }
}

/// Runs the full (no early exit) reversed widest-path Dijkstra from
/// `target`, filling `tree` with `φ[j] =` widest `j → target` width for
/// every node `j`, plus the witness tree. Buffers are reused across
/// calls; nothing is allocated once the tree has warmed up.
pub fn widest_tree(
    rev: &ReverseAdjacency,
    tree: &mut WidestTree,
    capacities: &CapacityMap,
    load: &LoadMap,
    tt_bits: f64,
    target: NcpId,
) {
    let n = rev.adj.len();
    tree.phi.clear();
    tree.phi.resize(n, f64::NEG_INFINITY);
    tree.prev.clear();
    tree.prev.resize(n, None);
    tree.done.clear();
    tree.done.resize(n, false);
    tree.heap.clear();
    tree.phi[target.index()] = f64::INFINITY;
    tree.heap.push(Candidate {
        width: f64::INFINITY,
        node: target,
    });
    while let Some(Candidate { width, node }) = tree.heap.pop() {
        if tree.done[node.index()] {
            continue;
        }
        tree.done[node.index()] = true;
        for &(link, neighbor) in &rev.adj[node.index()] {
            if tree.done[neighbor.index()] {
                continue;
            }
            let w = width.min(link_width(capacities, load, link, tt_bits));
            if w > tree.phi[neighbor.index()] {
                tree.phi[neighbor.index()] = w;
                tree.prev[neighbor.index()] = Some((node, link));
                tree.heap.push(Candidate {
                    width: w,
                    node: neighbor,
                });
            }
        }
    }
}

/// Number of width buckets: one per group of 8 biased f64 exponents.
const WIDTH_BUCKETS: usize = 1 << 8;

/// Quantizes a non-negative width to its bucket: the top 8 bits of the
/// f64's 11-bit biased exponent. For non-negative finite values this is
/// monotone in the width (IEEE-754 bit patterns of same-sign floats
/// order like the floats, and dropping low bits preserves that
/// non-strictly), `+∞` lands in the top bucket (0xff), and `0.0` in
/// bucket 0. Eight exponents per bucket keeps the queue's fixed costs
/// (allocation, cursor scan from the `+∞` bucket down to working
/// widths) small enough not to hurt tiny networks, while still
/// splitting the frontier across far more buckets than any one sweep
/// touches. Widths are never negative here: capacities are non-negative
/// and [`link_width`] returns `+∞` whenever its denominator is not
/// positive.
#[inline]
fn width_bucket(width: f64) -> usize {
    debug_assert!(width >= 0.0, "path widths are never negative: {width}");
    (width.to_bits() >> 55) as usize
}

/// A bucketed (dial-style) max-priority queue over path widths.
///
/// Entries are spread across `WIDTH_BUCKETS` buckets by
/// `width_bucket` — a *monotone* quantization, so the globally widest
/// entry always sits in the highest non-empty bucket. Each bucket is a
/// small exact max-heap on the legacy `Candidate` ordering (width, then
/// node id), which makes the overall pop sequence **identical** to the
/// single binary heap the legacy Dijkstra uses: quantization only
/// decides *which* heap an entry waits in, never who pops first. This
/// keeps routes and rates byte-identical across representations while
/// shrinking the hot heap from all frontier nodes to one exponent's
/// worth.
///
/// A monotone-decreasing cursor tracks the highest occupied bucket
/// (widest-path relaxations never push wider than the entry being
/// popped), and a touched-list makes [`BucketQueue::clear`] proportional
/// to the buckets actually used, not all of them.
#[derive(Debug, Clone)]
pub struct BucketQueue {
    buckets: Vec<BinaryHeap<Candidate>>,
    touched: Vec<u16>,
    cursor: usize,
    len: usize,
}

impl Default for BucketQueue {
    fn default() -> Self {
        BucketQueue::new()
    }
}

impl BucketQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        BucketQueue {
            buckets: (0..WIDTH_BUCKETS).map(|_| BinaryHeap::new()).collect(),
            touched: Vec::new(),
            cursor: 0,
            len: 0,
        }
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queues `node` at `width` (must be non-negative, possibly `+∞`).
    pub fn push(&mut self, width: f64, node: NcpId) {
        let b = width_bucket(width);
        if self.buckets[b].is_empty() {
            self.touched.push(b as u16);
        }
        self.buckets[b].push(Candidate { width, node });
        if b > self.cursor {
            self.cursor = b;
        }
        self.len += 1;
    }

    /// Pops the widest entry (ties: the larger node id, exactly like the
    /// legacy `BinaryHeap<Candidate>`).
    pub fn pop(&mut self) -> Option<(f64, NcpId)> {
        if self.len == 0 {
            return None;
        }
        while self.buckets[self.cursor].is_empty() {
            self.cursor -= 1;
        }
        let c = self.buckets[self.cursor]
            .pop()
            .expect("cursor rests on a non-empty bucket");
        self.len -= 1;
        Some((c.width, c.node))
    }

    /// Empties the queue, draining only the buckets that were used.
    pub fn clear(&mut self) {
        for &b in &self.touched {
            self.buckets[b as usize].clear();
        }
        self.touched.clear();
        self.cursor = 0;
        self.len = 0;
    }
}

/// Parent-pointer sentinel in the flat scratch arrays: "no predecessor".
const NO_PREV: u32 = u32::MAX;

/// Reusable buffers for the CSR widest-path sweep: SoA parent pointers
/// (`u32` + sentinel instead of `Option<(NcpId, LinkId)>`) and the
/// bucketed queue. The CSR twin of [`DijkstraScratch`].
#[derive(Debug, Clone, Default)]
pub struct CsrScratch {
    phi: Vec<f64>,
    prev_node: Vec<u32>,
    prev_link: Vec<u32>,
    done: Vec<bool>,
    queue: BucketQueue,
}

impl CsrScratch {
    /// Creates buffers sized for an `n`-NCP network.
    pub fn new(n: usize) -> Self {
        CsrScratch {
            phi: vec![f64::NEG_INFINITY; n],
            prev_node: vec![NO_PREV; n],
            prev_link: vec![NO_PREV; n],
            done: vec![false; n],
            queue: BucketQueue::new(),
        }
    }

    /// Clears all buffers, resizing to `n` nodes if the network grew.
    fn reset(&mut self, n: usize) {
        self.phi.clear();
        self.phi.resize(n, f64::NEG_INFINITY);
        self.prev_node.clear();
        self.prev_node.resize(n, NO_PREV);
        self.prev_link.clear();
        self.prev_link.resize(n, NO_PREV);
        self.done.clear();
        self.done.resize(n, false);
        self.queue.clear();
    }
}

/// [`csr_widest_path_with`] over freshly-allocated buffers; convenience
/// for tests and one-shot callers.
pub fn csr_widest_path(
    csr: &CsrNetwork,
    capacities: &CapacityMap,
    load: &LoadMap,
    tt_bits: f64,
    from: NcpId,
    to: NcpId,
) -> Option<WidestPath> {
    let mut scratch = CsrScratch::new(csr.ncp_count());
    csr_widest_path_with(&mut scratch, csr, capacities, load, tt_bits, from, to)
}

/// Algorithm 1 over the flat CSR arrays with the bucketed queue.
///
/// Byte-identical to [`widest_path_with`] on the same topology: the CSR
/// arc order equals the legacy neighbor order (so equal-width `prev`
/// choices match) and the [`BucketQueue`] pops in the legacy heap order
/// (so the label-setting sequence matches).
pub fn csr_widest_path_with(
    scratch: &mut CsrScratch,
    csr: &CsrNetwork,
    capacities: &CapacityMap,
    load: &LoadMap,
    tt_bits: f64,
    from: NcpId,
    to: NcpId,
) -> Option<WidestPath> {
    if from == to {
        return Some(WidestPath {
            links: Vec::new(),
            width: f64::INFINITY,
        });
    }
    scratch.reset(csr.ncp_count());
    let CsrScratch {
        phi,
        prev_node,
        prev_link,
        done,
        queue,
    } = scratch;
    phi[from.index()] = f64::INFINITY;
    queue.push(f64::INFINITY, from);
    while let Some((width, node)) = queue.pop() {
        if done[node.index()] {
            continue;
        }
        done[node.index()] = true;
        if node == to {
            // Reconstruct the link sequence.
            let mut links = Vec::new();
            let mut at = to.index();
            while prev_node[at] != NO_PREV {
                links.push(LinkId::new(prev_link[at]));
                at = prev_node[at] as usize;
            }
            links.reverse();
            queue.clear();
            return Some(WidestPath { links, width });
        }
        let (heads, links) = csr.out_arcs(node);
        for (&head, &arc_link) in heads.iter().zip(links) {
            let neighbor = head as usize;
            if done[neighbor] {
                continue;
            }
            let link = LinkId::new(arc_link);
            let w = width.min(link_width(capacities, load, link, tt_bits));
            if w > phi[neighbor] {
                phi[neighbor] = w;
                prev_node[neighbor] = node.as_u32();
                prev_link[neighbor] = arc_link;
                queue.push(w, NcpId::new(head));
            }
        }
    }
    None
}

/// The CSR twin of [`WidestTree`]: a completed single-target sweep over
/// the flat reverse arcs, with SoA parent pointers. `width_from` and
/// `for_each_tree_link` report exactly what the legacy tree would.
#[derive(Debug, Clone, Default)]
pub struct CsrWidestTree {
    phi: Vec<f64>,
    prev_node: Vec<u32>,
    prev_link: Vec<u32>,
    done: Vec<bool>,
    queue: BucketQueue,
}

impl CsrWidestTree {
    /// Creates buffers sized for an `n`-NCP network.
    pub fn new(n: usize) -> Self {
        CsrWidestTree {
            phi: vec![f64::NEG_INFINITY; n],
            prev_node: vec![NO_PREV; n],
            prev_link: vec![NO_PREV; n],
            done: vec![false; n],
            queue: BucketQueue::new(),
        }
    }

    /// The widest `from → target` width computed by the last
    /// [`csr_widest_tree`] run, or `None` when `from` cannot reach the
    /// target at all.
    pub fn width_from(&self, from: NcpId) -> Option<f64> {
        let w = self.phi[from.index()];
        if w == f64::NEG_INFINITY {
            None
        } else {
            Some(w)
        }
    }

    /// Calls `f` for every link of the witness tree, in node order —
    /// the same enumeration [`WidestTree::for_each_tree_link`] uses.
    pub fn for_each_tree_link(&self, mut f: impl FnMut(LinkId)) {
        for (i, &p) in self.prev_node.iter().enumerate() {
            if p != NO_PREV {
                f(LinkId::new(self.prev_link[i]));
            }
        }
    }
}

/// Runs the full (no early exit) reversed widest-path sweep from
/// `target` over the CSR reverse arcs — the flat twin of
/// [`widest_tree`], producing bit-identical `φ` and witness trees.
pub fn csr_widest_tree(
    csr: &CsrNetwork,
    tree: &mut CsrWidestTree,
    capacities: &CapacityMap,
    load: &LoadMap,
    tt_bits: f64,
    target: NcpId,
) {
    let n = csr.ncp_count();
    tree.phi.clear();
    tree.phi.resize(n, f64::NEG_INFINITY);
    tree.prev_node.clear();
    tree.prev_node.resize(n, NO_PREV);
    tree.prev_link.clear();
    tree.prev_link.resize(n, NO_PREV);
    tree.done.clear();
    tree.done.resize(n, false);
    tree.queue.clear();
    tree.phi[target.index()] = f64::INFINITY;
    tree.queue.push(f64::INFINITY, target);
    while let Some((width, node)) = tree.queue.pop() {
        if tree.done[node.index()] {
            continue;
        }
        tree.done[node.index()] = true;
        let (tails, links) = csr.in_arcs(node);
        for (&tail, &arc_link) in tails.iter().zip(links) {
            let neighbor = tail as usize;
            if tree.done[neighbor] {
                continue;
            }
            let link = LinkId::new(arc_link);
            let w = width.min(link_width(capacities, load, link, tt_bits));
            if w > tree.phi[neighbor] {
                tree.phi[neighbor] = w;
                tree.prev_node[neighbor] = node.as_u32();
                tree.prev_link[neighbor] = arc_link;
                tree.queue.push(w, NcpId::new(tail));
            }
        }
    }
}

/// Brute-force widest path by exhaustive DFS over simple paths. Only for
/// verification on small networks (exponential time).
pub fn widest_path_brute_force(
    network: &Network,
    capacities: &CapacityMap,
    load: &LoadMap,
    tt_bits: f64,
    from: NcpId,
    to: NcpId,
) -> Option<WidestPath> {
    if from == to {
        return Some(WidestPath {
            links: Vec::new(),
            width: f64::INFINITY,
        });
    }
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        network: &Network,
        capacities: &CapacityMap,
        load: &LoadMap,
        tt_bits: f64,
        at: NcpId,
        to: NcpId,
        visited: &mut Vec<bool>,
        stack: &mut Vec<LinkId>,
        width: f64,
        best: &mut Option<WidestPath>,
    ) {
        if at == to {
            if best.as_ref().is_none_or(|b| width > b.width) {
                *best = Some(WidestPath {
                    links: stack.clone(),
                    width,
                });
            }
            return;
        }
        for (link, neighbor) in network.neighbors(at) {
            if visited[neighbor.index()] {
                continue;
            }
            visited[neighbor.index()] = true;
            stack.push(link);
            let w = width.min(link_width(capacities, load, link, tt_bits));
            dfs(
                network, capacities, load, tt_bits, neighbor, to, visited, stack, w, best,
            );
            stack.pop();
            visited[neighbor.index()] = false;
        }
    }
    let mut visited = vec![false; network.ncp_count()];
    visited[from.index()] = true;
    let mut best = None;
    dfs(
        network,
        capacities,
        load,
        tt_bits,
        from,
        to,
        &mut visited,
        &mut Vec::new(),
        f64::INFINITY,
        &mut best,
    );
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparcle_model::{NetworkBuilder, ResourceVec};

    fn diamond() -> Network {
        // s - a - t (widths 10, 10) and s - b - t (widths 4, 100).
        let mut nb = NetworkBuilder::new();
        let s = nb.add_ncp("s", ResourceVec::new());
        let a = nb.add_ncp("a", ResourceVec::new());
        let b = nb.add_ncp("b", ResourceVec::new());
        let t = nb.add_ncp("t", ResourceVec::new());
        nb.add_link("sa", s, a, 10.0).unwrap();
        nb.add_link("at", a, t, 10.0).unwrap();
        nb.add_link("sb", s, b, 4.0).unwrap();
        nb.add_link("bt", b, t, 100.0).unwrap();
        nb.build().unwrap()
    }

    #[test]
    fn picks_max_min_width_route() {
        let net = diamond();
        let caps = net.capacity_map();
        let load = LoadMap::zeroed(&net);
        let p = widest_path(&net, &caps, &load, 1.0, NcpId::new(0), NcpId::new(3)).unwrap();
        assert_eq!(p.width, 10.0);
        assert_eq!(p.links, vec![LinkId::new(0), LinkId::new(1)]);
    }

    #[test]
    fn existing_load_shifts_the_choice() {
        let net = diamond();
        let caps = net.capacity_map();
        let mut load = LoadMap::zeroed(&net);
        // Load 4 bits on sa: width becomes 10/(1+4) = 2 < min(4/1, 100/1).
        load.add_tt_load(LinkId::new(0), 4.0);
        let p = widest_path(&net, &caps, &load, 1.0, NcpId::new(0), NcpId::new(3)).unwrap();
        assert_eq!(p.width, 4.0);
        assert_eq!(p.links, vec![LinkId::new(2), LinkId::new(3)]);
    }

    #[test]
    fn same_node_is_free() {
        let net = diamond();
        let caps = net.capacity_map();
        let load = LoadMap::zeroed(&net);
        let p = widest_path(&net, &caps, &load, 1.0, NcpId::new(1), NcpId::new(1)).unwrap();
        assert!(p.links.is_empty());
        assert_eq!(p.width, f64::INFINITY);
    }

    #[test]
    fn disconnected_returns_none() {
        let mut nb = NetworkBuilder::new();
        let a = nb.add_ncp("a", ResourceVec::new());
        let b = nb.add_ncp("b", ResourceVec::new());
        let c = nb.add_ncp("c", ResourceVec::new());
        nb.add_link("ab", a, b, 1.0).unwrap();
        let net = nb.build().unwrap();
        let caps = net.capacity_map();
        let load = LoadMap::zeroed(&net);
        assert!(widest_path(&net, &caps, &load, 1.0, a, c).is_none());
        assert!(widest_path_brute_force(&net, &caps, &load, 1.0, a, c).is_none());
    }

    #[test]
    fn zero_bit_tt_on_unloaded_link_has_infinite_width() {
        let net = diamond();
        let caps = net.capacity_map();
        let load = LoadMap::zeroed(&net);
        let p = widest_path(&net, &caps, &load, 0.0, NcpId::new(0), NcpId::new(3)).unwrap();
        assert_eq!(p.width, f64::INFINITY);
    }

    #[test]
    fn zero_capacity_link_gives_zero_width_path() {
        let mut nb = NetworkBuilder::new();
        let a = nb.add_ncp("a", ResourceVec::new());
        let b = nb.add_ncp("b", ResourceVec::new());
        nb.add_link("ab", a, b, 0.0).unwrap();
        let net = nb.build().unwrap();
        let caps = net.capacity_map();
        let load = LoadMap::zeroed(&net);
        let p = widest_path(&net, &caps, &load, 1.0, a, b).unwrap();
        assert_eq!(p.width, 0.0);
        assert_eq!(p.links.len(), 1);
    }

    #[test]
    fn agrees_with_brute_force_on_diamond() {
        let net = diamond();
        let caps = net.capacity_map();
        let mut load = LoadMap::zeroed(&net);
        for bits in [0.0, 1.0, 3.0, 10.0] {
            for s in 0..4u32 {
                for t in 0..4u32 {
                    let fast = widest_path(&net, &caps, &load, bits, NcpId::new(s), NcpId::new(t));
                    let slow = widest_path_brute_force(
                        &net,
                        &caps,
                        &load,
                        bits,
                        NcpId::new(s),
                        NcpId::new(t),
                    );
                    match (fast, slow) {
                        (Some(f), Some(sl)) => {
                            assert!(
                                (f.width - sl.width).abs() < 1e-12 || (f.width == sl.width),
                                "width mismatch {} vs {}",
                                f.width,
                                sl.width
                            );
                        }
                        (None, None) => {}
                        other => panic!("reachability mismatch: {other:?}"),
                    }
                }
            }
            load.add_tt_load(LinkId::new(1), bits);
        }
    }

    #[test]
    fn route_is_walkable() {
        let net = diamond();
        let caps = net.capacity_map();
        let load = LoadMap::zeroed(&net);
        let p = widest_path(&net, &caps, &load, 1.0, NcpId::new(0), NcpId::new(3)).unwrap();
        let mut at = NcpId::new(0);
        for &l in &p.links {
            at = net.link(l).traverse_from(at).expect("continuous route");
        }
        assert_eq!(at, NcpId::new(3));
    }

    #[test]
    fn bucket_queue_pops_in_legacy_heap_order() {
        // Mixed magnitudes (different exponents), same-exponent
        // neighbors (1.25 vs 1.5), exact ties (two 4.0s differing only
        // by node), zero, and +∞.
        let entries = [
            (1.25, 7u32),
            (f64::INFINITY, 0),
            (0.0, 5),
            (4.0, 2),
            (1.5, 1),
            (4.0, 9),
            (1e-300, 3),
            (1024.0, 4),
        ];
        let mut legacy = BinaryHeap::new();
        let mut bucketed = BucketQueue::new();
        for &(w, n) in &entries {
            legacy.push(Candidate {
                width: w,
                node: NcpId::new(n),
            });
            bucketed.push(w, NcpId::new(n));
        }
        assert_eq!(bucketed.len(), entries.len());
        while let Some(c) = legacy.pop() {
            let (w, n) = bucketed.pop().expect("same number of entries");
            assert_eq!((w.to_bits(), n), (c.width.to_bits(), c.node));
        }
        assert!(bucketed.is_empty());
        assert_eq!(bucketed.pop(), None);
    }

    #[test]
    fn bucket_queue_clear_resets_cursor() {
        let mut q = BucketQueue::new();
        q.push(f64::INFINITY, NcpId::new(0));
        q.push(2.0, NcpId::new(1));
        q.clear();
        assert!(q.is_empty());
        q.push(3.0, NcpId::new(2));
        assert_eq!(q.pop(), Some((3.0, NcpId::new(2))));
    }

    #[test]
    fn csr_path_matches_legacy_on_diamond() {
        let net = diamond();
        let csr = net.csr();
        let caps = net.capacity_map();
        let mut load = LoadMap::zeroed(&net);
        for bits in [0.0, 1.0, 4.0] {
            for s in 0..4u32 {
                for t in 0..4u32 {
                    let legacy =
                        widest_path(&net, &caps, &load, bits, NcpId::new(s), NcpId::new(t));
                    let flat =
                        csr_widest_path(csr, &caps, &load, bits, NcpId::new(s), NcpId::new(t));
                    match (legacy, flat) {
                        (Some(l), Some(f)) => {
                            assert_eq!(l.links, f.links, "routes diverged {s}->{t}");
                            assert_eq!(l.width.to_bits(), f.width.to_bits());
                        }
                        (None, None) => {}
                        other => panic!("reachability diverged: {other:?}"),
                    }
                }
            }
            load.add_tt_load(LinkId::new(0), 2.0);
        }
    }

    #[test]
    fn csr_tree_matches_legacy_tree() {
        let net = diamond();
        let csr = net.csr();
        let rev = ReverseAdjacency::new(&net);
        let caps = net.capacity_map();
        let mut load = LoadMap::zeroed(&net);
        load.add_tt_load(LinkId::new(1), 3.0);
        for target in net.ncp_ids() {
            let mut legacy = WidestTree::new(net.ncp_count());
            let mut flat = CsrWidestTree::new(net.ncp_count());
            widest_tree(&rev, &mut legacy, &caps, &load, 1.0, target);
            csr_widest_tree(csr, &mut flat, &caps, &load, 1.0, target);
            for j in net.ncp_ids() {
                assert_eq!(
                    legacy.width_from(j).map(f64::to_bits),
                    flat.width_from(j).map(f64::to_bits),
                    "φ diverged at {j} for target {target}"
                );
            }
            let mut legacy_links = Vec::new();
            legacy.for_each_tree_link(|l| legacy_links.push(l));
            let mut flat_links = Vec::new();
            flat.for_each_tree_link(|l| flat_links.push(l));
            assert_eq!(legacy_links, flat_links, "witness tree diverged");
        }
    }
}
