//! Load-aware widest-path routing — the paper's Algorithm 1.
//!
//! When a transport task `k` must connect NCP `j` to NCP `j'`, SPARCLE
//! places it on the path whose *worst* link imposes the *best* (largest)
//! bottleneck on the application's processing rate (eq. (3)):
//!
//! ```text
//! P*_k(j, j') = argmax over paths P  min over links l ∈ P
//!               C_l^(b) / (a_k^(b) + Σ_i'' y_{i'',l} a_{i''}^(b))
//! ```
//!
//! The per-link *width* is the rate that link could sustain if the TT
//! were added on top of the bits already routed there. Maximizing the
//! minimum width is the classic widest-path (bottleneck shortest path)
//! problem, solved by a modified Dijkstra in `O(|L| log |N|)`.

use sparcle_model::{CapacityMap, LinkId, LoadMap, NcpId, Network};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A widest path between two NCPs.
#[derive(Debug, Clone, PartialEq)]
pub struct WidestPath {
    /// Links in traversal order from source to destination (empty when
    /// source equals destination).
    pub links: Vec<LinkId>,
    /// The bottleneck width: the processing rate the narrowest link of
    /// this path would impose on the TT (`f64::INFINITY` for the empty
    /// path).
    pub width: f64,
}

/// Computes the per-link width for TT bits `tt_bits` on link `link`:
/// `C_l / (a_k + current load)`, or `f64::INFINITY` when the denominator
/// is zero (a zero-bit TT on an unloaded link imposes no constraint).
#[inline]
pub fn link_width(capacities: &CapacityMap, load: &LoadMap, link: LinkId, tt_bits: f64) -> f64 {
    let denom = tt_bits + load.link(link);
    if denom <= 0.0 {
        f64::INFINITY
    } else {
        capacities.link(link) / denom
    }
}

/// Heap entry ordered by width (max-heap).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Candidate {
    width: f64,
    node: NcpId,
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Widths are never NaN (capacities and loads are finite,
        // denominators positive or the width is +inf).
        self.width
            .partial_cmp(&other.width)
            .expect("path widths are never NaN")
            .then_with(|| self.node.cmp(&other.node))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Algorithm 1: finds the best path `P*_k(from, to)` for a TT carrying
/// `tt_bits` bits per data unit, given current residual `capacities` and
/// the bits already routed per link (`load`).
///
/// Returns `None` when no path exists (topologically disconnected — a
/// zero-width path is still returned, since a zero rate may be the best
/// achievable). `from == to` yields the empty path with infinite width.
///
/// # Examples
///
/// ```
/// use sparcle_core::widest_path::widest_path;
/// use sparcle_model::{LoadMap, NetworkBuilder, ResourceVec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetworkBuilder::new();
/// let s = b.add_ncp("s", ResourceVec::new());
/// let m = b.add_ncp("m", ResourceVec::new());
/// let t = b.add_ncp("t", ResourceVec::new());
/// b.add_link("narrow", s, t, 10.0)?; // direct but narrow
/// b.add_link("wide1", s, m, 100.0)?;
/// b.add_link("wide2", m, t, 80.0)?;
/// let net = b.build()?;
/// let caps = net.capacity_map();
/// let load = LoadMap::zeroed(&net);
/// let path = widest_path(&net, &caps, &load, 1.0, s, t).unwrap();
/// assert_eq!(path.links.len(), 2); // two-hop wide route wins
/// assert_eq!(path.width, 80.0);
/// # Ok(())
/// # }
/// ```
pub fn widest_path(
    network: &Network,
    capacities: &CapacityMap,
    load: &LoadMap,
    tt_bits: f64,
    from: NcpId,
    to: NcpId,
) -> Option<WidestPath> {
    let mut scratch = DijkstraScratch::new(network.ncp_count());
    widest_path_with(&mut scratch, network, capacities, load, tt_bits, from, to)
}

/// [`widest_path`] over caller-owned buffers: the modified Dijkstra runs
/// entirely inside `scratch`, so repeated calls (the placement engine's
/// hot loop) allocate only the returned link vector.
///
/// The algorithm, tie-breaking, and returned value are identical to
/// [`widest_path`] — that function is a thin wrapper over this one.
pub fn widest_path_with(
    scratch: &mut DijkstraScratch,
    network: &Network,
    capacities: &CapacityMap,
    load: &LoadMap,
    tt_bits: f64,
    from: NcpId,
    to: NcpId,
) -> Option<WidestPath> {
    if from == to {
        return Some(WidestPath {
            links: Vec::new(),
            width: f64::INFINITY,
        });
    }
    scratch.reset(network.ncp_count());
    let DijkstraScratch {
        phi,
        prev,
        done,
        heap,
    } = scratch;
    phi[from.index()] = f64::INFINITY;
    heap.push(Candidate {
        width: f64::INFINITY,
        node: from,
    });
    while let Some(Candidate { width, node }) = heap.pop() {
        if done[node.index()] {
            continue;
        }
        done[node.index()] = true;
        if node == to {
            // Reconstruct the link sequence.
            let mut links = Vec::new();
            let mut at = to;
            while let Some((p, l)) = prev[at.index()] {
                links.push(l);
                at = p;
            }
            links.reverse();
            heap.clear();
            return Some(WidestPath { links, width });
        }
        for (link, neighbor) in network.neighbors(node) {
            if done[neighbor.index()] {
                continue;
            }
            let w = width.min(link_width(capacities, load, link, tt_bits));
            if w > phi[neighbor.index()] {
                phi[neighbor.index()] = w;
                prev[neighbor.index()] = Some((node, link));
                heap.push(Candidate {
                    width: w,
                    node: neighbor,
                });
            }
        }
    }
    None
}

/// Reusable buffers for the modified Dijkstra: distance (`φ`), parent
/// pointers, visited flags, and the priority queue. Holding one of these
/// in the engine makes every inner routing query allocation-free.
#[derive(Debug, Clone, Default)]
pub struct DijkstraScratch {
    /// Best bottleneck width found so far per node.
    phi: Vec<f64>,
    prev: Vec<Option<(NcpId, LinkId)>>,
    done: Vec<bool>,
    heap: BinaryHeap<Candidate>,
}

impl DijkstraScratch {
    /// Creates buffers sized for an `n`-NCP network.
    pub fn new(n: usize) -> Self {
        DijkstraScratch {
            phi: vec![f64::NEG_INFINITY; n],
            prev: vec![None; n],
            done: vec![false; n],
            heap: BinaryHeap::new(),
        }
    }

    /// Clears all buffers, resizing to `n` nodes if the network grew.
    fn reset(&mut self, n: usize) {
        self.phi.clear();
        self.phi.resize(n, f64::NEG_INFINITY);
        self.prev.clear();
        self.prev.resize(n, None);
        self.done.clear();
        self.done.resize(n, false);
        self.heap.clear();
    }
}

/// The network's adjacency with every traversable arc reversed.
///
/// The batched γ evaluator wants, for one already-placed CT on host
/// `t`, the widest-path width *from every candidate host `j` to `t`* in
/// a single sweep. Running Dijkstra from `t` over the reversed arcs
/// yields exactly those `j → t` widths for all `j` at once (for
/// undirected links the reversal is a no-op; for directed links it is
/// what makes the sharing correct).
#[derive(Debug, Clone)]
pub struct ReverseAdjacency {
    adj: Vec<Vec<(LinkId, NcpId)>>,
}

impl ReverseAdjacency {
    /// Builds the reversed adjacency for `network`.
    pub fn new(network: &Network) -> Self {
        let mut adj = vec![Vec::new(); network.ncp_count()];
        for u in network.ncp_ids() {
            for (link, v) in network.neighbors(u) {
                adj[v.index()].push((link, u));
            }
        }
        ReverseAdjacency { adj }
    }

    /// Number of nodes covered.
    pub fn ncp_count(&self) -> usize {
        self.adj.len()
    }
}

/// A completed single-target widest-path sweep (see
/// [`widest_tree`]): per-source widths and the witness tree.
///
/// `width_from(j)` is bit-identical to
/// `widest_path(…, j, target).map(|p| p.width)`: both compute the exact
/// maximum over paths of the minimum per-link width, and no arithmetic
/// accumulation is involved, so the optimum is a unique `f64`.
#[derive(Debug, Clone, Default)]
pub struct WidestTree {
    phi: Vec<f64>,
    prev: Vec<Option<(NcpId, LinkId)>>,
    done: Vec<bool>,
    heap: BinaryHeap<Candidate>,
}

impl WidestTree {
    /// Creates buffers sized for an `n`-NCP network.
    pub fn new(n: usize) -> Self {
        WidestTree {
            phi: vec![f64::NEG_INFINITY; n],
            prev: vec![None; n],
            done: vec![false; n],
            heap: BinaryHeap::new(),
        }
    }

    /// The widest `from → target` width computed by the last
    /// [`widest_tree`] run, or `None` when `from` cannot reach the
    /// target at all.
    pub fn width_from(&self, from: NcpId) -> Option<f64> {
        let w = self.phi[from.index()];
        if w == f64::NEG_INFINITY {
            None
        } else {
            Some(w)
        }
    }

    /// Calls `f` for every link of the witness tree (the union of one
    /// optimal path per reachable source). These are the links a cached
    /// γ value depends on.
    pub fn for_each_tree_link(&self, mut f: impl FnMut(LinkId)) {
        for entry in self.prev.iter().flatten() {
            f(entry.1);
        }
    }
}

/// Runs the full (no early exit) reversed widest-path Dijkstra from
/// `target`, filling `tree` with `φ[j] =` widest `j → target` width for
/// every node `j`, plus the witness tree. Buffers are reused across
/// calls; nothing is allocated once the tree has warmed up.
pub fn widest_tree(
    rev: &ReverseAdjacency,
    tree: &mut WidestTree,
    capacities: &CapacityMap,
    load: &LoadMap,
    tt_bits: f64,
    target: NcpId,
) {
    let n = rev.adj.len();
    tree.phi.clear();
    tree.phi.resize(n, f64::NEG_INFINITY);
    tree.prev.clear();
    tree.prev.resize(n, None);
    tree.done.clear();
    tree.done.resize(n, false);
    tree.heap.clear();
    tree.phi[target.index()] = f64::INFINITY;
    tree.heap.push(Candidate {
        width: f64::INFINITY,
        node: target,
    });
    while let Some(Candidate { width, node }) = tree.heap.pop() {
        if tree.done[node.index()] {
            continue;
        }
        tree.done[node.index()] = true;
        for &(link, neighbor) in &rev.adj[node.index()] {
            if tree.done[neighbor.index()] {
                continue;
            }
            let w = width.min(link_width(capacities, load, link, tt_bits));
            if w > tree.phi[neighbor.index()] {
                tree.phi[neighbor.index()] = w;
                tree.prev[neighbor.index()] = Some((node, link));
                tree.heap.push(Candidate {
                    width: w,
                    node: neighbor,
                });
            }
        }
    }
}

/// Brute-force widest path by exhaustive DFS over simple paths. Only for
/// verification on small networks (exponential time).
pub fn widest_path_brute_force(
    network: &Network,
    capacities: &CapacityMap,
    load: &LoadMap,
    tt_bits: f64,
    from: NcpId,
    to: NcpId,
) -> Option<WidestPath> {
    if from == to {
        return Some(WidestPath {
            links: Vec::new(),
            width: f64::INFINITY,
        });
    }
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        network: &Network,
        capacities: &CapacityMap,
        load: &LoadMap,
        tt_bits: f64,
        at: NcpId,
        to: NcpId,
        visited: &mut Vec<bool>,
        stack: &mut Vec<LinkId>,
        width: f64,
        best: &mut Option<WidestPath>,
    ) {
        if at == to {
            if best.as_ref().is_none_or(|b| width > b.width) {
                *best = Some(WidestPath {
                    links: stack.clone(),
                    width,
                });
            }
            return;
        }
        for (link, neighbor) in network.neighbors(at) {
            if visited[neighbor.index()] {
                continue;
            }
            visited[neighbor.index()] = true;
            stack.push(link);
            let w = width.min(link_width(capacities, load, link, tt_bits));
            dfs(
                network, capacities, load, tt_bits, neighbor, to, visited, stack, w, best,
            );
            stack.pop();
            visited[neighbor.index()] = false;
        }
    }
    let mut visited = vec![false; network.ncp_count()];
    visited[from.index()] = true;
    let mut best = None;
    dfs(
        network,
        capacities,
        load,
        tt_bits,
        from,
        to,
        &mut visited,
        &mut Vec::new(),
        f64::INFINITY,
        &mut best,
    );
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparcle_model::{NetworkBuilder, ResourceVec};

    fn diamond() -> Network {
        // s - a - t (widths 10, 10) and s - b - t (widths 4, 100).
        let mut nb = NetworkBuilder::new();
        let s = nb.add_ncp("s", ResourceVec::new());
        let a = nb.add_ncp("a", ResourceVec::new());
        let b = nb.add_ncp("b", ResourceVec::new());
        let t = nb.add_ncp("t", ResourceVec::new());
        nb.add_link("sa", s, a, 10.0).unwrap();
        nb.add_link("at", a, t, 10.0).unwrap();
        nb.add_link("sb", s, b, 4.0).unwrap();
        nb.add_link("bt", b, t, 100.0).unwrap();
        nb.build().unwrap()
    }

    #[test]
    fn picks_max_min_width_route() {
        let net = diamond();
        let caps = net.capacity_map();
        let load = LoadMap::zeroed(&net);
        let p = widest_path(&net, &caps, &load, 1.0, NcpId::new(0), NcpId::new(3)).unwrap();
        assert_eq!(p.width, 10.0);
        assert_eq!(p.links, vec![LinkId::new(0), LinkId::new(1)]);
    }

    #[test]
    fn existing_load_shifts_the_choice() {
        let net = diamond();
        let caps = net.capacity_map();
        let mut load = LoadMap::zeroed(&net);
        // Load 4 bits on sa: width becomes 10/(1+4) = 2 < min(4/1, 100/1).
        load.add_tt_load(LinkId::new(0), 4.0);
        let p = widest_path(&net, &caps, &load, 1.0, NcpId::new(0), NcpId::new(3)).unwrap();
        assert_eq!(p.width, 4.0);
        assert_eq!(p.links, vec![LinkId::new(2), LinkId::new(3)]);
    }

    #[test]
    fn same_node_is_free() {
        let net = diamond();
        let caps = net.capacity_map();
        let load = LoadMap::zeroed(&net);
        let p = widest_path(&net, &caps, &load, 1.0, NcpId::new(1), NcpId::new(1)).unwrap();
        assert!(p.links.is_empty());
        assert_eq!(p.width, f64::INFINITY);
    }

    #[test]
    fn disconnected_returns_none() {
        let mut nb = NetworkBuilder::new();
        let a = nb.add_ncp("a", ResourceVec::new());
        let b = nb.add_ncp("b", ResourceVec::new());
        let c = nb.add_ncp("c", ResourceVec::new());
        nb.add_link("ab", a, b, 1.0).unwrap();
        let net = nb.build().unwrap();
        let caps = net.capacity_map();
        let load = LoadMap::zeroed(&net);
        assert!(widest_path(&net, &caps, &load, 1.0, a, c).is_none());
        assert!(widest_path_brute_force(&net, &caps, &load, 1.0, a, c).is_none());
    }

    #[test]
    fn zero_bit_tt_on_unloaded_link_has_infinite_width() {
        let net = diamond();
        let caps = net.capacity_map();
        let load = LoadMap::zeroed(&net);
        let p = widest_path(&net, &caps, &load, 0.0, NcpId::new(0), NcpId::new(3)).unwrap();
        assert_eq!(p.width, f64::INFINITY);
    }

    #[test]
    fn zero_capacity_link_gives_zero_width_path() {
        let mut nb = NetworkBuilder::new();
        let a = nb.add_ncp("a", ResourceVec::new());
        let b = nb.add_ncp("b", ResourceVec::new());
        nb.add_link("ab", a, b, 0.0).unwrap();
        let net = nb.build().unwrap();
        let caps = net.capacity_map();
        let load = LoadMap::zeroed(&net);
        let p = widest_path(&net, &caps, &load, 1.0, a, b).unwrap();
        assert_eq!(p.width, 0.0);
        assert_eq!(p.links.len(), 1);
    }

    #[test]
    fn agrees_with_brute_force_on_diamond() {
        let net = diamond();
        let caps = net.capacity_map();
        let mut load = LoadMap::zeroed(&net);
        for bits in [0.0, 1.0, 3.0, 10.0] {
            for s in 0..4u32 {
                for t in 0..4u32 {
                    let fast = widest_path(&net, &caps, &load, bits, NcpId::new(s), NcpId::new(t));
                    let slow = widest_path_brute_force(
                        &net,
                        &caps,
                        &load,
                        bits,
                        NcpId::new(s),
                        NcpId::new(t),
                    );
                    match (fast, slow) {
                        (Some(f), Some(sl)) => {
                            assert!(
                                (f.width - sl.width).abs() < 1e-12 || (f.width == sl.width),
                                "width mismatch {} vs {}",
                                f.width,
                                sl.width
                            );
                        }
                        (None, None) => {}
                        other => panic!("reachability mismatch: {other:?}"),
                    }
                }
            }
            load.add_tt_load(LinkId::new(1), bits);
        }
    }

    #[test]
    fn route_is_walkable() {
        let net = diamond();
        let caps = net.capacity_map();
        let load = LoadMap::zeroed(&net);
        let p = widest_path(&net, &caps, &load, 1.0, NcpId::new(0), NcpId::new(3)).unwrap();
        let mut at = NcpId::new(0);
        for &l in &p.links {
            at = net.link(l).traverse_from(at).expect("continuous route");
        }
        assert_eq!(at, NcpId::new(3));
    }
}
