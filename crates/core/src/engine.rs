//! Incremental placement engine shared by SPARCLE and the baselines.
//!
//! [`PlacementEngine`] tracks a partially-built [`Placement`] together
//! with its per-element [`LoadMap`], and provides the two primitives
//! every task-assignment policy in this workspace is built from:
//!
//! * [`PlacementEngine::gamma`] — the paper's `γ_{i,j}` (eq. (2)): the
//!   new bottleneck processing rate if CT `i` were placed on NCP `j`,
//!   combining the host's compute headroom with widest-path bottlenecks
//!   (Algorithm 1) to every already-placed reachable CT;
//! * [`PlacementEngine::commit`] — irrevocably place a CT on a host and
//!   route (via Algorithm 1) every TT connecting it to already-placed
//!   direct neighbors, updating loads.
//!
//! SPARCLE's dynamic ranking (Algorithm 2) repeatedly commits the
//! `argmin_i max_j γ_{i,j}` choice; baselines commit in their own orders
//! (sorted, random, HEFT rank, …) but reuse the same routing, which keeps
//! the comparison about *placement policy*, exactly as in the paper.
//!
//! # The batched, incrementally-cached γ evaluator
//!
//! Evaluating eq. (2) one `(CT, NCP)` pair at a time — as
//! [`PlacementEngine::gamma`] does — costs one Dijkstra per placed
//! reachable CT *per candidate host*, which dominates Algorithm 2 on
//! large topologies. The engine therefore also maintains a **γ-cache**
//! behind three faster entry points: [`PlacementEngine::gamma_batched`],
//! [`PlacementEngine::rank_round`] (one full Algorithm-2 ranking round,
//! optionally multi-threaded), and the invalidation hook inside
//! [`PlacementEngine::commit_with`].
//!
//! ## Caching contract
//!
//! γ splits as `γ_{i,j} = min(host_rate(i, j), net_γ(i, j))`. The host
//! term is cheap and always computed fresh; only the network term is
//! cached, as one **row per CT** (`net_γ(i, ·)` for every host at once).
//! A row is produced by one reversed widest-path Dijkstra
//! ([`crate::widest_path::widest_tree`]) per placed reachable CT —
//! `O(|reach|)` sweeps for all `|N|` hosts, instead of the reference
//! path's `O(|reach| · |N|)` — and records a **witness link set**: the
//! union of the widest-path trees' links, i.e. one optimal path per
//! `(host, reachable CT)` pair.
//!
//! Rows stay valid under commits because element loads only ever
//! *increase* during an engine's lifetime (commits add load, nothing
//! subtracts it), so link widths only decrease. A cached row is
//! invalidated by [`PlacementEngine::commit_with`] iff
//!
//! 1. its CT belongs to the just-placed CT's *unplaced component* (the
//!    CTs connected to it through unplaced intermediates, whose
//!    `placed_reachable` sets the commit may change), or
//! 2. a link the commit routed load onto intersects the row's witness
//!    set.
//!
//! Any surviving row is **bit-identical** to a fresh recomputation: its
//! witness paths' links are untouched, so those paths still achieve the
//! cached widths, while every alternative path's width can only have
//! decreased — the old optimum is still the optimum, as an exact `f64`.
//! (`tests/parallel_equivalence.rs` and the γ-staleness proptest enforce
//! this.)
//!
//! ## Deterministic tie-break and thread-count independence
//!
//! [`PlacementEngine::rank_round`] always resolves its choice by
//!
//! 1. per CT, the host with the **largest** γ, ties toward the **lower
//!    `NcpId`**;
//! 2. across CTs, the candidate with the **smallest** best-γ, ties
//!    toward the **lower `CtId`**.
//!
//! Worker threads only fill missing cache rows — each row is a pure
//! function of the engine state, and the ranking scan itself is serial
//! over the merged rows — so the committed placement is identical for
//! every thread count, and identical to the serial uncached reference
//! path ([`PlacementEngine::gamma`] driven by
//! [`crate::DynamicRankingAssigner::reference`]).

use crate::error::AssignError;
use crate::trace::TraceHandle;
use crate::widest_path::{
    csr_widest_path_with, csr_widest_tree, widest_path, widest_path_with, widest_tree, CsrScratch,
    CsrWidestTree, DijkstraScratch, ReverseAdjacency, WidestTree,
};
use sparcle_model::{
    Application, CapacityMap, CsrNetwork, CtId, GraphRepr, LinkId, LoadMap, NcpId, Network,
    Placement, TaskGraph, TtId,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

#[cfg(feature = "telemetry")]
use sparcle_telemetry::{
    Candidate, CommitRecord, CtTieBreak, Event, HostTieBreak, PlacementDecision,
};

/// How [`PlacementEngine::commit_with`] routes transport tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutePolicy {
    /// Algorithm 1: maximize the minimum load-aware link width.
    #[default]
    Widest,
    /// Plain hop-count shortest path (what a non-network-aware scheduler
    /// effectively gets from the underlay).
    FewestHops,
}

/// Hop-count shortest path between two NCPs (BFS), ignoring loads and
/// capacities. Returns `None` when disconnected, `Some(vec![])` when
/// `from == to`.
pub fn fewest_hops_path(
    network: &Network,
    from: NcpId,
    to: NcpId,
) -> Option<Vec<sparcle_model::LinkId>> {
    use std::collections::VecDeque;
    if from == to {
        return Some(Vec::new());
    }
    let mut prev: Vec<Option<(NcpId, sparcle_model::LinkId)>> = vec![None; network.ncp_count()];
    let mut seen = vec![false; network.ncp_count()];
    seen[from.index()] = true;
    let mut queue = VecDeque::from([from]);
    while let Some(u) = queue.pop_front() {
        for (link, v) in network.neighbors(u) {
            if seen[v.index()] {
                continue;
            }
            seen[v.index()] = true;
            prev[v.index()] = Some((u, link));
            if v == to {
                let mut links = Vec::new();
                let mut at = to;
                while let Some((p, l)) = prev[at.index()] {
                    links.push(l);
                    at = p;
                }
                links.reverse();
                return Some(links);
            }
            queue.push_back(v);
        }
    }
    None
}

/// A fixed-size bitset over the network's links.
#[derive(Debug, Clone, Default, PartialEq)]
struct LinkSet {
    words: Vec<u64>,
}

impl LinkSet {
    fn new(links: usize) -> Self {
        LinkSet {
            words: vec![0; links.div_ceil(64)],
        }
    }

    fn insert(&mut self, link: LinkId) {
        self.words[link.index() / 64] |= 1 << (link.index() % 64);
    }

    fn intersects(&self, other: &LinkSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }
}

/// One cached γ row: the network term `net_γ(ct, j)` for every host `j`
/// plus the witness links the values depend on (see module docs).
/// `f64::NEG_INFINITY` marks hosts that cannot route every placed
/// reachable CT (the reference path's `gamma == None`).
///
/// Rows are keyed on *dense* element ids (positions in `net`, bits in
/// `witness`), so every row also carries the build `generation` of the
/// topology it was computed against: dense ids collide across rebuilt
/// topologies, and [`LinkSet::intersects`] silently truncates on
/// mismatched link counts, so a row from another topology could pass
/// witness-based invalidation while being completely wrong. The
/// generation stamp makes such rows unusable instead.
#[derive(Debug, Clone, PartialEq)]
struct GammaRow {
    net: Vec<f64>,
    witness: LinkSet,
    generation: u64,
}

/// Sweep buffers for one γ-row fill under either representation. Both
/// trees size themselves at call time, so `Default` is enough for the
/// worker threads that own one each.
#[derive(Debug, Clone, Default)]
struct RowScratch {
    legacy: WidestTree,
    csr: CsrWidestTree,
}

/// Reusable assignment buffers a long-lived caller hoists across engine
/// lifetimes: the serial row-sweep buffers, both routing scratches, and
/// the ranking loop's missing-row list. A fresh engine allocates these
/// lazily per assignment; the system's rollback-only probe paths (γ
/// reconcile probes, defrag migration probes) run thousands of
/// assignments over one network, so taking the buffers from — and
/// returning them to — a hoisted `EngineScratch` keeps warm probes off
/// the allocator for every content-independent buffer
/// (`benches/assignment_scaling.rs` holds the probe loop to it).
#[derive(Debug, Default)]
pub struct EngineScratch {
    row: RowScratch,
    route: DijkstraScratch,
    csr_route: CsrScratch,
    missing: Vec<CtId>,
}

/// The graph structure the sweeps traverse, per [`GraphRepr`].
#[derive(Clone, Copy)]
enum ReprView<'e> {
    Legacy(&'e ReverseAdjacency),
    Csr(&'e CsrNetwork),
}

/// The read-only engine state a γ row is a pure function of. Borrowing
/// it field-by-field (rather than `&self`) is what lets worker threads
/// share it while each owns a private [`RowScratch`].
struct EvalView<'e> {
    graph: &'e TaskGraph,
    placement: &'e Placement,
    placed: &'e [bool],
    capacities: &'e CapacityMap,
    load: &'e LoadMap,
    repr: ReprView<'e>,
    ncp_count: usize,
    link_count: usize,
    generation: u64,
}

/// Folds one completed sweep into the row: per host, `min` with the
/// sweep's width, or `NEG_INFINITY` once any target is unreachable.
fn fold_sweep(net: &mut [f64], width_from: impl Fn(NcpId) -> Option<f64>) {
    for (j, entry) in net.iter_mut().enumerate() {
        if *entry == f64::NEG_INFINITY {
            continue;
        }
        match width_from(NcpId::new(j as u32)) {
            Some(w) => *entry = entry.min(w),
            None => *entry = f64::NEG_INFINITY,
        }
    }
}

impl EvalView<'_> {
    /// Computes one CT's γ row: one reversed widest-path sweep per placed
    /// reachable CT, folded with `min` per host. Exact equality with the
    /// pairwise reference path holds because both take the same min over
    /// the same unique widest-path widths — under either representation
    /// (the CSR sweep is bit-identical to the legacy one by the ordering
    /// contract in [`sparcle_model::csr`]).
    fn compute_net_row(&self, ct: CtId, scratch: &mut RowScratch) -> GammaRow {
        let mut net = vec![f64::INFINITY; self.ncp_count];
        let mut witness = LinkSet::new(self.link_count);
        for reach in self.graph.placed_reachable(ct, |c| self.placed[c.index()]) {
            let target = self
                .placement
                .ct_host(reach.ct)
                .expect("reachable CTs are placed");
            match self.repr {
                ReprView::Csr(csr) => {
                    csr_widest_tree(
                        csr,
                        &mut scratch.csr,
                        self.capacities,
                        self.load,
                        reach.min_bits,
                        target,
                    );
                    fold_sweep(&mut net, |j| scratch.csr.width_from(j));
                    scratch.csr.for_each_tree_link(|l| witness.insert(l));
                }
                ReprView::Legacy(rev) => {
                    widest_tree(
                        rev,
                        &mut scratch.legacy,
                        self.capacities,
                        self.load,
                        reach.min_bits,
                        target,
                    );
                    fold_sweep(&mut net, |j| scratch.legacy.width_from(j));
                    scratch.legacy.for_each_tree_link(|l| witness.insert(l));
                }
            }
        }
        GammaRow {
            net,
            witness,
            generation: self.generation,
        }
    }
}

/// A portable snapshot of γ-cache rows, produced by
/// [`PlacementEngine::export_rows`] and consumed by
/// [`PlacementEngine::adopt_rows`].
///
/// Rows computed before any unpinned commit are pure functions of
/// `(application, network, capacities)` — the pinned placement is forced
/// — so a fresh engine over the same inputs may adopt them instead of
/// recomputing, turning its first ranking round into all cache hits.
/// The snapshot carries the topology generation and shape; adoption
/// validates both, so rows can never alias a rebuilt topology (see
/// `GammaRow`).
#[derive(Debug, Clone)]
pub struct GammaRows {
    generation: u64,
    ct_count: usize,
    ncp_count: usize,
    rows: Vec<Option<GammaRow>>,
}

impl GammaRows {
    /// Number of present (adoptable) rows in the snapshot.
    pub fn present(&self) -> usize {
        self.rows.iter().flatten().count()
    }
}

/// The result of a completed task assignment: one *task assignment path*.
#[derive(Debug, Clone, PartialEq)]
pub struct AssignedPath {
    /// The full mapping of CTs to NCPs and TTs to link routes.
    pub placement: Placement,
    /// The per-data-unit load this path puts on every element.
    pub load: LoadMap,
    /// The maximum stable processing rate (objective (1a)) under the
    /// capacities the assignment was computed against.
    pub rate: f64,
}

/// Always-compiled γ-cache work counters for one assignment (or an
/// accumulation across assignments via [`AssignStats::merge`]).
///
/// Unlike the `gamma_cache.*` telemetry counters — which exist only
/// with the `telemetry` feature and require a recorder — these are part
/// of the engine proper, so online consumers (the runtime's
/// observability monitor, `SparcleSystem`'s state stats) can read cache
/// behaviour in every build configuration. All fields are deterministic
/// functions of the input: the missing-row set does not depend on the
/// worker-thread count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AssignStats {
    /// Ranking rounds executed ([`PlacementEngine::rank_round`]).
    pub rank_rounds: u64,
    /// γ-cache rows served without recomputation.
    pub cache_hits: u64,
    /// γ-cache rows (re)computed.
    pub cache_misses: u64,
}

impl AssignStats {
    /// Folds another stats record into this one.
    pub fn merge(&mut self, other: &AssignStats) {
        self.rank_rounds += other.rank_rounds;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
    }

    /// Total cache lookups (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.cache_hits + self.cache_misses
    }
}

/// Incremental, load-tracking placement state for one application.
#[derive(Debug, Clone)]
pub struct PlacementEngine<'a> {
    app: &'a Application,
    network: &'a Network,
    capacities: &'a CapacityMap,
    placement: Placement,
    load: LoadMap,
    placed: Vec<bool>,
    /// Which representation the sweeps traverse.
    repr: GraphRepr,
    /// Reversed arcs powering the legacy per-row sweeps (`Legacy` only —
    /// at CSR scale the flat reverse arcs replace it, and skipping its
    /// construction matters on 5k+-NCP networks).
    rev: Option<ReverseAdjacency>,
    /// The flat view powering the bucketed sweeps (`Csr` only).
    csr: Option<Arc<CsrNetwork>>,
    /// The network's build generation, stamped into every cached row.
    generation: u64,
    /// γ-cache: one optional row per CT (see module docs).
    cache: Vec<Option<GammaRow>>,
    /// Serial-path sweep buffers (worker threads allocate their own).
    row_scratch: RowScratch,
    /// Commit-time routing buffers (legacy representation).
    route_scratch: DijkstraScratch,
    /// Commit-time routing buffers (CSR representation).
    csr_route_scratch: CsrScratch,
    /// Telemetry sink; zero-sized when the `telemetry` feature is off.
    trace: TraceHandle<'a>,
    /// Reused across [`Self::rank_round`] calls so the steady-state
    /// ranking loop allocates nothing.
    missing_scratch: Vec<CtId>,
    /// Construction (and its pinned commits) has finished.
    pinned_done: bool,
    /// An unpinned commit has happened — cached rows may now depend on
    /// ranking decisions and stop being exportable (see
    /// [`Self::export_rows`]).
    unpinned_committed: bool,
    /// Always-compiled γ-cache work counters (see [`AssignStats`]).
    stats: AssignStats,
    /// Ranking rounds completed (numbers the decision events).
    #[cfg(feature = "telemetry")]
    round: u64,
}

impl<'a> PlacementEngine<'a> {
    /// Creates an engine and commits the application's pinned CTs (data
    /// sources, result consumers, and any explicitly pinned interior CT),
    /// routing TTs between pinned neighbors — Algorithm 2 lines 1–5.
    ///
    /// # Errors
    ///
    /// Returns [`AssignError::Model`] if a pinned host is outside the
    /// network and [`AssignError::NoRoute`] if two pinned neighbor CTs
    /// have topologically disconnected hosts.
    pub fn new(
        app: &'a Application,
        network: &'a Network,
        capacities: &'a CapacityMap,
    ) -> Result<Self, AssignError> {
        Self::new_traced(app, network, capacities, TraceHandle::none())
    }

    /// Like [`Self::new`], with a telemetry handle the engine records
    /// decision/commit events and γ-cache counters into. Pass
    /// [`TraceHandle::none`] (or call [`Self::new`]) to trace nothing.
    ///
    /// # Errors
    ///
    /// Same as [`Self::new`].
    pub fn new_traced(
        app: &'a Application,
        network: &'a Network,
        capacities: &'a CapacityMap,
        trace: TraceHandle<'a>,
    ) -> Result<Self, AssignError> {
        Self::new_traced_with_repr(app, network, capacities, trace, GraphRepr::default())
    }

    /// Like [`Self::new_traced`], with an explicit graph representation.
    /// Both representations commit byte-identical placements (routes,
    /// rates, telemetry) — `tests/csr_equivalence.rs` enforces this —
    /// so [`GraphRepr::Legacy`] exists for differencing and as the
    /// reference the CSR fast path is validated against.
    ///
    /// # Errors
    ///
    /// Same as [`Self::new`].
    pub fn new_traced_with_repr(
        app: &'a Application,
        network: &'a Network,
        capacities: &'a CapacityMap,
        trace: TraceHandle<'a>,
        repr: GraphRepr,
    ) -> Result<Self, AssignError> {
        Self::new_traced_with_scratch(
            app,
            network,
            capacities,
            trace,
            repr,
            &mut EngineScratch::default(),
        )
    }

    /// Like [`Self::new_traced_with_repr`], taking the reusable buffers
    /// out of a caller-hoisted [`EngineScratch`] instead of allocating
    /// fresh ones. Pair with [`Self::reclaim_scratch`] to hand them back
    /// once the assignment is done; warmed buffers make repeated
    /// assignments (probe loops) allocation-free for every
    /// content-independent structure.
    ///
    /// # Errors
    ///
    /// Same as [`Self::new`].
    pub fn new_traced_with_scratch(
        app: &'a Application,
        network: &'a Network,
        capacities: &'a CapacityMap,
        trace: TraceHandle<'a>,
        repr: GraphRepr,
        scratch: &mut EngineScratch,
    ) -> Result<Self, AssignError> {
        app.check_against_network(network)?;
        assert_eq!(
            capacities.ncp_count(),
            network.ncp_count(),
            "capacity map must match the network shape"
        );
        let (rev, csr) = match repr {
            GraphRepr::Legacy => (Some(ReverseAdjacency::new(network)), None),
            GraphRepr::Csr => (None, Some(Arc::clone(network.csr()))),
        };
        let mut engine = PlacementEngine {
            app,
            network,
            capacities,
            placement: Placement::empty(app.graph()),
            load: LoadMap::zeroed(network),
            placed: vec![false; app.graph().ct_count()],
            repr,
            rev,
            csr,
            generation: network.generation(),
            cache: vec![None; app.graph().ct_count()],
            row_scratch: std::mem::take(&mut scratch.row),
            // Both routing scratches resize lazily on first use, so the
            // representation not in play costs nothing.
            route_scratch: std::mem::take(&mut scratch.route),
            csr_route_scratch: std::mem::take(&mut scratch.csr_route),
            trace,
            missing_scratch: std::mem::take(&mut scratch.missing),
            pinned_done: false,
            unpinned_committed: false,
            stats: AssignStats::default(),
            #[cfg(feature = "telemetry")]
            round: 0,
        };
        for (&ct, &host) in app.pinned() {
            if let Err(e) = engine.commit(ct, host) {
                // A rejected pin must not swallow the caller's buffers.
                engine.reclaim_scratch(scratch);
                return Err(e);
            }
        }
        engine.pinned_done = true;
        Ok(engine)
    }

    /// The telemetry handle this engine records into.
    pub fn trace(&self) -> TraceHandle<'a> {
        self.trace
    }

    /// The graph representation this engine traverses.
    pub fn graph_repr(&self) -> GraphRepr {
        self.repr
    }

    /// The application being placed.
    pub fn app(&self) -> &Application {
        self.app
    }

    /// The network being placed onto.
    pub fn network(&self) -> &Network {
        self.network
    }

    /// The capacities the engine optimizes against.
    pub fn capacities(&self) -> &CapacityMap {
        self.capacities
    }

    /// The placement built so far.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The loads accumulated so far.
    pub fn load(&self) -> &LoadMap {
        &self.load
    }

    /// Whether `ct` has been committed.
    pub fn is_placed(&self, ct: CtId) -> bool {
        self.placed[ct.index()]
    }

    /// CTs not yet committed, in id order (the paper's set `C_u`).
    ///
    /// Allocation-free: the ranking loop calls this every round, so it
    /// yields ids lazily instead of collecting a fresh `Vec` (the
    /// scaling bench asserts the steady-state loop allocates nothing).
    pub fn unplaced(&self) -> impl Iterator<Item = CtId> + '_ {
        self.app
            .graph()
            .ct_ids()
            .filter(|&ct| !self.placed[ct.index()])
    }

    /// The paper's `γ_{i,j}` (eq. (2)): the bottleneck processing rate
    /// that results from hypothetically placing CT `i` on NCP `j`,
    /// considering
    ///
    /// * the host's compute headroom
    ///   `min_r C_j^(r) / (a_i^(r) + Σ_{i''} y_{i'',j} a_{i''}^(r))`, and
    /// * for every already-placed reachable CT `i'` (through unplaced
    ///   intermediates), the widest-path bottleneck from `j` to `h(i')`
    ///   for the cheapest TT in `G(i, i')` (Algorithm 2 lines 10–13).
    ///
    /// Returns `None` when some reachable placed CT cannot be routed to
    /// from `j` at all (placing `i` there would strand a TT).
    pub fn gamma(&self, ct: CtId, host: NcpId) -> Option<f64> {
        let graph = self.app.graph();
        let mut gamma = self.host_rate(ct, host);
        for reach in graph.placed_reachable(ct, |c| self.placed[c.index()]) {
            let other_host = self
                .placement
                .ct_host(reach.ct)
                .expect("reachable CTs are placed");
            let path = widest_path(
                self.network,
                self.capacities,
                &self.load,
                reach.min_bits,
                host,
                other_host,
            )?;
            gamma = gamma.min(path.width);
        }
        Some(gamma)
    }

    /// The *compute-only* part of `γ_{i,j}`: the rate the host NCP alone
    /// would impose, `min_r C_j^(r) / (a_i^(r) + Σ_{i''} y_{i'',j}
    /// a_{i''}^(r))`, ignoring every link. This is what a scheduler that
    /// does "not consider the connecting TTs' resource requirements"
    /// (the paper's GS/GRand baselines) optimizes.
    pub fn host_rate(&self, ct: CtId, host: NcpId) -> f64 {
        let combined = self
            .load
            .ncp(host)
            .plus_scaled(self.app.graph().ct(ct).requirement(), 1.0);
        self.capacities
            .ncp(host)
            .rate_supported(&combined)
            .unwrap_or(f64::INFINITY)
    }

    /// The best host for `ct` right now: `j*_i = argmax_j γ_{i,j}`
    /// (Algorithm 2 line 15). Ties break toward the lower NCP id for
    /// determinism. Returns `None` if no host can route all of `ct`'s
    /// placed reachable CTs.
    pub fn best_host(&self, ct: CtId) -> Option<(NcpId, f64)> {
        let mut best: Option<(NcpId, f64)> = None;
        for host in self.network.ncp_ids() {
            if let Some(g) = self.gamma(ct, host) {
                if best.is_none_or(|(_, bg)| g > bg) {
                    best = Some((host, g));
                }
            }
        }
        best
    }

    /// Places `ct` on `host` and routes every TT between `ct` and an
    /// already-placed direct neighbor on its widest path (recomputed at
    /// commit time with current loads), updating the engine's loads.
    ///
    /// # Errors
    ///
    /// Returns [`AssignError::NoRoute`] if a neighbor's host is
    /// unreachable from `host`.
    ///
    /// # Panics
    ///
    /// Panics if `ct` is already placed.
    pub fn commit(&mut self, ct: CtId, host: NcpId) -> Result<(), AssignError> {
        self.commit_with(ct, host, RoutePolicy::Widest)
    }

    /// Like [`Self::commit`] but with an explicit TT routing policy.
    /// Baseline algorithms that are not network-aware route by hop count
    /// ([`RoutePolicy::FewestHops`]); SPARCLE routes by Algorithm 1
    /// ([`RoutePolicy::Widest`]).
    ///
    /// # Errors
    ///
    /// Returns [`AssignError::NoRoute`] if a neighbor's host is
    /// unreachable from `host`.
    ///
    /// # Panics
    ///
    /// Panics if `ct` is already placed.
    pub fn commit_with(
        &mut self,
        ct: CtId,
        host: NcpId,
        policy: RoutePolicy,
    ) -> Result<(), AssignError> {
        assert!(!self.placed[ct.index()], "{ct} is already placed");
        if self.pinned_done {
            self.unpinned_committed = true;
        }
        let commit_span = self.trace.span("engine.commit");
        let graph = self.app.graph();
        // Cache rows whose `placed_reachable` set this commit may change:
        // the CTs connected to `ct` through unplaced intermediates,
        // gathered before `placed` is mutated (module docs, rule 1).
        let mut affected = vec![false; graph.ct_count()];
        affected[ct.index()] = true;
        let mut stack = vec![ct];
        while let Some(u) = stack.pop() {
            for tt in graph.incident_edges(u) {
                let v = graph.tt(tt).other_endpoint(u).expect("incident edge");
                if !self.placed[v.index()] && !affected[v.index()] {
                    affected[v.index()] = true;
                    stack.push(v);
                }
            }
        }
        self.placement.place_ct(ct, host);
        self.placed[ct.index()] = true;
        self.load.add_ct_load(host, graph.ct(ct).requirement());
        let mut touched = LinkSet::new(self.network.link_count());
        let routed = self.route_incident(ct, policy, &mut touched);
        // Invalidate even on a routing error: loads added before the
        // failure are real, and callers may keep using the engine.
        #[cfg(feature = "telemetry")]
        let (mut inv_component, mut inv_witness) = (0u64, 0u64);
        for (i, row) in self.cache.iter_mut().enumerate() {
            let stale = affected[i] || row.as_ref().is_some_and(|r| r.witness.intersects(&touched));
            if stale {
                #[cfg(feature = "telemetry")]
                if row.is_some() {
                    if affected[i] {
                        inv_component += 1;
                    } else {
                        inv_witness += 1;
                    }
                }
                *row = None;
            }
        }
        #[cfg(feature = "telemetry")]
        {
            self.trace.counter("engine.commits", 1);
            self.trace
                .counter("gamma_cache.invalidated_component", inv_component);
            self.trace
                .counter("gamma_cache.invalidated_witness", inv_witness);
            if self.trace.is_enabled() {
                let (routed_tts, routed_hops) = routed.as_ref().ok().copied().unwrap_or((0, 0));
                self.trace.event(&Event::Commit(CommitRecord {
                    ct: ct.index() as u32,
                    host: host.index() as u32,
                    invalidated_component: inv_component,
                    invalidated_witness: inv_witness,
                    routed_tts,
                    routed_hops,
                }));
            }
        }
        // A failed route leaves the span to drop: its close is marked
        // aborted, flagging the error path in profiles.
        if routed.is_ok() {
            commit_span.finish();
        }
        routed.map(|_| ())
    }

    /// Routes every TT between `ct` and an already-placed direct neighbor
    /// under `policy`, recording routed links in `touched`. TTs go
    /// cheapest-bits first so heavyweight TTs see the most up-to-date
    /// loads last (ordering is a heuristic; the paper routes them one at
    /// a time). Returns `(routed TTs, total link hops)` for telemetry.
    fn route_incident(
        &mut self,
        ct: CtId,
        policy: RoutePolicy,
        touched: &mut LinkSet,
    ) -> Result<(u64, u64), AssignError> {
        let route_span = self.trace.span("engine.route");
        let graph = self.app.graph();
        let mut routed_tts = 0u64;
        let mut routed_hops = 0u64;
        let mut incident: Vec<TtId> = graph.incident_edges(ct).collect();
        incident.sort_by(|&a, &b| {
            graph
                .tt(a)
                .bits_per_unit()
                .total_cmp(&graph.tt(b).bits_per_unit())
        });
        for tt in incident {
            let t = graph.tt(tt);
            let other = t.other_endpoint(ct).expect("incident edge");
            if !self.placed[other.index()] {
                continue;
            }
            let from_host = self.placement.ct_host(t.from()).expect("placed");
            let to_host = self.placement.ct_host(t.to()).expect("placed");
            let links = match policy {
                RoutePolicy::Widest => match self.csr.as_deref() {
                    Some(csr) => csr_widest_path_with(
                        &mut self.csr_route_scratch,
                        csr,
                        self.capacities,
                        &self.load,
                        t.bits_per_unit(),
                        from_host,
                        to_host,
                    )
                    .map(|p| p.links),
                    None => widest_path_with(
                        &mut self.route_scratch,
                        self.network,
                        self.capacities,
                        &self.load,
                        t.bits_per_unit(),
                        from_host,
                        to_host,
                    )
                    .map(|p| p.links),
                },
                // Hop-count routing ignores widths entirely, so it runs
                // on the legacy adjacency under both representations.
                RoutePolicy::FewestHops => fewest_hops_path(self.network, from_host, to_host),
            }
            .ok_or(AssignError::NoRoute {
                tt,
                from: from_host,
                to: to_host,
            })?;
            for &link in &links {
                self.load.add_tt_load(link, t.bits_per_unit());
                touched.insert(link);
            }
            routed_tts += 1;
            routed_hops += links.len() as u64;
            self.placement.route_tt(tt, links);
        }
        route_span.finish();
        Ok((routed_tts, routed_hops))
    }

    /// The active representation's traversal structure.
    fn repr_view(&self) -> ReprView<'_> {
        match (&self.csr, &self.rev) {
            (Some(csr), _) => ReprView::Csr(csr),
            (None, Some(rev)) => ReprView::Legacy(rev),
            (None, None) => unreachable!("one representation is always materialized"),
        }
    }

    /// `true` when `row` was computed against this engine's topology —
    /// the last line of defense against dense-id aliasing across
    /// rebuilt networks (see [`GammaRow`]).
    fn row_valid(&self, row: &GammaRow) -> bool {
        row.generation == self.generation
    }

    /// The read-only state snapshot γ rows are computed from.
    fn eval_view(&self) -> EvalView<'_> {
        EvalView {
            graph: self.app.graph(),
            placement: &self.placement,
            placed: &self.placed,
            capacities: self.capacities,
            load: &self.load,
            repr: self.repr_view(),
            ncp_count: self.network.ncp_count(),
            link_count: self.network.link_count(),
            generation: self.generation,
        }
    }

    /// Fills `ct`'s cache row if missing (serial path).
    fn ensure_row(&mut self, ct: CtId) {
        if self.cache[ct.index()]
            .as_ref()
            .is_some_and(|r| self.row_valid(r))
        {
            return;
        }
        #[cfg(feature = "telemetry")]
        let started = self.trace.is_enabled().then(std::time::Instant::now);
        let view = EvalView {
            graph: self.app.graph(),
            placement: &self.placement,
            placed: &self.placed,
            capacities: self.capacities,
            load: &self.load,
            repr: match (&self.csr, &self.rev) {
                (Some(csr), _) => ReprView::Csr(csr),
                (None, Some(rev)) => ReprView::Legacy(rev),
                (None, None) => unreachable!("one representation is always materialized"),
            },
            ncp_count: self.network.ncp_count(),
            link_count: self.network.link_count(),
            generation: self.generation,
        };
        let row = view.compute_net_row(ct, &mut self.row_scratch);
        self.cache[ct.index()] = Some(row);
        #[cfg(feature = "telemetry")]
        if let Some(t0) = started {
            let nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.trace.timing("engine.row_fill_ns", nanos);
        }
    }

    /// [`Self::gamma`] served from the γ-cache: computes (or reuses)
    /// `ct`'s whole row, then combines the cached network term with a
    /// fresh host term. Bit-identical to [`Self::gamma`] — the
    /// determinism suite holds both paths to that.
    pub fn gamma_batched(&mut self, ct: CtId, host: NcpId) -> Option<f64> {
        self.ensure_row(ct);
        let net = self.cache[ct.index()]
            .as_ref()
            .expect("row just ensured")
            .net[host.index()];
        if net == f64::NEG_INFINITY {
            return None;
        }
        Some(self.host_rate(ct, host).min(net))
    }

    /// One ranking round of Algorithm 2 over the γ-cache: returns the
    /// `argmin_i max_j γ_{i,j}` choice `(i*, j*, γ)` among unplaced CTs,
    /// or `None` when everything is placed. Missing cache rows are filled
    /// by up to `threads` worker threads; the choice is identical for
    /// every `threads` value and identical to the serial reference scan
    /// (module docs describe the tie-break).
    ///
    /// # Errors
    ///
    /// Returns [`AssignError::NoHostForCt`] for the lowest-id unplaced CT
    /// that no host can route — exactly where the reference scan stops.
    pub fn rank_round(
        &mut self,
        threads: usize,
    ) -> Result<Option<(CtId, NcpId, f64)>, AssignError> {
        // One pass over the graph fills the (reused) missing-row scratch
        // and counts the unplaced set — no per-round allocation once the
        // scratch has grown to its high-water mark.
        let mut missing = std::mem::take(&mut self.missing_scratch);
        missing.clear();
        let mut unplaced_count = 0usize;
        for ct in self.app.graph().ct_ids() {
            if self.placed[ct.index()] {
                continue;
            }
            unplaced_count += 1;
            let present = self.cache[ct.index()]
                .as_ref()
                .is_some_and(|r| self.row_valid(r));
            if !present {
                missing.push(ct);
            }
        }
        if unplaced_count == 0 {
            self.missing_scratch = missing;
            return Ok(None);
        }
        let round_span = self.trace.span("engine.rank_round");
        let (cache_hits, cache_misses) = (
            (unplaced_count - missing.len()) as u64,
            missing.len() as u64,
        );
        self.stats.rank_rounds += 1;
        self.stats.cache_hits += cache_hits;
        self.stats.cache_misses += cache_misses;
        let fill_span = (!missing.is_empty()).then(|| self.trace.span("engine.row_fill"));
        let workers = threads.max(1).min(missing.len());
        if workers > 1 {
            let view = self.eval_view();
            let next = AtomicUsize::new(0);
            let rows: Mutex<Vec<(CtId, GammaRow)>> = Mutex::new(Vec::with_capacity(missing.len()));
            // Workers never touch the recorder (so `Recorder` needs no
            // `Sync` bound): per-row fill times are collected as plain
            // data and recorded serially after the join.
            #[cfg(feature = "telemetry")]
            let fill_ns: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(missing.len()));
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| {
                        let mut scratch = RowScratch::default();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&ct) = missing.get(i) else { break };
                            #[cfg(feature = "telemetry")]
                            let started = std::time::Instant::now();
                            let row = view.compute_net_row(ct, &mut scratch);
                            #[cfg(feature = "telemetry")]
                            fill_ns.lock().expect("timing mutex").push(
                                u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                            );
                            rows.lock().expect("row mutex").push((ct, row));
                        }
                    });
                }
            });
            for (ct, row) in rows.into_inner().expect("row mutex") {
                self.cache[ct.index()] = Some(row);
            }
            #[cfg(feature = "telemetry")]
            for ns in fill_ns.into_inner().expect("timing mutex") {
                self.trace.timing("engine.row_fill_ns", ns);
            }
        } else {
            for &ct in &missing {
                self.ensure_row(ct);
            }
        }
        missing.clear();
        self.missing_scratch = missing;
        if let Some(span) = fill_span {
            span.finish();
        }
        let merge_span = self.trace.span("engine.rank_merge");
        // Serial merge over the (now complete) rows, reproducing the
        // reference scan's strict-comparison tie-breaks exactly.
        #[cfg(feature = "telemetry")]
        let mut candidates: Vec<Candidate> = Vec::new();
        #[cfg(feature = "telemetry")]
        let mut ct_tied = false;
        let mut pick: Option<(f64, CtId, NcpId)> = None;
        for ct in self.app.graph().ct_ids() {
            if self.placed[ct.index()] {
                continue;
            }
            let row = self.cache[ct.index()].as_ref().expect("row just ensured");
            let mut best: Option<(NcpId, f64)> = None;
            #[cfg(feature = "telemetry")]
            let mut host_tied = false;
            for host in self.network.ncp_ids() {
                let net = row.net[host.index()];
                if net == f64::NEG_INFINITY {
                    continue;
                }
                let g = self.host_rate(ct, host).min(net);
                if best.is_none_or(|(_, bg)| g > bg) {
                    best = Some((host, g));
                    #[cfg(feature = "telemetry")]
                    {
                        host_tied = false;
                    }
                } else {
                    #[cfg(feature = "telemetry")]
                    if best.is_some_and(|(_, bg)| g == bg) {
                        host_tied = true;
                    }
                }
            }
            let (host, g) = best.ok_or(AssignError::NoHostForCt(ct))?;
            #[cfg(feature = "telemetry")]
            if self.trace.is_enabled() {
                candidates.push(Candidate {
                    ct: ct.index() as u32,
                    host: host.index() as u32,
                    gamma: g,
                    host_tie: if host_tied {
                        HostTieBreak::LowerNcpId
                    } else {
                        HostTieBreak::UniqueMax
                    },
                });
            }
            if pick.is_none_or(|(bg, _, _)| g < bg) {
                pick = Some((g, ct, host));
                #[cfg(feature = "telemetry")]
                {
                    ct_tied = false;
                }
            } else {
                #[cfg(feature = "telemetry")]
                if pick.is_some_and(|(bg, _, _)| g == bg) {
                    ct_tied = true;
                }
            }
        }
        let (g, ct, host) = pick.expect("unplaced set is non-empty");
        merge_span.finish();
        #[cfg(feature = "telemetry")]
        {
            self.trace.counter("engine.rank_rounds", 1);
            self.trace.counter("gamma_cache.hits", cache_hits);
            self.trace.counter("gamma_cache.misses", cache_misses);
            if self.trace.is_enabled() {
                self.trace.event(&Event::Decision(PlacementDecision {
                    round: self.round,
                    candidates,
                    ct: ct.index() as u32,
                    host: host.index() as u32,
                    gamma: g,
                    tie_break: if ct_tied {
                        CtTieBreak::LowerCtId
                    } else {
                        CtTieBreak::UniqueMin
                    },
                    cache_hits,
                    cache_misses,
                }));
            }
            self.round += 1;
        }
        round_span.finish();
        Ok(Some((ct, host, g)))
    }

    /// The γ-cache work counters accumulated by this engine so far.
    pub fn stats(&self) -> AssignStats {
        self.stats
    }

    /// Exports the current γ-cache rows for adoption by another engine
    /// over the same `(application, network, capacities)` triple.
    ///
    /// Returns `None` once any *unpinned* commit has happened: from that
    /// point the cached rows depend on this engine's ranking decisions
    /// and would poison a fresh engine. Before that, every row is a pure
    /// function of the shared inputs (construction commits exactly the
    /// pinned CTs, in pinned order), so adoption is sound and
    /// bit-preserving. Typical use: run one [`Self::rank_round`] on a
    /// seeder engine, export, and let repeated re-assignments of the
    /// same app start warm — `scale_assign` in `sparcle-bench` does
    /// exactly this.
    pub fn export_rows(&self) -> Option<GammaRows> {
        if self.unpinned_committed {
            return None;
        }
        Some(GammaRows {
            generation: self.generation,
            ct_count: self.app.graph().ct_count(),
            ncp_count: self.network.ncp_count(),
            rows: self.cache.clone(),
        })
    }

    /// Adopts exported γ rows into this engine's cache, filling only
    /// empty slots, and returns how many rows were adopted.
    ///
    /// Adoption is refused wholesale (returns 0) when the snapshot's
    /// topology generation or shape differs from this engine's, or when
    /// this engine has already committed an unpinned CT — the stale-row
    /// aliasing the generation stamp exists to prevent (see
    /// `GammaRow`; the regression lives in `tests/csr_equivalence.rs`).
    pub fn adopt_rows(&mut self, rows: &GammaRows) -> usize {
        if rows.generation != self.generation
            || rows.ct_count != self.app.graph().ct_count()
            || rows.ncp_count != self.network.ncp_count()
            || self.unpinned_committed
        {
            return 0;
        }
        let mut adopted = 0;
        for (slot, row) in self.cache.iter_mut().zip(&rows.rows) {
            if slot.is_none() {
                if let Some(row) = row {
                    *slot = Some(row.clone());
                    adopted += 1;
                }
            }
        }
        adopted
    }

    /// Hands the reusable buffers back to a caller-hoisted
    /// [`EngineScratch`] so the *next* engine built over it starts warm.
    /// Call once the ranking loop is done — [`Self::finish`] does not
    /// touch any of these buffers. Reclaiming into a different scratch
    /// than the one the engine was built from is harmless (the buffers
    /// carry no placement content, only capacity).
    pub fn reclaim_scratch(&mut self, scratch: &mut EngineScratch) {
        scratch.row = std::mem::take(&mut self.row_scratch);
        scratch.route = std::mem::take(&mut self.route_scratch);
        scratch.csr_route = std::mem::take(&mut self.csr_route_scratch);
        scratch.missing = std::mem::take(&mut self.missing_scratch);
        scratch.missing.clear();
    }

    /// Finishes the assignment: validates the placement and computes the
    /// achieved rate.
    ///
    /// # Errors
    ///
    /// Returns [`AssignError::Incomplete`] if CTs remain unplaced, or a
    /// validation error for an internally inconsistent placement (a bug).
    pub fn finish(self) -> Result<AssignedPath, AssignError> {
        if let Some(ct) = self.unplaced().next() {
            return Err(AssignError::Incomplete { ct });
        }
        self.placement
            .validate(self.app.graph(), self.network)
            .map_err(AssignError::Model)?;
        let rate = self.capacities.bottleneck_rate(&self.load);
        Ok(AssignedPath {
            placement: self.placement,
            load: self.load,
            rate,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparcle_model::{NetworkBuilder, QoeClass, ResourceVec, TaskGraphBuilder};

    /// source → work → sink on a 3-node chain, endpoints pinned to the
    /// chain's ends.
    fn fixture() -> (Application, Network) {
        let mut tb = TaskGraphBuilder::new();
        let s = tb.add_ct("source", ResourceVec::new());
        let w = tb.add_ct("work", ResourceVec::cpu(10.0));
        let t = tb.add_ct("sink", ResourceVec::new());
        tb.add_tt("in", s, w, 8.0).unwrap();
        tb.add_tt("out", w, t, 2.0).unwrap();
        let graph = tb.build().unwrap();
        let app = Application::new(
            graph,
            QoeClass::best_effort(1.0),
            [(s, NcpId::new(0)), (t, NcpId::new(2))],
        )
        .unwrap();

        let mut nb = NetworkBuilder::new();
        let a = nb.add_ncp("a", ResourceVec::cpu(40.0));
        let b = nb.add_ncp("b", ResourceVec::cpu(100.0));
        let c = nb.add_ncp("c", ResourceVec::cpu(60.0));
        nb.add_link("ab", a, b, 80.0).unwrap();
        nb.add_link("bc", b, c, 80.0).unwrap();
        let network = nb.build().unwrap();
        (app, network)
    }

    #[test]
    fn new_pins_sources_and_sinks() {
        let (app, net) = fixture();
        let caps = net.capacity_map();
        let engine = PlacementEngine::new(&app, &net, &caps).unwrap();
        assert!(engine.is_placed(CtId::new(0)));
        assert!(!engine.is_placed(CtId::new(1)));
        assert!(engine.is_placed(CtId::new(2)));
        assert_eq!(engine.unplaced().collect::<Vec<_>>(), vec![CtId::new(1)]);
        assert_eq!(
            engine.placement().ct_host(CtId::new(0)),
            Some(NcpId::new(0))
        );
    }

    #[test]
    fn gamma_accounts_for_host_and_paths() {
        let (app, net) = fixture();
        let caps = net.capacity_map();
        let engine = PlacementEngine::new(&app, &net, &caps).unwrap();
        let w = CtId::new(1);
        // On NCP1 (middle): host 100/10 = 10; TT "in" (8 bits) one hop
        // 80/8 = 10; TT "out" (2 bits) one hop 80/2 = 40 ⇒ γ = 10.
        let g1 = engine.gamma(w, NcpId::new(1)).unwrap();
        assert!((g1 - 10.0).abs() < 1e-12, "γ = {g1}");
        // On NCP0 (source host): host 40/10 = 4; "in" local; "out"
        // crosses both links: min(80/2, 80/2) = 40 ⇒ γ = 4.
        let g0 = engine.gamma(w, NcpId::new(0)).unwrap();
        assert!((g0 - 4.0).abs() < 1e-12, "γ = {g0}");
        // Best host is the middle NCP.
        let (host, g) = engine.best_host(w).unwrap();
        assert_eq!(host, NcpId::new(1));
        assert_eq!(g, g1);
    }

    #[test]
    fn commit_routes_tts_to_placed_neighbors() {
        let (app, net) = fixture();
        let caps = net.capacity_map();
        let mut engine = PlacementEngine::new(&app, &net, &caps).unwrap();
        engine.commit(CtId::new(1), NcpId::new(1)).unwrap();
        let path = engine.finish().unwrap();
        assert!((path.rate - 10.0).abs() < 1e-12);
        assert_eq!(path.placement.tt_route(TtId::new(0)).unwrap().len(), 1);
        assert_eq!(path.placement.tt_route(TtId::new(1)).unwrap().len(), 1);
    }

    #[test]
    fn host_rate_ignores_links() {
        let (app, net) = fixture();
        let caps = net.capacity_map();
        let engine = PlacementEngine::new(&app, &net, &caps).unwrap();
        let w = CtId::new(1);
        // Compute-only rates: NCP0 40/10 = 4, NCP1 100/10 = 10,
        // NCP2 60/10 = 6 — no link term anywhere.
        assert!((engine.host_rate(w, NcpId::new(0)) - 4.0).abs() < 1e-12);
        assert!((engine.host_rate(w, NcpId::new(1)) - 10.0).abs() < 1e-12);
        assert!((engine.host_rate(w, NcpId::new(2)) - 6.0).abs() < 1e-12);
        // γ on NCP0 is also 4 (local TT + wide out-links), equal to the
        // node term; on NCP1 the node term dominates γ too.
        assert!(engine.gamma(w, NcpId::new(0)).unwrap() <= 4.0 + 1e-12);
    }

    #[test]
    fn commit_with_fewest_hops_uses_shortest_route() {
        // Triangle with a wide two-hop detour: FewestHops must take the
        // direct (narrow) link, Widest the detour.
        let mut nb = NetworkBuilder::new();
        let a = nb.add_ncp("a", ResourceVec::cpu(100.0));
        let b = nb.add_ncp("b", ResourceVec::cpu(100.0));
        let c = nb.add_ncp("c", ResourceVec::cpu(100.0));
        nb.add_link("direct", a, b, 5.0).unwrap();
        nb.add_link("via1", a, c, 500.0).unwrap();
        nb.add_link("via2", c, b, 500.0).unwrap();
        let net = nb.build().unwrap();
        let caps = net.capacity_map();

        // The middle CT is unpinned so routing happens at the policy'd
        // commit (endpoint-only graphs route at construction time).
        let mut tb = TaskGraphBuilder::new();
        let s2 = tb.add_ct("s", ResourceVec::new());
        let m2 = tb.add_ct("m", ResourceVec::cpu(1.0));
        let t2 = tb.add_ct("t", ResourceVec::new());
        tb.add_tt("sm", s2, m2, 10.0).unwrap();
        tb.add_tt("mt", m2, t2, 0.0).unwrap();
        let graph2 = tb.build().unwrap();
        let app3 = Application::new(
            graph2.clone(),
            QoeClass::best_effort(1.0),
            [(s2, a), (t2, a)],
        )
        .unwrap();
        let mut widest = PlacementEngine::new(&app3, &net, &caps).unwrap();
        widest.commit_with(m2, b, RoutePolicy::Widest).unwrap();
        let widest_route = widest.placement().tt_route(graph2.tt_ids().next().unwrap());
        assert_eq!(widest_route.unwrap().len(), 2, "widest takes the detour");

        let mut fewest = PlacementEngine::new(&app3, &net, &caps).unwrap();
        fewest.commit_with(m2, b, RoutePolicy::FewestHops).unwrap();
        let fewest_route = fewest.placement().tt_route(graph2.tt_ids().next().unwrap());
        assert_eq!(fewest_route.unwrap().len(), 1, "fewest hops goes direct");
    }

    #[test]
    fn finish_rejects_incomplete() {
        let (app, net) = fixture();
        let caps = net.capacity_map();
        let engine = PlacementEngine::new(&app, &net, &caps).unwrap();
        assert!(matches!(
            engine.finish(),
            Err(AssignError::Incomplete { ct }) if ct == CtId::new(1)
        ));
    }

    #[test]
    fn no_route_is_reported() {
        // Source pinned on an isolated island: the middle CT cannot be
        // routed to it from anywhere off-island.
        let mut tb = TaskGraphBuilder::new();
        let s = tb.add_ct("s", ResourceVec::new());
        let w = tb.add_ct("w", ResourceVec::cpu(1.0));
        tb.add_tt("sw", s, w, 1.0).unwrap();
        let graph = tb.build().unwrap();
        let app = Application::new(
            graph,
            QoeClass::best_effort(1.0),
            [(s, NcpId::new(0)), (w, NcpId::new(1))],
        )
        .unwrap();
        let mut nb = NetworkBuilder::new();
        nb.add_ncp("island", ResourceVec::cpu(1.0));
        nb.add_ncp("mainland", ResourceVec::cpu(1.0));
        let net = nb.build().unwrap();
        let caps = net.capacity_map();
        assert!(matches!(
            PlacementEngine::new(&app, &net, &caps),
            Err(AssignError::NoRoute { .. })
        ));
    }

    #[test]
    fn gamma_none_when_host_cannot_reach_placed_neighbor() {
        let mut tb = TaskGraphBuilder::new();
        let s = tb.add_ct("s", ResourceVec::new());
        let w = tb.add_ct("w", ResourceVec::cpu(1.0));
        tb.add_tt("sw", s, w, 1.0).unwrap();
        let graph = tb.build().unwrap();
        let app = Application::new(
            graph,
            QoeClass::best_effort(1.0),
            [(s, NcpId::new(0)), (w, NcpId::new(0))],
        )
        .unwrap();
        let mut nb = NetworkBuilder::new();
        let a = nb.add_ncp("a", ResourceVec::cpu(1.0));
        let b = nb.add_ncp("b", ResourceVec::cpu(1.0));
        let c = nb.add_ncp("c", ResourceVec::cpu(1.0));
        nb.add_link("ab", a, b, 1.0).unwrap();
        let net = nb.build().unwrap();
        let caps = net.capacity_map();
        // Build a fresh app whose w is unpinned to probe gamma.
        let app2 = Application::new(
            app.graph().clone(),
            QoeClass::best_effort(1.0),
            [(s, NcpId::new(0))],
        );
        // w is a sink so it must be pinned; instead probe via engine on
        // the pinned app but query gamma for the *unplaced* state by
        // rebuilding manually. Simpler: check gamma from the isolated c.
        drop(app2);
        let engine_app = Application::new(
            app.graph().clone(),
            QoeClass::best_effort(1.0),
            [(s, NcpId::new(0)), (w, NcpId::new(1))],
        )
        .unwrap();
        // Pin w on b (reachable) so construction succeeds, then ask γ
        // for a hypothetical placement elsewhere — use a 2-CT graph with
        // an extra middle CT instead.
        let mut tb = TaskGraphBuilder::new();
        let s2 = tb.add_ct("s", ResourceVec::new());
        let m2 = tb.add_ct("m", ResourceVec::cpu(1.0));
        let t2 = tb.add_ct("t", ResourceVec::new());
        tb.add_tt("sm", s2, m2, 1.0).unwrap();
        tb.add_tt("mt", m2, t2, 1.0).unwrap();
        let graph3 = tb.build().unwrap();
        let app3 = Application::new(
            graph3,
            QoeClass::best_effort(1.0),
            [(s2, NcpId::new(0)), (t2, NcpId::new(1))],
        )
        .unwrap();
        let engine = PlacementEngine::new(&app3, &net, &caps).unwrap();
        // Hosting m on isolated c cannot route to a or b.
        assert_eq!(engine.gamma(m2, c), None);
        assert!(engine.gamma(m2, a).is_some());
        drop(engine_app);
    }
}
