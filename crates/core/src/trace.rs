//! The [`TraceHandle`] the engine and its callers thread telemetry
//! through.
//!
//! The handle exists in **both** feature configurations so every public
//! API that accepts one (`PlacementEngine::new_traced`,
//! `Assigner::assign_traced`, the sim entry points, …) keeps a single
//! signature:
//!
//! * with the `telemetry` feature **off**, [`TraceHandle`] is a
//!   zero-sized type and all of its methods are empty `#[inline]` bodies
//!   — instrumentation call sites compile to nothing;
//! * with the feature **on**, it wraps an optional
//!   `&dyn sparcle_telemetry::Recorder`, and a `None` recorder still
//!   short-circuits every recording path.
//!
//! The expensive instrumentation inside the engine (building candidate
//! sets for decision events, timing row fills) is additionally gated on
//! `#[cfg(feature = "telemetry")]` + [`TraceHandle::is_enabled`], so
//! even feature-on builds pay nothing when no recorder is attached.
//!
//! ## Spans
//!
//! Hierarchical timed spans ride the same handle but are **separately
//! opt-in**: only a handle built with [`TraceHandle::with_spans`]
//! carries a [`sparcle_telemetry::SpanTracker`], and only such handles
//! emit `span_open`/`span_close` events from [`TraceHandle::span`].
//! Span timestamps are wall-clock, so the byte-identical determinism
//! suites run with span-less handles and see traces without span lines;
//! `--trace-spans` on the experiment binaries turns them on.

#[cfg(feature = "telemetry")]
use sparcle_telemetry::{Event, Recorder, SpanTracker};

/// A copyable, possibly-disconnected reference to a telemetry sink.
///
/// See the module docs for the two feature configurations. Obtain one
/// with [`TraceHandle::none`] (always) or [`TraceHandle::new`] /
/// [`TraceHandle::with_spans`] (feature-gated).
#[derive(Clone, Copy, Default)]
pub struct TraceHandle<'a> {
    #[cfg(feature = "telemetry")]
    recorder: Option<&'a dyn Recorder>,
    #[cfg(feature = "telemetry")]
    spans: Option<&'a SpanTracker>,
    #[cfg(not(feature = "telemetry"))]
    _marker: std::marker::PhantomData<&'a ()>,
}

impl std::fmt::Debug for TraceHandle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHandle")
            .field("enabled", &self.is_enabled())
            .field("spans", &self.spans_enabled())
            .finish()
    }
}

impl<'a> TraceHandle<'a> {
    /// A disconnected handle: records nothing, costs nothing.
    #[inline]
    pub fn none() -> Self {
        Self::default()
    }

    /// A handle recording into `recorder` (no spans).
    #[cfg(feature = "telemetry")]
    pub fn new(recorder: &'a dyn Recorder) -> Self {
        TraceHandle {
            recorder: Some(recorder),
            spans: None,
        }
    }

    /// A handle recording into `recorder` that additionally emits
    /// hierarchical span events through `tracker`.
    #[cfg(feature = "telemetry")]
    pub fn with_spans(recorder: &'a dyn Recorder, tracker: &'a SpanTracker) -> Self {
        TraceHandle {
            recorder: Some(recorder),
            spans: Some(tracker),
        }
    }

    /// Whether a recorder is attached (always `false` with the
    /// `telemetry` feature off).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        #[cfg(feature = "telemetry")]
        {
            self.recorder.is_some()
        }
        #[cfg(not(feature = "telemetry"))]
        {
            false
        }
    }

    /// Whether span events are emitted (always `false` with the
    /// `telemetry` feature off or without a tracker attached).
    #[inline]
    pub fn spans_enabled(&self) -> bool {
        #[cfg(feature = "telemetry")]
        {
            self.recorder.is_some() && self.spans.is_some()
        }
        #[cfg(not(feature = "telemetry"))]
        {
            false
        }
    }

    /// The attached recorder, if any.
    #[cfg(feature = "telemetry")]
    pub fn recorder(&self) -> Option<&'a dyn Recorder> {
        self.recorder
    }

    /// The attached span tracker, if any.
    #[cfg(feature = "telemetry")]
    pub fn span_tracker(&self) -> Option<&'a SpanTracker> {
        self.spans
    }

    /// Records a structured event.
    #[cfg(feature = "telemetry")]
    #[inline]
    pub fn event(&self, event: &Event) {
        if let Some(r) = self.recorder {
            r.event(event);
        }
    }

    /// Increments a named counter.
    #[inline]
    pub fn counter(&self, name: &str, delta: u64) {
        #[cfg(feature = "telemetry")]
        if let Some(r) = self.recorder {
            r.counter(name, delta);
        }
        #[cfg(not(feature = "telemetry"))]
        {
            let _ = (name, delta);
        }
    }

    /// Records a duration (nanoseconds) into a named histogram.
    #[inline]
    pub fn timing(&self, name: &str, nanos: u64) {
        #[cfg(feature = "telemetry")]
        if let Some(r) = self.recorder {
            r.timing(name, nanos);
        }
        #[cfg(not(feature = "telemetry"))]
        {
            let _ = (name, nanos);
        }
    }

    /// Opens a hierarchical span named `name`.
    ///
    /// Returns an inert guard unless both a recorder **and** a span
    /// tracker are attached (see the module docs). Close it with
    /// [`SpanGuard::finish`]; dropping an active guard records an
    /// aborted close.
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard<'a> {
        #[cfg(feature = "telemetry")]
        {
            let inner = match (self.recorder, self.spans) {
                (Some(recorder), Some(tracker)) => Some(tracker.open(recorder, name)),
                _ => None,
            };
            SpanGuard { inner }
        }
        #[cfg(not(feature = "telemetry"))]
        {
            let _ = name;
            SpanGuard {
                _marker: std::marker::PhantomData,
            }
        }
    }
}

/// RAII guard for a [`TraceHandle::span`]. Zero-sized and inert with
/// the `telemetry` feature off or when the handle carries no tracker.
#[must_use = "dropping an active span guard records an aborted close; call finish()"]
pub struct SpanGuard<'a> {
    #[cfg(feature = "telemetry")]
    inner: Option<sparcle_telemetry::Span<'a>>,
    #[cfg(not(feature = "telemetry"))]
    _marker: std::marker::PhantomData<&'a ()>,
}

impl std::fmt::Debug for SpanGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("active", &self.is_active())
            .finish()
    }
}

impl SpanGuard<'_> {
    /// Whether this guard wraps a live span (false for inert guards).
    #[inline]
    pub fn is_active(&self) -> bool {
        #[cfg(feature = "telemetry")]
        {
            self.inner.is_some()
        }
        #[cfg(not(feature = "telemetry"))]
        {
            false
        }
    }

    /// Closes the span normally (no-op for inert guards).
    #[inline]
    pub fn finish(self) {
        #[cfg(feature = "telemetry")]
        if let Some(span) = self.inner {
            span.finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_disabled_and_inert() {
        let t = TraceHandle::none();
        assert!(!t.is_enabled());
        assert!(!t.spans_enabled());
        t.counter("x", 1);
        t.timing("y", 2);
        let guard = t.span("inert");
        assert!(!guard.is_active());
        guard.finish();
        // Dropping an inert guard is also fine.
        let _ = t.span("inert2");
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn new_records_into_the_sink() {
        let r = sparcle_telemetry::CollectRecorder::new();
        let t = TraceHandle::new(&r);
        assert!(t.is_enabled());
        assert!(!t.spans_enabled());
        t.counter("c", 3);
        t.event(&Event::RunStart { name: "t".into() });
        assert_eq!(r.snapshot().counter("c"), 3);
        assert_eq!(r.events().len(), 1);
        // Without a tracker, span() is inert: no span events.
        t.span("quiet").finish();
        assert_eq!(r.events().len(), 1);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn with_spans_emits_nested_span_events() {
        let r = sparcle_telemetry::CollectRecorder::new();
        let tracker = SpanTracker::new();
        let t = TraceHandle::with_spans(&r, &tracker);
        assert!(t.spans_enabled());
        let outer = t.span("outer");
        assert!(outer.is_active());
        {
            let _inner = t.span("inner"); // dropped -> aborted close
        }
        outer.finish();
        let events = r.events();
        assert_eq!(events.len(), 4);
        assert!(matches!(
            &events[1],
            Event::SpanOpen {
                parent: Some(0),
                ..
            }
        ));
        assert!(matches!(&events[2], Event::SpanClose { aborted: true, .. }));
        assert!(matches!(
            &events[3],
            Event::SpanClose { aborted: false, .. }
        ));
    }
}
