//! The [`TraceHandle`] the engine and its callers thread telemetry
//! through.
//!
//! The handle exists in **both** feature configurations so every public
//! API that accepts one (`PlacementEngine::new_traced`,
//! `Assigner::assign_traced`, the sim entry points, …) keeps a single
//! signature:
//!
//! * with the `telemetry` feature **off**, [`TraceHandle`] is a
//!   zero-sized type and all of its methods are empty `#[inline]` bodies
//!   — instrumentation call sites compile to nothing;
//! * with the feature **on**, it wraps an optional
//!   `&dyn sparcle_telemetry::Recorder`, and a `None` recorder still
//!   short-circuits every recording path.
//!
//! The expensive instrumentation inside the engine (building candidate
//! sets for decision events, timing row fills) is additionally gated on
//! `#[cfg(feature = "telemetry")]` + [`TraceHandle::is_enabled`], so
//! even feature-on builds pay nothing when no recorder is attached.

#[cfg(feature = "telemetry")]
use sparcle_telemetry::{Event, Recorder};

/// A copyable, possibly-disconnected reference to a telemetry sink.
///
/// See the module docs for the two feature configurations. Obtain one
/// with [`TraceHandle::none`] (always) or [`TraceHandle::new`]
/// (feature-gated).
#[derive(Clone, Copy, Default)]
pub struct TraceHandle<'a> {
    #[cfg(feature = "telemetry")]
    recorder: Option<&'a dyn Recorder>,
    #[cfg(not(feature = "telemetry"))]
    _marker: std::marker::PhantomData<&'a ()>,
}

impl std::fmt::Debug for TraceHandle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHandle")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl<'a> TraceHandle<'a> {
    /// A disconnected handle: records nothing, costs nothing.
    #[inline]
    pub fn none() -> Self {
        Self::default()
    }

    /// A handle recording into `recorder`.
    #[cfg(feature = "telemetry")]
    pub fn new(recorder: &'a dyn Recorder) -> Self {
        TraceHandle {
            recorder: Some(recorder),
        }
    }

    /// Whether a recorder is attached (always `false` with the
    /// `telemetry` feature off).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        #[cfg(feature = "telemetry")]
        {
            self.recorder.is_some()
        }
        #[cfg(not(feature = "telemetry"))]
        {
            false
        }
    }

    /// The attached recorder, if any.
    #[cfg(feature = "telemetry")]
    pub fn recorder(&self) -> Option<&'a dyn Recorder> {
        self.recorder
    }

    /// Records a structured event.
    #[cfg(feature = "telemetry")]
    #[inline]
    pub fn event(&self, event: &Event) {
        if let Some(r) = self.recorder {
            r.event(event);
        }
    }

    /// Increments a named counter.
    #[inline]
    pub fn counter(&self, name: &str, delta: u64) {
        #[cfg(feature = "telemetry")]
        if let Some(r) = self.recorder {
            r.counter(name, delta);
        }
        #[cfg(not(feature = "telemetry"))]
        {
            let _ = (name, delta);
        }
    }

    /// Records a duration (nanoseconds) into a named histogram.
    #[inline]
    pub fn timing(&self, name: &str, nanos: u64) {
        #[cfg(feature = "telemetry")]
        if let Some(r) = self.recorder {
            r.timing(name, nanos);
        }
        #[cfg(not(feature = "telemetry"))]
        {
            let _ = (name, nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_disabled_and_inert() {
        let t = TraceHandle::none();
        assert!(!t.is_enabled());
        t.counter("x", 1);
        t.timing("y", 2);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn new_records_into_the_sink() {
        let r = sparcle_telemetry::CollectRecorder::new();
        let t = TraceHandle::new(&r);
        assert!(t.is_enabled());
        t.counter("c", 3);
        t.event(&Event::RunStart { name: "t".into() });
        assert_eq!(r.snapshot().counter("c"), 3);
        assert_eq!(r.events().len(), 1);
    }
}
