//! The [`TraceHandle`] the engine and its callers thread telemetry
//! through.
//!
//! The handle exists in **both** feature configurations so every public
//! API that accepts one (`PlacementEngine::new_traced`,
//! `Assigner::assign_traced`, the sim entry points, …) keeps a single
//! signature:
//!
//! * with the `telemetry` feature **off**, [`TraceHandle`] is a
//!   zero-sized type and all of its methods are empty `#[inline]` bodies
//!   — instrumentation call sites compile to nothing;
//! * with the feature **on**, it wraps an optional
//!   `&dyn sparcle_telemetry::Recorder`, and a `None` recorder still
//!   short-circuits every recording path.
//!
//! The expensive instrumentation inside the engine (building candidate
//! sets for decision events, timing row fills) is additionally gated on
//! `#[cfg(feature = "telemetry")]` + [`TraceHandle::is_enabled`], so
//! even feature-on builds pay nothing when no recorder is attached.
//!
//! ## Spans
//!
//! Hierarchical timed spans ride the same handle but are **separately
//! opt-in**: only a handle built with [`TraceHandle::with_spans`]
//! carries a [`sparcle_telemetry::SpanTracker`], and only such handles
//! emit `span_open`/`span_close` events from [`TraceHandle::span`].
//! Span timestamps are wall-clock, so the byte-identical determinism
//! suites run with span-less handles and see traces without span lines;
//! `--trace-spans` on the experiment binaries turns them on.

#[cfg(feature = "telemetry")]
use sparcle_telemetry::{Event, Recorder, SpanTracker};

/// A copyable, possibly-disconnected reference to a telemetry sink.
///
/// See the module docs for the two feature configurations. Obtain one
/// with [`TraceHandle::none`] (always) or [`TraceHandle::new`] /
/// [`TraceHandle::with_spans`] (feature-gated).
#[derive(Clone, Copy)]
pub struct TraceHandle<'a> {
    #[cfg(feature = "telemetry")]
    recorder: Option<&'a dyn Recorder>,
    #[cfg(feature = "telemetry")]
    spans: Option<&'a SpanTracker>,
    #[cfg(feature = "telemetry")]
    provenance: bool,
    #[cfg(not(feature = "telemetry"))]
    _marker: std::marker::PhantomData<&'a ()>,
}

impl Default for TraceHandle<'_> {
    fn default() -> Self {
        TraceHandle {
            #[cfg(feature = "telemetry")]
            recorder: None,
            #[cfg(feature = "telemetry")]
            spans: None,
            #[cfg(feature = "telemetry")]
            provenance: true,
            #[cfg(not(feature = "telemetry"))]
            _marker: std::marker::PhantomData,
        }
    }
}

impl std::fmt::Debug for TraceHandle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHandle")
            .field("enabled", &self.is_enabled())
            .field("spans", &self.spans_enabled())
            .finish()
    }
}

impl<'a> TraceHandle<'a> {
    /// A disconnected handle: records nothing, costs nothing.
    #[inline]
    pub fn none() -> Self {
        Self::default()
    }

    /// A handle recording into `recorder` (no spans).
    #[cfg(feature = "telemetry")]
    pub fn new(recorder: &'a dyn Recorder) -> Self {
        TraceHandle {
            recorder: Some(recorder),
            spans: None,
            provenance: true,
        }
    }

    /// A handle recording into `recorder` that additionally emits
    /// hierarchical span events through `tracker`.
    #[cfg(feature = "telemetry")]
    pub fn with_spans(recorder: &'a dyn Recorder, tracker: &'a SpanTracker) -> Self {
        TraceHandle {
            recorder: Some(recorder),
            spans: Some(tracker),
            provenance: true,
        }
    }

    /// The same handle with the decision-provenance plane disabled: the
    /// per-app lifecycle events (`runtime_displace`/`runtime_readmit`/
    /// `runtime_probe`, `service_ingest`/`service_defer`) and the cause
    /// bookkeeping behind them are skipped, leaving the pre-provenance
    /// event stream. This is the off-axis of the
    /// `provenance_overhead_ratio` perf gate (DESIGN.md §14).
    #[must_use]
    pub fn without_provenance(self) -> Self {
        #[cfg(feature = "telemetry")]
        {
            let mut this = self;
            this.provenance = false;
            this
        }
        #[cfg(not(feature = "telemetry"))]
        self
    }

    /// Whether the provenance plane is active (requires an attached
    /// recorder; always `false` with the `telemetry` feature off).
    #[inline]
    pub fn provenance_enabled(&self) -> bool {
        #[cfg(feature = "telemetry")]
        {
            self.recorder.is_some() && self.provenance
        }
        #[cfg(not(feature = "telemetry"))]
        {
            false
        }
    }

    /// Whether a recorder is attached (always `false` with the
    /// `telemetry` feature off).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        #[cfg(feature = "telemetry")]
        {
            self.recorder.is_some()
        }
        #[cfg(not(feature = "telemetry"))]
        {
            false
        }
    }

    /// Whether span events are emitted (always `false` with the
    /// `telemetry` feature off or without a tracker attached).
    #[inline]
    pub fn spans_enabled(&self) -> bool {
        #[cfg(feature = "telemetry")]
        {
            self.recorder.is_some() && self.spans.is_some()
        }
        #[cfg(not(feature = "telemetry"))]
        {
            false
        }
    }

    /// The attached recorder, if any.
    #[cfg(feature = "telemetry")]
    pub fn recorder(&self) -> Option<&'a dyn Recorder> {
        self.recorder
    }

    /// The attached span tracker, if any.
    #[cfg(feature = "telemetry")]
    pub fn span_tracker(&self) -> Option<&'a SpanTracker> {
        self.spans
    }

    /// Records a structured event and returns the provenance id the
    /// sink assigned (`0` when no recorder is attached or the sink does
    /// not track provenance).
    #[cfg(feature = "telemetry")]
    #[inline]
    pub fn event(&self, event: &Event) -> u64 {
        self.event_caused(event, &[])
    }

    /// Records a structured event with its causal back-references
    /// (provenance ids of the earlier events that caused it) and
    /// returns the new event's id.
    ///
    /// When the provenance plane is disabled
    /// ([`TraceHandle::without_provenance`]) the causes are dropped —
    /// the event is still recorded, but unlinked, and the returned id
    /// is `0` so downstream bookkeeping short-circuits.
    #[cfg(feature = "telemetry")]
    #[inline]
    pub fn event_caused(&self, event: &Event, causes: &[u64]) -> u64 {
        match self.recorder {
            Some(r) if self.provenance => r.event_caused(event, causes),
            Some(r) => {
                r.event_caused(event, &[]);
                0
            }
            None => 0,
        }
    }

    /// Increments a named counter.
    #[inline]
    pub fn counter(&self, name: &str, delta: u64) {
        #[cfg(feature = "telemetry")]
        if let Some(r) = self.recorder {
            r.counter(name, delta);
        }
        #[cfg(not(feature = "telemetry"))]
        {
            let _ = (name, delta);
        }
    }

    /// Records a duration (nanoseconds) into a named histogram.
    #[inline]
    pub fn timing(&self, name: &str, nanos: u64) {
        #[cfg(feature = "telemetry")]
        if let Some(r) = self.recorder {
            r.timing(name, nanos);
        }
        #[cfg(not(feature = "telemetry"))]
        {
            let _ = (name, nanos);
        }
    }

    /// Opens a hierarchical span named `name`.
    ///
    /// Returns an inert guard unless both a recorder **and** a span
    /// tracker are attached (see the module docs). Close it with
    /// [`SpanGuard::finish`]; dropping an active guard records an
    /// aborted close.
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard<'a> {
        #[cfg(feature = "telemetry")]
        {
            let inner = match (self.recorder, self.spans) {
                (Some(recorder), Some(tracker)) => Some(tracker.open(recorder, name)),
                _ => None,
            };
            SpanGuard { inner }
        }
        #[cfg(not(feature = "telemetry"))]
        {
            let _ = name;
            SpanGuard {
                _marker: std::marker::PhantomData,
            }
        }
    }
}

/// RAII guard for a [`TraceHandle::span`]. Zero-sized and inert with
/// the `telemetry` feature off or when the handle carries no tracker.
#[must_use = "dropping an active span guard records an aborted close; call finish()"]
pub struct SpanGuard<'a> {
    #[cfg(feature = "telemetry")]
    inner: Option<sparcle_telemetry::Span<'a>>,
    #[cfg(not(feature = "telemetry"))]
    _marker: std::marker::PhantomData<&'a ()>,
}

impl std::fmt::Debug for SpanGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("active", &self.is_active())
            .finish()
    }
}

impl SpanGuard<'_> {
    /// Whether this guard wraps a live span (false for inert guards).
    #[inline]
    pub fn is_active(&self) -> bool {
        #[cfg(feature = "telemetry")]
        {
            self.inner.is_some()
        }
        #[cfg(not(feature = "telemetry"))]
        {
            false
        }
    }

    /// Closes the span normally (no-op for inert guards).
    #[inline]
    pub fn finish(self) {
        #[cfg(feature = "telemetry")]
        if let Some(span) = self.inner {
            span.finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_disabled_and_inert() {
        let t = TraceHandle::none();
        assert!(!t.is_enabled());
        assert!(!t.spans_enabled());
        t.counter("x", 1);
        t.timing("y", 2);
        let guard = t.span("inert");
        assert!(!guard.is_active());
        guard.finish();
        // Dropping an inert guard is also fine.
        let _ = t.span("inert2");
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn new_records_into_the_sink() {
        let r = sparcle_telemetry::CollectRecorder::new();
        let t = TraceHandle::new(&r);
        assert!(t.is_enabled());
        assert!(!t.spans_enabled());
        t.counter("c", 3);
        t.event(&Event::RunStart { name: "t".into() });
        assert_eq!(r.snapshot().counter("c"), 3);
        assert_eq!(r.events().len(), 1);
        // Without a tracker, span() is inert: no span events.
        t.span("quiet").finish();
        assert_eq!(r.events().len(), 1);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn event_caused_threads_provenance_through_the_sink() {
        let r = sparcle_telemetry::CollectRecorder::new();
        let t = TraceHandle::new(&r);
        assert!(t.provenance_enabled());
        let a = t.event(&Event::RunStart { name: "a".into() });
        let b = t.event_caused(&Event::RunStart { name: "b".into() }, &[a]);
        assert_eq!((a, b), (1, 2));
        assert_eq!(r.stamped_events()[1].causes, vec![1]);

        // Disabling the plane records the event but drops the links and
        // reports id 0 so emitters skip their bookkeeping.
        let quiet = t.without_provenance();
        assert!(!quiet.provenance_enabled());
        assert!(quiet.is_enabled());
        let c = quiet.event_caused(&Event::RunStart { name: "c".into() }, &[b]);
        assert_eq!(c, 0);
        assert!(r.stamped_events()[2].causes.is_empty());

        // A disconnected handle reports both planes off.
        assert!(!TraceHandle::none().provenance_enabled());
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn with_spans_emits_nested_span_events() {
        let r = sparcle_telemetry::CollectRecorder::new();
        let tracker = SpanTracker::new();
        let t = TraceHandle::with_spans(&r, &tracker);
        assert!(t.spans_enabled());
        let outer = t.span("outer");
        assert!(outer.is_active());
        {
            let _inner = t.span("inner"); // dropped -> aborted close
        }
        outer.finish();
        let events = r.events();
        assert_eq!(events.len(), 4);
        assert!(matches!(
            &events[1],
            Event::SpanOpen {
                parent: Some(0),
                ..
            }
        ));
        assert!(matches!(&events[2], Event::SpanClose { aborted: true, .. }));
        assert!(matches!(
            &events[3],
            Event::SpanClose { aborted: false, .. }
        ));
    }
}
