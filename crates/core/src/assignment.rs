//! SPARCLE's dynamic-ranking task assignment — the paper's Algorithm 2.
//!
//! The assignment places one CT at a time. At every step it computes, for
//! each unplaced CT `i`, the best host `j*_i = argmax_j γ_{i,j}` (the NCP
//! that would impose the *largest* new bottleneck rate, eq. (2)), then
//! commits the CT whose best is *worst* — `i* = argmin_i γ_{i,j*_i}` —
//! on its best host. Placing the most-constrained CT first protects the
//! bottleneck; because `γ` depends on the hosts of already-placed
//! neighbors, the ranking is recomputed after every commitment ("dynamic
//! ranking").
//!
//! The worst-case cost is `O(|C|)` rounds × `O(|C|)` candidates ×
//! `O(|N|)` hosts × a Dijkstra per placed reachable CT — cubic in the
//! product of graph sizes, matching Theorem 2's `O(|N|³ |C|³)` bound.
//!
//! [`assign_multipath`] repeats the algorithm with residual capacities to
//! extract additional task assignment paths for availability (§IV-D).

use crate::engine::{AssignStats, AssignedPath, EngineScratch, PlacementEngine};
use crate::error::AssignError;
use crate::trace::TraceHandle;
use sparcle_model::{Application, CapacityMap, GraphRepr, Network};

/// How [`DynamicRankingAssigner`] evaluates γ each ranking round.
///
/// Both modes commit the *same placements in the same order* — the cached
/// evaluator's invalidation rules and tie-breaks reproduce the reference
/// scan bit-for-bit (see the [`crate::engine`] module docs), and
/// `tests/parallel_equivalence.rs` holds them to it. The modes differ
/// only in speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalMode {
    /// The uncached, single-threaded scan straight off eq. (2):
    /// [`PlacementEngine::gamma`] per (CT, host) pair. The ground truth
    /// the differential tests compare against.
    Reference,
    /// The batched γ-cache ([`PlacementEngine::rank_round`]), filling
    /// missing rows with up to `threads` worker threads.
    Cached {
        /// Worker-thread cap for row computation (1 = serial cached).
        threads: usize,
    },
}

/// SPARCLE's polynomial-time dynamic-ranking task assigner (Algorithm 2).
///
/// # Examples
///
/// ```
/// use sparcle_core::DynamicRankingAssigner;
/// use sparcle_model::{
///     Application, NetworkBuilder, QoeClass, ResourceVec, TaskGraphBuilder,
/// };
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut tb = TaskGraphBuilder::new();
/// let src = tb.add_ct("camera", ResourceVec::new());
/// let detect = tb.add_ct("detect", ResourceVec::cpu(50.0));
/// let sink = tb.add_ct("consumer", ResourceVec::new());
/// tb.add_tt("raw", src, detect, 100.0)?;
/// tb.add_tt("boxes", detect, sink, 5.0)?;
/// let graph = tb.build()?;
///
/// let mut nb = NetworkBuilder::new();
/// let cam = nb.add_ncp("cam", ResourceVec::cpu(10.0));
/// let edge = nb.add_ncp("edge", ResourceVec::cpu(500.0));
/// nb.add_link("wifi", cam, edge, 1_000.0)?;
/// let network = nb.build()?;
///
/// let app = Application::new(graph, QoeClass::best_effort(1.0),
///     [(src, cam), (sink, cam)])?;
/// let path = DynamicRankingAssigner::new()
///     .assign(&app, &network, &network.capacity_map())?;
/// assert!(path.rate > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynamicRankingAssigner {
    mode: EvalMode,
    repr: GraphRepr,
}

impl Default for DynamicRankingAssigner {
    /// The cached single-threaded evaluator over the flat CSR
    /// representation — always at least as fast as [`Self::reference`],
    /// same results.
    fn default() -> Self {
        DynamicRankingAssigner {
            mode: EvalMode::Cached { threads: 1 },
            repr: GraphRepr::default(),
        }
    }
}

impl DynamicRankingAssigner {
    /// Creates the assigner in its default [`EvalMode`].
    pub fn new() -> Self {
        Self::default()
    }

    /// The uncached single-threaded evaluator, straight off eq. (2),
    /// over the legacy adjacency — the ground truth every fast path
    /// (γ-cache, worker threads, CSR representation) is differenced
    /// against.
    pub fn reference() -> Self {
        DynamicRankingAssigner {
            mode: EvalMode::Reference,
            repr: GraphRepr::Legacy,
        }
    }

    /// The cached evaluator with up to `threads` worker threads filling
    /// γ rows (clamped to ≥ 1). Results are identical for every value.
    pub fn with_threads(threads: usize) -> Self {
        DynamicRankingAssigner {
            mode: EvalMode::Cached {
                threads: threads.max(1),
            },
            repr: GraphRepr::default(),
        }
    }

    /// The same assigner over an explicit graph representation. Results
    /// are identical for both (`tests/csr_equivalence.rs`); only speed
    /// differs.
    #[must_use]
    pub fn with_repr(mut self, repr: GraphRepr) -> Self {
        self.repr = repr;
        self
    }

    /// The evaluation mode this assigner runs in.
    pub fn mode(&self) -> EvalMode {
        self.mode
    }

    /// The graph representation this assigner evaluates over.
    pub fn repr(&self) -> GraphRepr {
        self.repr
    }

    /// Runs Algorithm 2: finds one task assignment path for `app` on
    /// `network` under `capacities` (full, residual, or predicted).
    ///
    /// # Errors
    ///
    /// Returns [`AssignError::NoHostForCt`] when some CT cannot be hosted
    /// anywhere without stranding a TT, [`AssignError::NoRoute`] when
    /// pinned endpoints are disconnected, and [`AssignError::Model`] for
    /// invalid pins.
    pub fn assign(
        &self,
        app: &Application,
        network: &Network,
        capacities: &CapacityMap,
    ) -> Result<AssignedPath, AssignError> {
        self.assign_with_trace(app, network, capacities, TraceHandle::none())
    }

    /// [`Self::assign`] with a telemetry handle: the engine records
    /// per-round placement decisions (candidate γ values, chosen host,
    /// tie-break reason), commits, and γ-cache counters into it. The
    /// trace is bit-identical for every [`EvalMode::Cached`] thread
    /// count.
    ///
    /// # Errors
    ///
    /// Same as [`Self::assign`].
    pub fn assign_with_trace(
        &self,
        app: &Application,
        network: &Network,
        capacities: &CapacityMap,
        trace: TraceHandle<'_>,
    ) -> Result<AssignedPath, AssignError> {
        self.assign_traced_with_stats(app, network, capacities, trace)
            .map(|(path, _)| path)
    }

    /// [`Self::assign`], also returning the engine's always-compiled
    /// γ-cache work counters ([`AssignStats`]) — the feature-independent
    /// signal the runtime's observability monitor folds into its
    /// windows.
    ///
    /// # Errors
    ///
    /// Same as [`Self::assign`].
    pub fn assign_with_stats(
        &self,
        app: &Application,
        network: &Network,
        capacities: &CapacityMap,
    ) -> Result<(AssignedPath, AssignStats), AssignError> {
        self.assign_traced_with_stats(app, network, capacities, TraceHandle::none())
    }

    /// [`Self::assign_with_trace`] + [`Self::assign_with_stats`]
    /// combined: traced assignment that also returns the work counters.
    ///
    /// # Errors
    ///
    /// Same as [`Self::assign`].
    pub fn assign_traced_with_stats(
        &self,
        app: &Application,
        network: &Network,
        capacities: &CapacityMap,
        trace: TraceHandle<'_>,
    ) -> Result<(AssignedPath, AssignStats), AssignError> {
        self.assign_scratch_traced_with_stats(
            &mut EngineScratch::default(),
            app,
            network,
            capacities,
            trace,
        )
    }

    /// [`Self::assign_with_stats`] over caller-hoisted buffers: the
    /// engine takes its sweep/routing scratch out of `scratch` and hands
    /// it back before returning, so a warm probe loop (γ reconcile
    /// probes, defrag what-if migrations) stops paying per-assignment
    /// allocations for every content-independent buffer.
    ///
    /// # Errors
    ///
    /// Same as [`Self::assign`].
    pub fn assign_scratch_with_stats(
        &self,
        scratch: &mut EngineScratch,
        app: &Application,
        network: &Network,
        capacities: &CapacityMap,
    ) -> Result<(AssignedPath, AssignStats), AssignError> {
        self.assign_scratch_traced_with_stats(
            scratch,
            app,
            network,
            capacities,
            TraceHandle::none(),
        )
    }

    /// [`Self::assign_scratch_with_stats`] with a telemetry handle — the
    /// most general assignment entry point; every other `assign_*`
    /// method funnels here. The scratch is reclaimed on error exits too.
    ///
    /// # Errors
    ///
    /// Same as [`Self::assign`].
    pub fn assign_scratch_traced_with_stats(
        &self,
        scratch: &mut EngineScratch,
        app: &Application,
        network: &Network,
        capacities: &CapacityMap,
        trace: TraceHandle<'_>,
    ) -> Result<(AssignedPath, AssignStats), AssignError> {
        // Root span for one full Algorithm-2 assignment; every
        // rank-round and commit span nests underneath. An error exit
        // drops the guard, closing the span as aborted.
        let assign_span = trace.span("engine.assign");
        let mut engine = PlacementEngine::new_traced_with_scratch(
            app, network, capacities, trace, self.repr, scratch,
        )?;
        // Run the ranking loop through a closure so the scratch is
        // reclaimed on ranking errors as well as on success.
        let ranked = (|| -> Result<(), AssignError> {
            match self.mode {
                EvalMode::Reference => loop {
                    // Rank: for each unplaced CT, its best achievable γ;
                    // commit the CT with the smallest best (most
                    // constrained first).
                    let mut pick: Option<(f64, sparcle_model::CtId, sparcle_model::NcpId)> = None;
                    for ct in engine.unplaced() {
                        let (host, g) = engine.best_host(ct).ok_or(AssignError::NoHostForCt(ct))?;
                        if pick.is_none_or(|(bg, _, _)| g < bg) {
                            pick = Some((g, ct, host));
                        }
                    }
                    let Some((_, ct, host)) = pick else {
                        return Ok(());
                    };
                    engine.commit(ct, host)?;
                },
                EvalMode::Cached { threads } => {
                    while let Some((ct, host, _)) = engine.rank_round(threads)? {
                        engine.commit(ct, host)?;
                    }
                    Ok(())
                }
            }
        })();
        let stats = engine.stats();
        // `finish` never touches the scratch buffers, so they can go
        // back to the caller before it consumes the engine.
        engine.reclaim_scratch(scratch);
        ranked?;
        let assigned = engine.finish()?;
        assign_span.finish();
        Ok((assigned, stats))
    }
}

/// Extracts up to `max_paths` task assignment paths for one application,
/// subtracting each found path's load from the residual capacities before
/// searching for the next (§IV-D). Paths whose rate falls below
/// `min_rate` stop the search (a zero-rate path adds no QoE).
///
/// Returns the found paths (possibly empty) and the final residual
/// capacities.
///
/// # Examples
///
/// ```
/// use sparcle_core::{assign_multipath, DynamicRankingAssigner};
/// use sparcle_model::{Application, NetworkBuilder, QoeClass, ResourceVec, TaskGraphBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut tb = TaskGraphBuilder::new();
/// let s = tb.add_ct("s", ResourceVec::new());
/// let w = tb.add_ct("w", ResourceVec::cpu(10.0));
/// let t = tb.add_ct("t", ResourceVec::new());
/// tb.add_tt("sw", s, w, 5.0)?;
/// tb.add_tt("wt", w, t, 1.0)?;
/// let mut nb = NetworkBuilder::new();
/// let hub = nb.add_ncp("hub", ResourceVec::cpu(20.0));
/// for i in 0..3 {
///     let leaf = nb.add_ncp(format!("leaf{i}"), ResourceVec::cpu(50.0));
///     nb.add_link(format!("l{i}"), hub, leaf, 100.0)?;
/// }
/// let net = nb.build()?;
/// let app = Application::new(tb.build()?, QoeClass::best_effort(1.0), [(s, hub), (t, hub)])?;
/// let (paths, _residual) = assign_multipath(
///     &DynamicRankingAssigner::new(), &app, &net, &net.capacity_map(), 3, 1e-9,
/// );
/// assert!(!paths.is_empty());
/// // Later paths never beat earlier ones (residual capacity shrinks).
/// for pair in paths.windows(2) {
///     assert!(pair[1].rate <= pair[0].rate + 1e-9);
/// }
/// # Ok(())
/// # }
/// ```
pub fn assign_multipath(
    assigner: &DynamicRankingAssigner,
    app: &Application,
    network: &Network,
    capacities: &CapacityMap,
    max_paths: usize,
    min_rate: f64,
) -> (Vec<AssignedPath>, CapacityMap) {
    let (paths, residual, _) =
        assign_multipath_stats(assigner, app, network, capacities, max_paths, min_rate);
    (paths, residual)
}

/// [`assign_multipath`], also returning the γ-cache work counters
/// ([`AssignStats`]) accumulated across every successfully assigned
/// path.
pub fn assign_multipath_stats(
    assigner: &DynamicRankingAssigner,
    app: &Application,
    network: &Network,
    capacities: &CapacityMap,
    max_paths: usize,
    min_rate: f64,
) -> (Vec<AssignedPath>, CapacityMap, AssignStats) {
    assign_multipath_scratch_stats(
        assigner,
        &mut EngineScratch::default(),
        app,
        network,
        capacities,
        max_paths,
        min_rate,
    )
}

/// [`assign_multipath_stats`] over caller-hoisted [`EngineScratch`]:
/// every per-path engine in the extraction loop reuses — and refills —
/// the same buffers, so a probe loop placing many apps over one network
/// stays off the allocator for the content-independent scratch.
#[allow(clippy::too_many_arguments)] // mirrors assign_multipath_stats + scratch
pub fn assign_multipath_scratch_stats(
    assigner: &DynamicRankingAssigner,
    scratch: &mut EngineScratch,
    app: &Application,
    network: &Network,
    capacities: &CapacityMap,
    max_paths: usize,
    min_rate: f64,
) -> (Vec<AssignedPath>, CapacityMap, AssignStats) {
    let mut stats = AssignStats::default();
    let (paths, residual) = multipath_inner(
        assigner, scratch, app, network, capacities, max_paths, min_rate, 1.0, &mut stats,
    );
    (paths, residual, stats)
}

/// [`assign_multipath`] with an element-diversity bias (an extension
/// beyond the paper): after each extracted path, the *search* capacities
/// of the elements it used are additionally scaled by
/// `diversity_discount` (≤ 1), steering later paths toward disjoint
/// elements — which is what availability actually wants, since a backup
/// path sharing every element with the primary adds nothing (§IV-D's
/// overlap analysis). A discount of `1.0` reproduces the paper's plain
/// residual-capacity iteration.
///
/// The discount only biases the search; the returned residual reflects
/// the true load subtraction.
///
/// # Panics
///
/// Panics if `diversity_discount` is outside `(0, 1]`.
pub fn assign_multipath_diverse(
    assigner: &DynamicRankingAssigner,
    app: &Application,
    network: &Network,
    capacities: &CapacityMap,
    max_paths: usize,
    min_rate: f64,
    diversity_discount: f64,
) -> (Vec<AssignedPath>, CapacityMap) {
    let mut stats = AssignStats::default();
    multipath_inner(
        assigner,
        &mut EngineScratch::default(),
        app,
        network,
        capacities,
        max_paths,
        min_rate,
        diversity_discount,
        &mut stats,
    )
}

#[allow(clippy::too_many_arguments)] // internal: the public wrappers curry
fn multipath_inner(
    assigner: &DynamicRankingAssigner,
    scratch: &mut EngineScratch,
    app: &Application,
    network: &Network,
    capacities: &CapacityMap,
    max_paths: usize,
    min_rate: f64,
    diversity_discount: f64,
    stats: &mut AssignStats,
) -> (Vec<AssignedPath>, CapacityMap) {
    assert!(
        diversity_discount > 0.0 && diversity_discount <= 1.0,
        "diversity discount must lie in (0, 1]"
    );
    let mut residual = capacities.clone();
    let mut biased = capacities.clone();
    let mut paths: Vec<AssignedPath> = Vec::new();
    for _ in 0..max_paths {
        let mut path = match assigner.assign_scratch_with_stats(scratch, app, network, &biased) {
            Ok((p, s)) => {
                stats.merge(&s);
                p
            }
            Err(_) => break,
        };
        // The biased capacities understate what the path can carry;
        // re-score it against the true residual.
        path.rate = residual.bottleneck_rate(&path.load);
        if !(path.rate.is_finite() && path.rate > min_rate) {
            break;
        }
        residual.subtract_load(&path.load, path.rate);
        biased.subtract_load(&path.load, path.rate);
        if diversity_discount < 1.0 {
            for element in path.placement.elements_used(network) {
                // Pinned hosts are on every path; discounting them only
                // starves the search.
                let pinned = element
                    .as_ncp()
                    .is_some_and(|n| app.pinned().values().any(|&h| h == n));
                if !pinned {
                    biased.scale_element(element, diversity_discount);
                }
            }
        }
        paths.push(path);
    }
    (paths, residual)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparcle_model::{
        CtId, NcpId, NetworkBuilder, QoeClass, ResourceKind, ResourceVec, TaskGraphBuilder,
    };

    /// The paper's Figure 2-style scenario: a source on one NCP, a sink
    /// on another, two compute CTs to place.
    fn pipeline_app(bits: [f64; 3], cycles: [f64; 2]) -> Application {
        let mut tb = TaskGraphBuilder::new();
        let s = tb.add_ct("src", ResourceVec::new());
        let c1 = tb.add_ct("stage1", ResourceVec::cpu(cycles[0]));
        let c2 = tb.add_ct("stage2", ResourceVec::cpu(cycles[1]));
        let t = tb.add_ct("sink", ResourceVec::new());
        tb.add_tt("tt0", s, c1, bits[0]).unwrap();
        tb.add_tt("tt1", c1, c2, bits[1]).unwrap();
        tb.add_tt("tt2", c2, t, bits[2]).unwrap();
        let graph = tb.build().unwrap();
        Application::new(
            graph,
            QoeClass::best_effort(1.0),
            [(s, NcpId::new(0)), (t, NcpId::new(0))],
        )
        .unwrap()
    }

    /// Star network: hub NCP0 (weak CPU) with 3 leaf workers.
    fn star(leaf_cpu: f64, bw: f64) -> Network {
        let mut nb = NetworkBuilder::new();
        let hub = nb.add_ncp("hub", ResourceVec::cpu(10.0));
        for i in 0..3 {
            let leaf = nb.add_ncp(format!("leaf{i}"), ResourceVec::cpu(leaf_cpu));
            nb.add_link(format!("l{i}"), hub, leaf, bw).unwrap();
        }
        nb.build().unwrap()
    }

    #[test]
    fn offloads_when_bandwidth_is_plentiful() {
        let app = pipeline_app([10.0, 10.0, 10.0], [100.0, 100.0]);
        let net = star(1000.0, 1e6);
        let path = DynamicRankingAssigner::new()
            .assign(&app, &net, &net.capacity_map())
            .unwrap();
        // Compute CTs must leave the weak hub (10 CPU) for leaves
        // (1000 CPU): rate = min over leaves used.
        assert!(path.rate >= 10.0, "rate = {}", path.rate);
        let h1 = path.placement.ct_host(CtId::new(1)).unwrap();
        let h2 = path.placement.ct_host(CtId::new(2)).unwrap();
        assert_ne!(h1, NcpId::new(0));
        assert_ne!(h2, NcpId::new(0));
    }

    #[test]
    fn stays_local_when_bandwidth_is_scarce() {
        // Huge TT bits, tiny bandwidth: keeping everything on the hub
        // avoids the links entirely.
        let app = pipeline_app([1e6, 1e6, 1e6], [1.0, 1.0]);
        let net = star(1000.0, 1.0);
        let path = DynamicRankingAssigner::new()
            .assign(&app, &net, &net.capacity_map())
            .unwrap();
        assert_eq!(path.placement.ct_host(CtId::new(1)), Some(NcpId::new(0)));
        assert_eq!(path.placement.ct_host(CtId::new(2)), Some(NcpId::new(0)));
        // All local: rate = hub CPU / total cycles = 10/2.
        assert!((path.rate - 5.0).abs() < 1e-12);
    }

    #[test]
    fn achieves_exhaustive_optimum_on_small_case() {
        let app = pipeline_app([8.0, 4.0, 2.0], [20.0, 30.0]);
        let net = star(40.0, 60.0);
        let caps = net.capacity_map();
        let sparcle = DynamicRankingAssigner::new()
            .assign(&app, &net, &caps)
            .unwrap();
        // Exhaustive search over host pairs for the two compute CTs.
        let mut best = 0.0f64;
        for h1 in net.ncp_ids() {
            for h2 in net.ncp_ids() {
                let mut engine = PlacementEngine::new(&app, &net, &caps).unwrap();
                if engine.commit(CtId::new(1), h1).is_err() {
                    continue;
                }
                if engine.commit(CtId::new(2), h2).is_err() {
                    continue;
                }
                if let Ok(p) = engine.finish() {
                    best = best.max(p.rate);
                }
            }
        }
        assert!(
            sparcle.rate >= best - 1e-9,
            "sparcle {} vs optimal {}",
            sparcle.rate,
            best
        );
    }

    #[test]
    fn placement_always_validates() {
        let app = pipeline_app([5.0, 50.0, 1.0], [3.0, 80.0]);
        let net = star(25.0, 12.0);
        let path = DynamicRankingAssigner::new()
            .assign(&app, &net, &net.capacity_map())
            .unwrap();
        path.placement.validate(app.graph(), &net).unwrap();
        // Reported rate matches recomputation from scratch.
        let recomputed = path
            .placement
            .bottleneck_rate(app.graph(), &net, &net.capacity_map());
        assert!((path.rate - recomputed).abs() < 1e-9);
    }

    #[test]
    fn multipath_extracts_declining_rates() {
        let app = pipeline_app([2.0, 2.0, 2.0], [10.0, 10.0]);
        let net = star(50.0, 100.0);
        let (paths, residual) = assign_multipath(
            &DynamicRankingAssigner::new(),
            &app,
            &net,
            &net.capacity_map(),
            4,
            1e-9,
        );
        assert!(!paths.is_empty());
        // Rates are non-increasing (each later path sees less capacity).
        for w in paths.windows(2) {
            assert!(w[1].rate <= w[0].rate + 1e-9);
        }
        // Residuals never negative.
        for ncp in net.ncp_ids() {
            assert!(residual.ncp(ncp).amount(ResourceKind::Cpu) >= 0.0);
        }
    }

    #[test]
    fn multipath_respects_max_paths() {
        let app = pipeline_app([2.0, 2.0, 2.0], [10.0, 10.0]);
        let net = star(50.0, 100.0);
        let (paths, _) = assign_multipath(
            &DynamicRankingAssigner::new(),
            &app,
            &net,
            &net.capacity_map(),
            1,
            1e-9,
        );
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn diversity_discount_spreads_paths() {
        // Plenty of leaves: with a strong discount, the second path
        // should avoid the first path's leaf.
        let app = pipeline_app([2.0, 2.0, 2.0], [10.0, 10.0]);
        let net = star(50.0, 100.0);
        let (paths, _) = assign_multipath_diverse(
            &DynamicRankingAssigner::new(),
            &app,
            &net,
            &net.capacity_map(),
            2,
            1e-9,
            0.1,
        );
        assert_eq!(paths.len(), 2);
        let used0 = paths[0].placement.elements_used(&net);
        let used1 = paths[1].placement.elements_used(&net);
        // The hub hosts the pinned endpoints; everything else should
        // differ.
        let overlap: Vec<_> = used0.intersection(&used1).collect();
        assert!(
            overlap.iter().all(|e| e.as_ncp() == Some(NcpId::new(0))),
            "paths share non-pinned elements: {overlap:?}"
        );
        // True residual-based rates are reported (positive, finite).
        for p in &paths {
            assert!(p.rate.is_finite() && p.rate > 0.0);
        }
    }

    #[test]
    fn discount_one_matches_plain_multipath() {
        let app = pipeline_app([2.0, 2.0, 2.0], [10.0, 10.0]);
        let net = star(50.0, 100.0);
        let caps = net.capacity_map();
        let (plain, _) =
            assign_multipath(&DynamicRankingAssigner::new(), &app, &net, &caps, 3, 1e-9);
        let (diverse, _) = assign_multipath_diverse(
            &DynamicRankingAssigner::new(),
            &app,
            &net,
            &caps,
            3,
            1e-9,
            1.0,
        );
        assert_eq!(plain.len(), diverse.len());
        for (a, b) in plain.iter().zip(&diverse) {
            assert_eq!(a.placement, b.placement);
            assert!((a.rate - b.rate).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_capacity_network_yields_no_multipath() {
        let app = pipeline_app([2.0, 2.0, 2.0], [10.0, 10.0]);
        let net = star(0.0, 0.0);
        // Hub has 10 CPU but leaves/links are dead: first path rate is
        // positive (all local), second sees exhausted hub.
        let (paths, _) = assign_multipath(
            &DynamicRankingAssigner::new(),
            &app,
            &net,
            &net.capacity_map(),
            10,
            1e-9,
        );
        assert!(paths.len() <= 2, "found {}", paths.len());
    }
}
