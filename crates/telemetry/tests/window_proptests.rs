//! Property tests for `telemetry::window`: windowed-histogram merge is
//! associative and commutative over the merged window, agrees with
//! replaying all samples into one instance, and the windowed counter
//! matches a brute-force sum over the live span.

use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;
use sparcle_telemetry::window::{WindowedCounter, WindowedHistogram};

const SLOT_WIDTH: f64 = 2.0;
const SLOTS: usize = 5;

/// `(sim_time, value)` samples with times inside a few window spans so
/// rotation, eviction, and horizon wrap all get exercised.
fn arb_samples() -> BoxedStrategy<Vec<(f64, u64)>> {
    let span = SLOT_WIDTH * SLOTS as f64;
    proptest::collection::vec(
        (
            (0.0..4.0 * span).prop_map(|t| (t * 8.0).round() / 8.0),
            0u64..5000,
        ),
        0..40,
    )
    .boxed()
}

fn build(samples: &[(f64, u64)]) -> WindowedHistogram {
    let mut h = WindowedHistogram::new(SLOT_WIDTH, SLOTS);
    // Feed in time order, the way a monitor would; interleavings across
    // instances are then modelled by `merge`.
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
    for &(t, v) in &sorted {
        h.record(t, v);
    }
    h
}

proptest! {
    /// (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c) for windowed histograms.
    #[test]
    fn windowed_histogram_merge_is_associative(
        a in arb_samples(),
        b in arb_samples(),
        c in arb_samples(),
    ) {
        let (ha, hb, hc) = (build(&a), build(&b), build(&c));

        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);

        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);

        prop_assert_eq!(left, right);
    }

    /// a ⊔ b == b ⊔ a.
    #[test]
    fn windowed_histogram_merge_is_commutative(
        a in arb_samples(),
        b in arb_samples(),
    ) {
        let (ha, hb) = (build(&a), build(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    /// Sharding samples across two instances and merging matches
    /// feeding everything into one instance, as long as both shards
    /// observed the full time range (same head -> same evictions).
    #[test]
    fn merge_of_shards_matches_single_instance(
        samples in arb_samples(),
        split in 0usize..40,
    ) {
        let mut all = samples.clone();
        all.sort_by(|x, y| x.0.total_cmp(&y.0));
        let split = split.min(all.len());

        let reference = build(&all);

        let mut shard_a = build(&all[..split]);
        let mut shard_b = build(&all[split..]);
        // Align both shards to the global head before merging, exactly
        // what a monitor does by advancing every window at each tick.
        if let Some(&(last_t, _)) = all.last() {
            shard_a.advance(last_t);
            shard_b.advance(last_t);
        }
        shard_a.merge(&shard_b);
        prop_assert_eq!(shard_a, reference);
    }

    /// The windowed counter's sum equals a brute-force sum over the
    /// samples that remain inside the trailing window.
    #[test]
    fn windowed_counter_matches_brute_force(samples in arb_samples()) {
        let mut sorted = samples;
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));

        let mut c = WindowedCounter::new(SLOT_WIDTH, SLOTS);
        for &(t, v) in &sorted {
            c.record(t, v);
        }

        let head_slot = sorted
            .last()
            .map(|&(t, _)| (t / SLOT_WIDTH) as u64);
        let expect: u64 = match head_slot {
            None => 0,
            Some(h) => sorted
                .iter()
                .filter(|&&(t, _)| h - ((t / SLOT_WIDTH) as u64) < SLOTS as u64)
                .map(|&(_, v)| v)
                .sum(),
        };
        prop_assert_eq!(c.sum(), expect);
        let total: u64 = sorted.iter().map(|&(_, v)| v).sum();
        prop_assert_eq!(c.total(), total);
    }
}
