//! Property tests for `telemetry::json`: `parse(render(v)) == v` for
//! arbitrary finite JSON values, including escape-heavy strings and
//! integers at the edge of `f64`'s exact range.

use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;
use sparcle_telemetry::{parse_json, Json};

/// Characters that stress the escaper: quotes, backslashes, control
/// characters (named and `\u` forms), multi-byte UTF-8.
fn arb_char() -> BoxedStrategy<char> {
    prop_oneof![
        (0x20u32..0x7f).prop_map(|c| char::from_u32(c).expect("printable ascii")),
        Just('"'),
        Just('\\'),
        Just('\n'),
        Just('\r'),
        Just('\t'),
        Just('\u{0}'),
        Just('\u{1}'),
        Just('\u{1f}'),
        Just('\u{7f}'),
        Just('µ'),
        Just('λ'),
        Just('😀'),
    ]
    .boxed()
}

fn arb_string() -> BoxedStrategy<String> {
    proptest::collection::vec(arb_char(), 0..12)
        .prop_map(|chars| chars.into_iter().collect())
        .boxed()
}

/// Finite numbers only — `Json::Num` forbids non-finite values (they
/// serialize as strings via `Json::num`). Includes "large integers":
/// whole values up to ±2^63, well past 2^53 where `f64` goes sparse,
/// exercising the shortest-roundtrip Display path.
fn arb_num() -> BoxedStrategy<f64> {
    prop_oneof![
        -1.0e6f64..1.0e6,
        -1.0f64..1.0,
        (i64::MIN..i64::MAX).prop_map(|v| v as f64),
        (0u64..=u64::MAX).prop_map(|v| v as f64),
        Just(0.0),
        Just(-0.0),
        Just(f64::MAX),
        Just(f64::MIN),
        Just(f64::MIN_POSITIVE),
        Just(9_007_199_254_740_993.0), // 2^53 + 1 rounds to 2^53
    ]
    .boxed()
}

fn arb_leaf() -> BoxedStrategy<Json> {
    prop_oneof![
        Just(Json::Null),
        Just(Json::Bool(true)),
        Just(Json::Bool(false)),
        arb_num().prop_map(Json::Num),
        arb_string().prop_map(Json::Str),
    ]
    .boxed()
}

fn arb_json(depth: u32) -> BoxedStrategy<Json> {
    if depth == 0 {
        return arb_leaf();
    }
    let child = || arb_json(depth - 1);
    prop_oneof![
        arb_leaf(),
        proptest::collection::vec(child(), 0..4).prop_map(Json::Arr),
        // Duplicate keys are fine: Json::Obj is an ordered pair list,
        // and both render and parse preserve it verbatim.
        proptest::collection::vec((arb_string(), child()), 0..4).prop_map(Json::Obj),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The fundamental round-trip: any finite value survives
    /// serialize → parse unchanged.
    #[test]
    fn render_parse_round_trips(v in arb_json(3)) {
        let rendered = v.render();
        let parsed = parse_json(&rendered);
        prop_assert_eq!(parsed.as_ref(), Ok(&v), "rendered: {}", rendered);
    }

    /// Rendering is deterministic and stable under one round-trip
    /// (parse(render(v)) renders to the same bytes).
    #[test]
    fn render_is_a_fixed_point(v in arb_json(2)) {
        let first = v.render();
        let second = parse_json(&first).expect("round trip").render();
        prop_assert_eq!(&first, &second);
    }

    /// Strings with arbitrary escape-worthy characters round-trip when
    /// wrapped in an object key *and* value position.
    #[test]
    fn escaped_strings_round_trip(k in arb_string(), s in arb_string()) {
        let v = Json::Obj(vec![(k, Json::Str(s))]);
        let parsed = parse_json(&v.render());
        prop_assert_eq!(parsed.as_ref(), Ok(&v));
    }

    /// Whole numbers representable in f64 print without a fraction and
    /// re-parse to the identical value.
    #[test]
    fn large_integers_round_trip(raw in i64::MIN..i64::MAX) {
        let v = raw as f64;
        let rendered = Json::Num(v).render();
        prop_assert!(!rendered.contains('.'), "integral render: {}", rendered);
        prop_assert_eq!(parse_json(&rendered).unwrap().as_num(), Some(v));
    }
}
