//! Hierarchical timed spans.
//!
//! A [`Span`] is a named interval of work recorded as a pair of events:
//! `span_open` (id, parent id, name, monotonic-relative open time) and
//! `span_close` (id, name, duration, aborted flag). The [`SpanTracker`]
//! owns the id counter, the monotonic epoch the open timestamps are
//! relative to, and the currently-open span stack that provides
//! automatic parenting: a span opened while another is open becomes its
//! child.
//!
//! ## Determinism contract
//!
//! Span *structure* — ids, parents, names, and the interleaving of span
//! events with the rest of the trace — is a pure function of the input
//! and seed, because spans are only opened from the serial control path
//! of the instrumented crates (never from γ-evaluator worker threads).
//! Span *timestamps* (`t_ns`, `dur_ns`) are wall-clock. Trace consumers
//! that compare traces (`sparcle-trace diff`) therefore strip the
//! wall-clock keys and compare the rest byte-for-byte; the repo's
//! byte-identical determinism suites run without a tracker attached and
//! see no span events at all.
//!
//! ## Abort safety
//!
//! Dropping a [`Span`] without calling [`Span::finish`] — early return,
//! `?`, panic unwind — records a `span_close` with `aborted: true`, so
//! profiles can never silently lose an open span: every `span_open` is
//! matched by exactly one `span_close`.

use std::sync::Mutex;
use std::time::Instant;

use crate::event::Event;
use crate::recorder::Recorder;

#[derive(Debug, Default)]
struct TrackerState {
    next_id: u64,
    stack: Vec<u64>,
}

/// Allocates span ids, anchors the monotonic epoch, and tracks the
/// open-span stack for automatic parenting.
///
/// One tracker serves one trace. Spans must be opened from a single
/// logical control thread (see the module docs); the internal mutex
/// exists only to keep the API `&self` like [`Recorder`].
///
/// ```
/// use sparcle_telemetry::{CollectRecorder, SpanTracker};
/// let recorder = CollectRecorder::new();
/// let tracker = SpanTracker::new();
/// let outer = tracker.open(&recorder, "outer");
/// let inner = tracker.open(&recorder, "inner"); // child of "outer"
/// inner.finish();
/// outer.finish();
/// assert_eq!(recorder.events().len(), 4); // two opens, two closes
/// ```
pub struct SpanTracker {
    epoch: Instant,
    state: Mutex<TrackerState>,
}

impl std::fmt::Debug for SpanTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanTracker").finish_non_exhaustive()
    }
}

impl Default for SpanTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanTracker {
    /// A fresh tracker; its monotonic epoch is "now".
    pub fn new() -> Self {
        SpanTracker {
            epoch: Instant::now(),
            state: Mutex::new(TrackerState::default()),
        }
    }

    /// Opens a span named `name`, emitting its `span_open` event into
    /// `recorder`. The span's parent is the innermost span still open
    /// on this tracker, if any.
    pub fn open<'a>(&'a self, recorder: &'a dyn Recorder, name: &'static str) -> Span<'a> {
        // One clock read serves both the open timestamp and the
        // duration origin; a second would only add overhead.
        let now = Instant::now();
        let t_ns = u64::try_from(now.duration_since(self.epoch).as_nanos()).unwrap_or(u64::MAX);
        let (id, parent) = {
            let mut st = self.state.lock().expect("span tracker poisoned");
            let id = st.next_id;
            st.next_id += 1;
            let parent = st.stack.last().copied();
            st.stack.push(id);
            (id, parent)
        };
        recorder.event(&Event::SpanOpen {
            id,
            parent,
            name,
            t_ns,
        });
        Span {
            tracker: self,
            recorder,
            id,
            name,
            opened: now,
            closed: false,
        }
    }

    /// Spans opened so far (also the next id to be handed out).
    pub fn opened_count(&self) -> u64 {
        self.state.lock().expect("span tracker poisoned").next_id
    }

    fn remove(&self, id: u64) {
        let mut st = self.state.lock().expect("span tracker poisoned");
        // Usually the top of the stack; tolerate out-of-order closes so
        // a parent finished before its child cannot corrupt parenting.
        if let Some(pos) = st.stack.iter().rposition(|&open| open == id) {
            st.stack.remove(pos);
        }
    }
}

/// An open hierarchical span. Close it with [`Span::finish`]; dropping
/// it without finishing records an *aborted* close instead (see the
/// module docs).
#[must_use = "dropping a span without finish() records an aborted close"]
pub struct Span<'a> {
    tracker: &'a SpanTracker,
    recorder: &'a dyn Recorder,
    id: u64,
    name: &'static str,
    opened: Instant,
    closed: bool,
}

impl std::fmt::Debug for Span<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span")
            .field("id", &self.id)
            .field("name", &self.name)
            .finish()
    }
}

impl Span<'_> {
    /// The span's id within its tracker's trace.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Closes the span normally, emitting `span_close` with
    /// `aborted: false`.
    pub fn finish(mut self) {
        self.close(false);
    }

    fn close(&mut self, aborted: bool) {
        if self.closed {
            return;
        }
        self.closed = true;
        let dur_ns = u64::try_from(self.opened.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.tracker.remove(self.id);
        self.recorder.event(&Event::SpanClose {
            id: self.id,
            name: self.name,
            dur_ns,
            aborted,
        });
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.close(true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CollectRecorder;

    fn span_events(r: &CollectRecorder) -> Vec<Event> {
        r.events()
            .into_iter()
            .filter(|e| matches!(e, Event::SpanOpen { .. } | Event::SpanClose { .. }))
            .collect()
    }

    #[test]
    fn finish_records_clean_close_with_parenting() {
        let r = CollectRecorder::new();
        let t = SpanTracker::new();
        let outer = t.open(&r, "outer");
        let inner = t.open(&r, "inner");
        inner.finish();
        outer.finish();
        let sibling = t.open(&r, "sibling");
        sibling.finish();

        let events = span_events(&r);
        assert_eq!(events.len(), 6);
        match &events[0] {
            Event::SpanOpen {
                id, parent, name, ..
            } => {
                assert_eq!((*id, *parent, *name), (0, None, "outer"));
            }
            other => panic!("expected span_open, got {other:?}"),
        }
        match &events[1] {
            Event::SpanOpen {
                id, parent, name, ..
            } => {
                assert_eq!((*id, *parent, *name), (1, Some(0), "inner"));
            }
            other => panic!("expected span_open, got {other:?}"),
        }
        match &events[2] {
            Event::SpanClose { id, aborted, .. } => assert_eq!((*id, *aborted), (1, false)),
            other => panic!("expected span_close, got {other:?}"),
        }
        match &events[3] {
            Event::SpanClose { id, aborted, .. } => assert_eq!((*id, *aborted), (0, false)),
            other => panic!("expected span_close, got {other:?}"),
        }
        // After both closed, a new span is a root again.
        match &events[4] {
            Event::SpanOpen { id, parent, .. } => assert_eq!((*id, *parent), (2, None)),
            other => panic!("expected span_open, got {other:?}"),
        }
        assert_eq!(t.opened_count(), 3);
    }

    #[test]
    fn drop_without_finish_records_aborted_close() {
        let r = CollectRecorder::new();
        let t = SpanTracker::new();
        {
            let _span = t.open(&r, "doomed");
            // early scope exit without finish()
        }
        let events = span_events(&r);
        assert_eq!(events.len(), 2);
        match &events[1] {
            Event::SpanClose {
                id, name, aborted, ..
            } => {
                assert_eq!((*id, *name, *aborted), (0, "doomed", true));
            }
            other => panic!("expected span_close, got {other:?}"),
        }
    }

    #[test]
    fn abort_on_panic_unwind() {
        let r = CollectRecorder::new();
        let t = SpanTracker::new();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _span = t.open(&r, "panicky");
            panic!("boom");
        }));
        assert!(caught.is_err());
        let events = span_events(&r);
        assert_eq!(events.len(), 2);
        assert!(matches!(events[1], Event::SpanClose { aborted: true, .. }));
        // The tracker recovered: the stack is empty again.
        let next = t.open(&r, "after");
        assert!(matches!(
            span_events(&r)[2],
            Event::SpanOpen { parent: None, .. }
        ));
        next.finish();
    }

    #[test]
    fn out_of_order_close_keeps_stack_consistent() {
        let r = CollectRecorder::new();
        let t = SpanTracker::new();
        let outer = t.open(&r, "outer");
        let inner = t.open(&r, "inner");
        // Misuse: close the parent first. The child must still unwind
        // cleanly and the next root span must have no parent.
        outer.finish();
        inner.finish();
        let root = t.open(&r, "root");
        assert!(matches!(
            span_events(&r)[4],
            Event::SpanOpen { parent: None, .. }
        ));
        root.finish();
    }

    #[test]
    fn span_events_validate_against_schema() {
        let r = CollectRecorder::new();
        let t = SpanTracker::new();
        let outer = t.open(&r, "outer");
        let inner = t.open(&r, "inner");
        drop(inner);
        outer.finish();
        for s in r.stamped_events() {
            let line = s.to_json().render();
            assert_eq!(
                crate::schema::validate_line(&line),
                Ok(s.event.kind()),
                "{line}"
            );
        }
    }
}
