//! Minimal JSON value model, serializer, and parser.
//!
//! The workspace builds offline with no external crates, so the
//! telemetry sinks carry their own JSON support. The model is
//! deliberately small:
//!
//! * objects preserve **insertion order** (a `Vec` of pairs, not a map),
//!   which keeps serialized traces byte-stable across runs;
//! * numbers are `f64`, written with Rust's shortest-roundtrip `Display`
//!   (deterministic for a given bit pattern);
//! * non-finite numbers, which JSON cannot represent, are serialized as
//!   the strings `"Infinity"`, `"-Infinity"`, and `"NaN"` — the parser
//!   leaves them as strings.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values are serialized as strings).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on both write and parse.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// A number, downgrading non-finite values to their string forms.
    pub fn num(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else if v.is_nan() {
            Json::Str("NaN".to_owned())
        } else if v > 0.0 {
            Json::Str("Infinity".to_owned())
        } else {
            Json::Str("-Infinity".to_owned())
        }
    }

    /// Looks up a key in an object (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to a compact single-line JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                debug_assert!(v.is_finite(), "use Json::num for non-finite values");
                if v.is_finite() {
                    // Integral values print without a fraction for
                    // readability; Display is shortest-roundtrip either
                    // way, so output is deterministic.
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse failure: byte offset plus a short message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset the parser stopped at.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document (trailing whitespace allowed).
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for telemetry
                            // traces; map unpaired surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one full UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        match text.parse::<f64>() {
            // Overflowing literals ("1e999") parse to ±Infinity; JSON has
            // no non-finite numbers, so accepting them would silently
            // mangle the value. NaN can't be produced by a numeric
            // literal, but reject defensively rather than debug-assert
            // in the serializer later.
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            Ok(_) => Err(ParseError {
                at: start,
                message: format!("number {text:?} is not representable as a finite f64"),
            }),
            Err(_) => Err(self.err("malformed number")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_ordered() {
        let v = Json::obj([
            ("b", Json::Num(1.0)),
            ("a", Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("s", Json::Str("x\"y".to_owned())),
        ]);
        assert_eq!(v.render(), r#"{"b":1,"a":[null,true],"s":"x\"y"}"#);
    }

    #[test]
    fn roundtrips_through_parser() {
        let v = Json::obj([
            ("n", Json::Num(2.5)),
            ("neg", Json::Num(-0.125)),
            ("big", Json::Num(1e18)),
            (
                "arr",
                Json::Arr(vec![Json::Num(1.0), Json::Str("a".into())]),
            ),
            ("obj", Json::obj([("k", Json::Null)])),
        ]);
        let parsed = parse(&v.render()).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn non_finite_numbers_become_strings() {
        assert_eq!(Json::num(f64::INFINITY).render(), "\"Infinity\"");
        assert_eq!(Json::num(f64::NEG_INFINITY).render(), "\"-Infinity\"");
        assert_eq!(Json::num(f64::NAN).render(), "\"NaN\"");
        assert_eq!(Json::num(1.5).render(), "1.5");
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#"{"a":"x\n\tAμ"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_str().unwrap(), "x\n\tAμ");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("123abc").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
    }

    #[test]
    fn number_forms() {
        assert_eq!(parse("-1.5e3").unwrap().as_num(), Some(-1500.0));
        assert_eq!(parse("0").unwrap().as_num(), Some(0.0));
    }

    #[test]
    fn rejects_non_finite_numbers_with_clear_error() {
        for input in ["1e999", "-1e999", "[1,2,1e400]"] {
            let err = parse(input).unwrap_err();
            assert!(
                err.message.contains("finite"),
                "{input}: unexpected message {:?}",
                err.message
            );
        }
        // The error names the offending literal and its offset.
        let err = parse("{\"a\":1e999}").unwrap_err();
        assert_eq!(err.at, 5);
        assert!(err.message.contains("1e999"));
        // Bare NaN/Infinity are not JSON at all.
        assert!(parse("NaN").is_err());
        assert!(parse("Infinity").is_err());
        // The largest finite doubles still parse.
        assert_eq!(
            parse("1.7976931348623157e308").unwrap().as_num(),
            Some(f64::MAX)
        );
    }
}
