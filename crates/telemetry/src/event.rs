//! The structured event model.
//!
//! Events are the **deterministic** part of a telemetry stream: for a
//! fixed seed and input they must be byte-identical across runs *and
//! across worker-thread counts* (the differential suite in
//! `tests/parallel_equivalence.rs` enforces this for the placement
//! engine). Anything wall-clock-dependent — span durations, per-thread
//! row-fill times — therefore never appears as an event; it flows
//! through [`crate::Recorder::timing`] into histograms instead, and
//! surfaces only in the [`crate::MetricsSnapshot`].
//!
//! Events use plain integer ids (`u32` CT/NCP indices) rather than the
//! model crate's typed ids so this crate stays dependency-free and the
//! JSONL schema is self-describing.

use crate::json::Json;

/// Why the ranking chose one CT over the rest of the candidate set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtTieBreak {
    /// The chosen CT's best γ was strictly the smallest.
    UniqueMin,
    /// At least one other CT tied on best γ; the lowest CT id won.
    LowerCtId,
}

impl CtTieBreak {
    fn as_str(self) -> &'static str {
        match self {
            CtTieBreak::UniqueMin => "unique-min",
            CtTieBreak::LowerCtId => "ct-id",
        }
    }
}

/// Why a candidate's best host won over the other hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostTieBreak {
    /// The host's γ was strictly the largest.
    UniqueMax,
    /// At least one other host tied on γ; the lowest NCP id won.
    LowerNcpId,
}

impl HostTieBreak {
    fn as_str(self) -> &'static str {
        match self {
            HostTieBreak::UniqueMax => "unique-max",
            HostTieBreak::LowerNcpId => "ncp-id",
        }
    }
}

/// One unplaced CT's best option in a ranking round.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The candidate CT (index into the task graph).
    pub ct: u32,
    /// Its best host (`argmax_j γ`).
    pub host: u32,
    /// The γ value that host achieves.
    pub gamma: f64,
    /// How the host choice was resolved.
    pub host_tie: HostTieBreak,
}

/// One full Algorithm-2 ranking round: the candidate set and the commit
/// choice it produced.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementDecision {
    /// Zero-based ranking-round number within one assignment.
    pub round: u64,
    /// Per unplaced CT, its best host and γ (the paper's `j*_i`,
    /// `γ_{i,j*_i}`), in CT-id order.
    pub candidates: Vec<Candidate>,
    /// The chosen CT (`argmin_i γ_{i,j*_i}`).
    pub ct: u32,
    /// The chosen host.
    pub host: u32,
    /// The chosen γ.
    pub gamma: f64,
    /// How the CT choice was resolved.
    pub tie_break: CtTieBreak,
    /// γ-cache rows served without recomputation this round.
    pub cache_hits: u64,
    /// γ-cache rows recomputed this round.
    pub cache_misses: u64,
}

/// One committed placement and the cache damage it caused.
#[derive(Debug, Clone, PartialEq)]
pub struct CommitRecord {
    /// The committed CT.
    pub ct: u32,
    /// Its host.
    pub host: u32,
    /// Cached γ rows dropped because the CT shared the committed CT's
    /// unplaced component (invalidation rule 1).
    pub invalidated_component: u64,
    /// Cached γ rows dropped because a routed link intersected their
    /// witness set (invalidation rule 2).
    pub invalidated_witness: u64,
    /// Transport tasks routed by this commit.
    pub routed_tts: u64,
    /// Total link hops across those routes.
    pub routed_hops: u64,
}

/// A structured telemetry event. See the module docs for the
/// determinism contract.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A run (one experiment binary, one assignment batch, …) started.
    RunStart {
        /// Experiment or component name.
        name: String,
    },
    /// One Algorithm-2 ranking round completed.
    Decision(PlacementDecision),
    /// One CT was committed.
    Commit(CommitRecord),
    /// Sampled DES queue depth (every N processed events).
    SimQueueDepth {
        /// Simulated time of the sample.
        time: f64,
        /// Pending events in the future-event list.
        depth: u64,
        /// Events processed so far.
        processed: u64,
    },
    /// One bucket of an application's delivery-rate timeline.
    SimAppRate {
        /// Bucket end time (simulated seconds).
        time: f64,
        /// Application index.
        app: u32,
        /// Delivered units per second within the bucket.
        rate: f64,
    },
    /// A network element changed failure state between epochs.
    SimElementState {
        /// Epoch index.
        epoch: u64,
        /// Element label (`"ncp:3"`, `"link:7"`).
        element: String,
        /// `true` when the element recovered, `false` when it failed.
        up: bool,
    },
    /// The online runtime processed an application arrival.
    RuntimeArrival {
        /// Simulated time of the arrival.
        time: f64,
        /// Application index (arrival sequence number).
        app: u32,
        /// Provenance lineage minted at submission (the arrival index).
        /// Every later lifecycle event for this app carries the same
        /// value, so one key selects a full causal timeline.
        lineage: u64,
        /// QoE class label (`"gr"` or `"be"`).
        class: String,
        /// Whether admission control accepted the application.
        admitted: bool,
        /// Admitted rate (guaranteed for GR, allocated for BE; `0` when
        /// rejected).
        rate: f64,
        /// Cause code for the binding constraint when rejected
        /// (`RejectCause::code()`), `None` when admitted.
        cause: Option<String>,
    },
    /// The online runtime processed an application departure.
    RuntimeDeparture {
        /// Simulated time of the departure.
        time: f64,
        /// Application index.
        app: u32,
        /// Provenance lineage (the arrival index).
        lineage: u64,
    },
    /// A running application lost its placement to an element failure.
    ///
    /// Per-app companion to the aggregate [`Event::RuntimeElementState`]
    /// `displaced` count: its `causes` link back to the app's previous
    /// lifecycle event and to the element transition that evicted it.
    RuntimeDisplace {
        /// Simulated time of the displacement.
        time: f64,
        /// Application index.
        app: u32,
        /// Provenance lineage (the arrival index).
        lineage: u64,
        /// The failed element (`"ncp:3"`, `"link:7"`) — the binding
        /// constraint at decision time.
        element: String,
        /// Cause code (`DisplaceCause::code()`).
        cause: String,
    },
    /// A reconcile pass resolved one displaced application.
    RuntimeReadmit {
        /// Simulated time of the reconcile pass.
        time: f64,
        /// Application index.
        app: u32,
        /// Provenance lineage (the arrival index).
        lineage: u64,
        /// `"restored"` (original placement reinstated), `"replaced"`
        /// (fresh placement found), or `"failed"` (left pending).
        outcome: String,
        /// Rate after readmission (0 when failed).
        rate: f64,
        /// Cause code for the binding constraint when the readmission
        /// failed, `None` on success.
        cause: Option<String>,
    },
    /// A background defragmentation pass moved (or tried to move) a
    /// placed application to a fresh placement through the transactional
    /// migrate primitive — a planned move, not a failure reaction.
    RuntimeMigrate {
        /// Simulated time of the migration.
        time: f64,
        /// Application index.
        app: u32,
        /// Provenance lineage (the arrival index).
        lineage: u64,
        /// `"migrated"` (the move committed) or `"kept"` (the probe
        /// found no admissible placement and the txn rolled back).
        outcome: String,
        /// Rate before the move.
        old_rate: f64,
        /// Rate after the move (equals `old_rate` when kept).
        new_rate: f64,
        /// Cause code (`MigrationCause::code()`).
        cause: String,
    },
    /// A rollback-only what-if probe run while ordering a reconcile
    /// batch (the `GammaProbe` policy): the counterfactual rate the app
    /// would get if readmitted right now, with no state mutated.
    RuntimeProbe {
        /// Simulated time of the probe.
        time: f64,
        /// Application index.
        app: u32,
        /// Provenance lineage (the arrival index).
        lineage: u64,
        /// Whether the probe found a feasible placement.
        feasible: bool,
        /// The counterfactual rate (0 when infeasible).
        rate: f64,
    },
    /// A network element failed or recovered under the online runtime.
    RuntimeElementState {
        /// Simulated time of the transition.
        time: f64,
        /// Element label (`"ncp:3"`, `"link:7"`).
        element: String,
        /// `true` on recovery, `false` on failure.
        up: bool,
        /// Running applications displaced by the transition.
        displaced: u64,
    },
    /// Background capacities fluctuated under the online runtime.
    RuntimeFluctuation {
        /// Simulated time of the capacity step.
        time: f64,
        /// GR reservations violated by the new capacities.
        violated: u64,
    },
    /// A hierarchical timed span opened (see [`crate::span`]).
    ///
    /// `t_ns` is wall-clock (monotonic, relative to the
    /// [`crate::SpanTracker`] epoch) — span events are therefore opt-in
    /// and excluded from the byte-identical determinism contract; trace
    /// diffing strips the wall-clock keys.
    ///
    /// Serialized under the `"span"` key (not `"id"`): `"id"` is the
    /// provenance event id every stamped line carries (DESIGN.md §14).
    SpanOpen {
        /// Span id, unique within one tracker's trace.
        id: u64,
        /// Id of the enclosing open span, if any.
        parent: Option<u64>,
        /// Span name (`"engine.rank_round"`, `"sim.flow"`, …). Static
        /// so span emission on hot paths never allocates (the ≤5 %
        /// overhead budget in `bench/tests/span_overhead.rs`).
        name: &'static str,
        /// Nanoseconds since the tracker's epoch at open.
        t_ns: u64,
    },
    /// A hierarchical timed span closed.
    SpanClose {
        /// Span id matching the corresponding [`Event::SpanOpen`].
        id: u64,
        /// Span name (repeated so a close line is self-describing).
        name: &'static str,
        /// Wall-clock nanoseconds the span was open.
        dur_ns: u64,
        /// `true` when the span was dropped without `finish()` (early
        /// return or panic unwind).
        aborted: bool,
    },
    /// One window snapshot from the runtime's observability monitor.
    ///
    /// Emitted on each monitor tick; every field is derived from the
    /// deterministic sim-time windows in [`crate::window`], so snapshot
    /// streams are byte-identical across evaluator thread counts.
    MonitorSnapshot {
        /// Simulated time of the monitor tick.
        time: f64,
        /// Window span in simulated seconds.
        window: f64,
        /// GR violation-seconds burn rate: windowed violation-seconds
        /// divided by the window's SLO budget (1.0 = burning exactly
        /// the budget).
        gr_burn: f64,
        /// Windowed GR violation-seconds (the burn numerator).
        gr_violation_s: f64,
        /// Aggregate BE delivered rate at the tick.
        be_rate: f64,
        /// Windowed application arrivals per simulated second.
        arrival_rate: f64,
        /// Windowed admissions per simulated second.
        admit_rate: f64,
        /// Windowed γ-cache hit rate (1.0 when the window saw no
        /// lookups).
        cache_hit_rate: f64,
        /// γ-cache lookups in the window (hit-rate denominator).
        cache_lookups: u64,
        /// Windowed warm-start Newton iterations per BE solve (0 when
        /// the window saw no solves).
        warm_iters_per_solve: f64,
        /// BE solves in the window.
        solves: u64,
        /// DES future-event-list depth at the tick.
        queue_depth: u64,
        /// p95 of the windowed queue-depth samples.
        queue_p95: u64,
        /// Applications awaiting re-placement (reconcile backlog).
        backlog: u64,
        /// Applications currently placed and running.
        live: u64,
        /// Alert rules in the firing state after this tick.
        alerts_firing: u64,
    },
    /// A monitor alert rule changed state (edge-triggered: one event
    /// when a rule starts firing, one when it clears).
    MonitorAlert {
        /// Simulated time of the transition.
        time: f64,
        /// Rule label (`"gr_burn_rate"`, `"cache_hit_collapse"`,
        /// `"solver_iteration_blowup"`, `"backlog_growth"`).
        rule: String,
        /// `"firing"` or `"cleared"`.
        state: String,
        /// The observed value that crossed (or re-crossed) the
        /// threshold.
        value: f64,
        /// The rule's threshold.
        threshold: f64,
    },
    /// The runtime's reconcile pass re-placed displaced applications.
    RuntimeReconcile {
        /// Simulated time the reconcile pass ran.
        time: f64,
        /// Reconcile-policy label (`"fifo"`, `"priority"`, `"gamma"`).
        policy: String,
        /// Applications reinstated on their original placement.
        restored: u64,
        /// Applications re-placed onto a new placement.
        replaced: u64,
        /// Applications that could not be re-placed (left pending).
        failed: u64,
        /// Simulated seconds between the disruption and this pass.
        latency: f64,
    },
    /// The admission service closed one micro-batch window: every
    /// request coalesced into it was decided through one batch
    /// transaction (one joint BE solve).
    ServiceBatch {
        /// Simulated time the batch committed.
        time: f64,
        /// Monotone window sequence number.
        window: u64,
        /// Requests decided in this batch.
        size: u64,
        /// Requests admitted.
        admitted: u64,
        /// Requests rejected by admission control (infeasible).
        rejected: u64,
        /// Requests shed by the backpressure policy before placement.
        shed: u64,
        /// Requests still queued for a later window when this one
        /// closed.
        queue_depth: u64,
        /// BE solves the batch cost (1 when anything was admitted, 0
        /// for an all-reject batch; more only on the sequential-replay
        /// fallback).
        solves: u64,
    },
    /// One admission decision the service returned to a client.
    ServiceDecision {
        /// Simulated time the decision was returned (its batch's
        /// commit time).
        time: f64,
        /// Request sequence number (arrival order).
        request: u64,
        /// Provenance lineage minted at ingest (the request sequence
        /// number).
        lineage: u64,
        /// `"gr"` or `"be"`.
        class: String,
        /// `"admitted"`, `"rejected"`, or `"shed"`.
        outcome: String,
        /// Simulated seconds between arrival and decision.
        wait: f64,
        /// Allocated (BE) or guaranteed (GR) rate; 0 when not admitted.
        rate: f64,
        /// Cause code for the binding constraint when rejected or shed
        /// (`RejectCause::code()` / `ShedCause::code()`), `None` when
        /// admitted.
        cause: Option<String>,
    },
    /// A request entered the admission service's micro-batch queue.
    ///
    /// This is where the lineage is minted: every later `service_*`
    /// event for the request links back (through `causes`) to this one.
    ServiceIngest {
        /// Simulated time the request arrived.
        time: f64,
        /// Request sequence number (arrival order).
        request: u64,
        /// Provenance lineage (the request sequence number).
        lineage: u64,
        /// `"gr"` or `"be"`.
        class: String,
    },
    /// The service deferred an entire micro-batch window because the
    /// writer was still busy committing the previous batch.
    ServiceDefer {
        /// Simulated time the window would have closed.
        time: f64,
        /// The deferred window's sequence number.
        window: u64,
        /// Requests queued (and therefore deferred) at that moment.
        queue_depth: u64,
        /// Simulated time the writer becomes free again.
        writer_free: f64,
        /// Cause code (`"writer_busy"`).
        cause: String,
    },
    /// A read-only what-if probe answered from the service's immutable
    /// state snapshot (never blocks on, or observes, the writer).
    ServiceProbe {
        /// Simulated time the probe was answered.
        time: f64,
        /// Probe sequence number.
        request: u64,
        /// Provenance lineage (the request sequence number).
        lineage: u64,
        /// Whether a positive-rate placement exists under the
        /// snapshot's predicted capacities.
        feasible: bool,
        /// The standalone rate the probed placement would achieve (0
        /// when infeasible).
        rate: f64,
    },
}

impl Event {
    /// The `type` tag the JSONL line carries.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RunStart { .. } => "run_start",
            Event::Decision(_) => "decision",
            Event::Commit(_) => "commit",
            Event::SimQueueDepth { .. } => "sim_queue_depth",
            Event::SimAppRate { .. } => "sim_app_rate",
            Event::SimElementState { .. } => "sim_element_state",
            Event::RuntimeArrival { .. } => "runtime_arrival",
            Event::RuntimeDeparture { .. } => "runtime_departure",
            Event::RuntimeDisplace { .. } => "runtime_displace",
            Event::RuntimeReadmit { .. } => "runtime_readmit",
            Event::RuntimeMigrate { .. } => "runtime_migrate",
            Event::RuntimeProbe { .. } => "runtime_probe",
            Event::RuntimeElementState { .. } => "runtime_element_state",
            Event::RuntimeFluctuation { .. } => "runtime_fluctuation",
            Event::RuntimeReconcile { .. } => "runtime_reconcile",
            Event::ServiceBatch { .. } => "service_batch",
            Event::ServiceDecision { .. } => "service_decision",
            Event::ServiceIngest { .. } => "service_ingest",
            Event::ServiceDefer { .. } => "service_defer",
            Event::ServiceProbe { .. } => "service_probe",
            Event::MonitorSnapshot { .. } => "monitor_snapshot",
            Event::MonitorAlert { .. } => "monitor_alert",
            Event::SpanOpen { .. } => "span_open",
            Event::SpanClose { .. } => "span_close",
        }
    }

    /// Converts the event to its JSON representation (one trace line).
    pub fn to_json(&self) -> Json {
        match self {
            Event::RunStart { name } => Json::obj([
                ("type", Json::Str(self.kind().to_owned())),
                ("name", Json::Str(name.clone())),
            ]),
            Event::Decision(d) => Json::obj([
                ("type", Json::Str(self.kind().to_owned())),
                ("round", Json::Num(d.round as f64)),
                ("ct", Json::Num(d.ct as f64)),
                ("host", Json::Num(d.host as f64)),
                ("gamma", Json::num(d.gamma)),
                ("tie_break", Json::Str(d.tie_break.as_str().to_owned())),
                ("cache_hits", Json::Num(d.cache_hits as f64)),
                ("cache_misses", Json::Num(d.cache_misses as f64)),
                (
                    "candidates",
                    Json::Arr(
                        d.candidates
                            .iter()
                            .map(|c| {
                                Json::obj([
                                    ("ct", Json::Num(c.ct as f64)),
                                    ("host", Json::Num(c.host as f64)),
                                    ("gamma", Json::num(c.gamma)),
                                    ("host_tie", Json::Str(c.host_tie.as_str().to_owned())),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Event::Commit(c) => Json::obj([
                ("type", Json::Str(self.kind().to_owned())),
                ("ct", Json::Num(c.ct as f64)),
                ("host", Json::Num(c.host as f64)),
                (
                    "invalidated_component",
                    Json::Num(c.invalidated_component as f64),
                ),
                (
                    "invalidated_witness",
                    Json::Num(c.invalidated_witness as f64),
                ),
                ("routed_tts", Json::Num(c.routed_tts as f64)),
                ("routed_hops", Json::Num(c.routed_hops as f64)),
            ]),
            Event::SimQueueDepth {
                time,
                depth,
                processed,
            } => Json::obj([
                ("type", Json::Str(self.kind().to_owned())),
                ("time", Json::num(*time)),
                ("depth", Json::Num(*depth as f64)),
                ("processed", Json::Num(*processed as f64)),
            ]),
            Event::SimAppRate { time, app, rate } => Json::obj([
                ("type", Json::Str(self.kind().to_owned())),
                ("time", Json::num(*time)),
                ("app", Json::Num(*app as f64)),
                ("rate", Json::num(*rate)),
            ]),
            Event::SimElementState { epoch, element, up } => Json::obj([
                ("type", Json::Str(self.kind().to_owned())),
                ("epoch", Json::Num(*epoch as f64)),
                ("element", Json::Str(element.clone())),
                ("up", Json::Bool(*up)),
            ]),
            Event::RuntimeArrival {
                time,
                app,
                lineage,
                class,
                admitted,
                rate,
                cause,
            } => Json::obj([
                ("type", Json::Str(self.kind().to_owned())),
                ("time", Json::num(*time)),
                ("app", Json::Num(*app as f64)),
                ("lineage", Json::Num(*lineage as f64)),
                ("class", Json::Str(class.clone())),
                ("admitted", Json::Bool(*admitted)),
                ("rate", Json::num(*rate)),
                (
                    "cause",
                    cause.as_ref().map_or(Json::Null, |c| Json::Str(c.clone())),
                ),
            ]),
            Event::RuntimeDeparture { time, app, lineage } => Json::obj([
                ("type", Json::Str(self.kind().to_owned())),
                ("time", Json::num(*time)),
                ("app", Json::Num(*app as f64)),
                ("lineage", Json::Num(*lineage as f64)),
            ]),
            Event::RuntimeDisplace {
                time,
                app,
                lineage,
                element,
                cause,
            } => Json::obj([
                ("type", Json::Str(self.kind().to_owned())),
                ("time", Json::num(*time)),
                ("app", Json::Num(*app as f64)),
                ("lineage", Json::Num(*lineage as f64)),
                ("element", Json::Str(element.clone())),
                ("cause", Json::Str(cause.clone())),
            ]),
            Event::RuntimeReadmit {
                time,
                app,
                lineage,
                outcome,
                rate,
                cause,
            } => Json::obj([
                ("type", Json::Str(self.kind().to_owned())),
                ("time", Json::num(*time)),
                ("app", Json::Num(*app as f64)),
                ("lineage", Json::Num(*lineage as f64)),
                ("outcome", Json::Str(outcome.clone())),
                ("rate", Json::num(*rate)),
                (
                    "cause",
                    cause.as_ref().map_or(Json::Null, |c| Json::Str(c.clone())),
                ),
            ]),
            Event::RuntimeMigrate {
                time,
                app,
                lineage,
                outcome,
                old_rate,
                new_rate,
                cause,
            } => Json::obj([
                ("type", Json::Str(self.kind().to_owned())),
                ("time", Json::num(*time)),
                ("app", Json::Num(*app as f64)),
                ("lineage", Json::Num(*lineage as f64)),
                ("outcome", Json::Str(outcome.clone())),
                ("old_rate", Json::num(*old_rate)),
                ("new_rate", Json::num(*new_rate)),
                ("cause", Json::Str(cause.clone())),
            ]),
            Event::RuntimeProbe {
                time,
                app,
                lineage,
                feasible,
                rate,
            } => Json::obj([
                ("type", Json::Str(self.kind().to_owned())),
                ("time", Json::num(*time)),
                ("app", Json::Num(*app as f64)),
                ("lineage", Json::Num(*lineage as f64)),
                ("feasible", Json::Bool(*feasible)),
                ("rate", Json::num(*rate)),
            ]),
            Event::RuntimeElementState {
                time,
                element,
                up,
                displaced,
            } => Json::obj([
                ("type", Json::Str(self.kind().to_owned())),
                ("time", Json::num(*time)),
                ("element", Json::Str(element.clone())),
                ("up", Json::Bool(*up)),
                ("displaced", Json::Num(*displaced as f64)),
            ]),
            Event::RuntimeFluctuation { time, violated } => Json::obj([
                ("type", Json::Str(self.kind().to_owned())),
                ("time", Json::num(*time)),
                ("violated", Json::Num(*violated as f64)),
            ]),
            Event::MonitorSnapshot {
                time,
                window,
                gr_burn,
                gr_violation_s,
                be_rate,
                arrival_rate,
                admit_rate,
                cache_hit_rate,
                cache_lookups,
                warm_iters_per_solve,
                solves,
                queue_depth,
                queue_p95,
                backlog,
                live,
                alerts_firing,
            } => Json::obj([
                ("type", Json::Str(self.kind().to_owned())),
                ("time", Json::num(*time)),
                ("window", Json::num(*window)),
                ("gr_burn", Json::num(*gr_burn)),
                ("gr_violation_s", Json::num(*gr_violation_s)),
                ("be_rate", Json::num(*be_rate)),
                ("arrival_rate", Json::num(*arrival_rate)),
                ("admit_rate", Json::num(*admit_rate)),
                ("cache_hit_rate", Json::num(*cache_hit_rate)),
                ("cache_lookups", Json::Num(*cache_lookups as f64)),
                ("warm_iters_per_solve", Json::num(*warm_iters_per_solve)),
                ("solves", Json::Num(*solves as f64)),
                ("queue_depth", Json::Num(*queue_depth as f64)),
                ("queue_p95", Json::Num(*queue_p95 as f64)),
                ("backlog", Json::Num(*backlog as f64)),
                ("live", Json::Num(*live as f64)),
                ("alerts_firing", Json::Num(*alerts_firing as f64)),
            ]),
            Event::MonitorAlert {
                time,
                rule,
                state,
                value,
                threshold,
            } => Json::obj([
                ("type", Json::Str(self.kind().to_owned())),
                ("time", Json::num(*time)),
                ("rule", Json::Str(rule.clone())),
                ("state", Json::Str(state.clone())),
                ("value", Json::num(*value)),
                ("threshold", Json::num(*threshold)),
            ]),
            Event::RuntimeReconcile {
                time,
                policy,
                restored,
                replaced,
                failed,
                latency,
            } => Json::obj([
                ("type", Json::Str(self.kind().to_owned())),
                ("time", Json::num(*time)),
                ("policy", Json::Str(policy.clone())),
                ("restored", Json::Num(*restored as f64)),
                ("replaced", Json::Num(*replaced as f64)),
                ("failed", Json::Num(*failed as f64)),
                ("latency", Json::num(*latency)),
            ]),
            Event::ServiceBatch {
                time,
                window,
                size,
                admitted,
                rejected,
                shed,
                queue_depth,
                solves,
            } => Json::obj([
                ("type", Json::Str(self.kind().to_owned())),
                ("time", Json::num(*time)),
                ("window", Json::Num(*window as f64)),
                ("size", Json::Num(*size as f64)),
                ("admitted", Json::Num(*admitted as f64)),
                ("rejected", Json::Num(*rejected as f64)),
                ("shed", Json::Num(*shed as f64)),
                ("queue_depth", Json::Num(*queue_depth as f64)),
                ("solves", Json::Num(*solves as f64)),
            ]),
            Event::ServiceDecision {
                time,
                request,
                lineage,
                class,
                outcome,
                wait,
                rate,
                cause,
            } => Json::obj([
                ("type", Json::Str(self.kind().to_owned())),
                ("time", Json::num(*time)),
                ("request", Json::Num(*request as f64)),
                ("lineage", Json::Num(*lineage as f64)),
                ("class", Json::Str(class.clone())),
                ("outcome", Json::Str(outcome.clone())),
                ("wait", Json::num(*wait)),
                ("rate", Json::num(*rate)),
                (
                    "cause",
                    cause.as_ref().map_or(Json::Null, |c| Json::Str(c.clone())),
                ),
            ]),
            Event::ServiceIngest {
                time,
                request,
                lineage,
                class,
            } => Json::obj([
                ("type", Json::Str(self.kind().to_owned())),
                ("time", Json::num(*time)),
                ("request", Json::Num(*request as f64)),
                ("lineage", Json::Num(*lineage as f64)),
                ("class", Json::Str(class.clone())),
            ]),
            Event::ServiceDefer {
                time,
                window,
                queue_depth,
                writer_free,
                cause,
            } => Json::obj([
                ("type", Json::Str(self.kind().to_owned())),
                ("time", Json::num(*time)),
                ("window", Json::Num(*window as f64)),
                ("queue_depth", Json::Num(*queue_depth as f64)),
                ("writer_free", Json::num(*writer_free)),
                ("cause", Json::Str(cause.clone())),
            ]),
            Event::ServiceProbe {
                time,
                request,
                lineage,
                feasible,
                rate,
            } => Json::obj([
                ("type", Json::Str(self.kind().to_owned())),
                ("time", Json::num(*time)),
                ("request", Json::Num(*request as f64)),
                ("lineage", Json::Num(*lineage as f64)),
                ("feasible", Json::Bool(*feasible)),
                ("rate", Json::num(*rate)),
            ]),
            Event::SpanOpen {
                id,
                parent,
                name,
                t_ns,
            } => Json::obj([
                ("type", Json::Str(self.kind().to_owned())),
                ("span", Json::Num(*id as f64)),
                ("parent", parent.map_or(Json::Null, |p| Json::Num(p as f64))),
                ("name", Json::Str((*name).to_owned())),
                ("t_ns", Json::Num(*t_ns as f64)),
            ]),
            Event::SpanClose {
                id,
                name,
                dur_ns,
                aborted,
            } => Json::obj([
                ("type", Json::Str(self.kind().to_owned())),
                ("span", Json::Num(*id as f64)),
                ("name", Json::Str((*name).to_owned())),
                ("dur_ns", Json::Num(*dur_ns as f64)),
                ("aborted", Json::Bool(*aborted)),
            ]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_serializes_with_required_keys() {
        let e = Event::Decision(PlacementDecision {
            round: 2,
            candidates: vec![Candidate {
                ct: 1,
                host: 3,
                gamma: 4.5,
                host_tie: HostTieBreak::UniqueMax,
            }],
            ct: 1,
            host: 3,
            gamma: 4.5,
            tie_break: CtTieBreak::UniqueMin,
            cache_hits: 1,
            cache_misses: 2,
        });
        let json = e.to_json();
        assert_eq!(json.get("type").unwrap().as_str(), Some("decision"));
        for key in ["round", "ct", "host", "gamma", "tie_break", "candidates"] {
            assert!(json.get(key).is_some(), "missing {key}");
        }
        let line = json.render();
        assert_eq!(crate::json::parse(&line).unwrap(), json);
    }

    #[test]
    fn runtime_events_round_trip() {
        let events = [
            Event::RuntimeArrival {
                time: 1.5,
                app: 4,
                lineage: 4,
                class: "gr".into(),
                admitted: true,
                rate: 2.25,
                cause: None,
            },
            Event::RuntimeArrival {
                time: 1.75,
                app: 5,
                lineage: 5,
                class: "be".into(),
                admitted: false,
                rate: 0.0,
                cause: Some("availability_unreachable".into()),
            },
            Event::RuntimeDeparture {
                time: 2.0,
                app: 4,
                lineage: 4,
            },
            Event::RuntimeDisplace {
                time: 2.5,
                app: 4,
                lineage: 4,
                element: "ncp:1".into(),
                cause: "element_failure".into(),
            },
            Event::RuntimeReadmit {
                time: 2.75,
                app: 4,
                lineage: 4,
                outcome: "replaced".into(),
                rate: 1.5,
                cause: None,
            },
            Event::RuntimeMigrate {
                time: 2.8,
                app: 4,
                lineage: 4,
                outcome: "migrated".into(),
                old_rate: 1.5,
                new_rate: 2.0,
                cause: "defrag_net_gain".into(),
            },
            Event::RuntimeProbe {
                time: 2.6,
                app: 4,
                lineage: 4,
                feasible: true,
                rate: 1.5,
            },
            Event::RuntimeElementState {
                time: 3.0,
                element: "ncp:1".into(),
                up: false,
                displaced: 2,
            },
            Event::RuntimeFluctuation {
                time: 4.0,
                violated: 1,
            },
            Event::RuntimeReconcile {
                time: 5.0,
                policy: "gamma".into(),
                restored: 1,
                replaced: 1,
                failed: 0,
                latency: 0.5,
            },
        ];
        for e in events {
            let json = e.to_json();
            assert_eq!(json.get("type").unwrap().as_str(), Some(e.kind()));
            assert!(e.kind().starts_with("runtime_"), "{}", e.kind());
            let line = json.render();
            assert_eq!(crate::json::parse(&line).unwrap(), json);
        }
        // A rejected arrival carries its cause code; an admitted one
        // serializes the missing cause as JSON null.
        let admitted = Event::RuntimeArrival {
            time: 0.0,
            app: 0,
            lineage: 0,
            class: "be".into(),
            admitted: true,
            rate: 1.0,
            cause: None,
        };
        assert_eq!(admitted.to_json().get("cause"), Some(&Json::Null));
    }

    #[test]
    fn monitor_events_round_trip() {
        let events = [
            Event::MonitorSnapshot {
                time: 30.0,
                window: 20.0,
                gr_burn: 1.25,
                gr_violation_s: 2.5,
                be_rate: 4.0,
                arrival_rate: 1.1,
                admit_rate: 0.9,
                cache_hit_rate: 0.75,
                cache_lookups: 200,
                warm_iters_per_solve: 12.5,
                solves: 8,
                queue_depth: 17,
                queue_p95: 31,
                backlog: 2,
                live: 9,
                alerts_firing: 1,
            },
            Event::MonitorAlert {
                time: 30.0,
                rule: "backlog_growth".into(),
                state: "cleared".into(),
                value: 0.0,
                threshold: 3.0,
            },
        ];
        for e in events {
            let json = e.to_json();
            assert_eq!(json.get("type").unwrap().as_str(), Some(e.kind()));
            assert!(e.kind().starts_with("monitor_"), "{}", e.kind());
            let line = json.render();
            assert_eq!(crate::json::parse(&line).unwrap(), json);
        }
    }

    #[test]
    fn service_events_round_trip() {
        let events = [
            Event::ServiceBatch {
                time: 12.0,
                window: 3,
                size: 5,
                admitted: 3,
                rejected: 1,
                shed: 1,
                queue_depth: 2,
                solves: 1,
            },
            Event::ServiceDecision {
                time: 12.0,
                request: 41,
                lineage: 41,
                class: "gr".into(),
                outcome: "shed".into(),
                wait: 1.5,
                rate: 0.0,
                cause: Some("queue_overflow".into()),
            },
            Event::ServiceIngest {
                time: 11.5,
                request: 41,
                lineage: 41,
                class: "gr".into(),
            },
            Event::ServiceDefer {
                time: 11.75,
                window: 3,
                queue_depth: 4,
                writer_free: 12.0,
                cause: "writer_busy".into(),
            },
            Event::ServiceProbe {
                time: 12.5,
                request: 42,
                lineage: 42,
                feasible: true,
                rate: 3.25,
            },
        ];
        for e in events {
            let json = e.to_json();
            assert_eq!(json.get("type").unwrap().as_str(), Some(e.kind()));
            assert!(e.kind().starts_with("service_"), "{}", e.kind());
            let line = json.render();
            assert_eq!(crate::json::parse(&line).unwrap(), json);
        }
    }

    #[test]
    fn span_events_round_trip() {
        let events = [
            Event::SpanOpen {
                id: 0,
                parent: None,
                name: "engine.assign",
                t_ns: 125,
            },
            Event::SpanOpen {
                id: 1,
                parent: Some(0),
                name: "engine.rank_round",
                t_ns: 250,
            },
            Event::SpanClose {
                id: 1,
                name: "engine.rank_round",
                dur_ns: 1000,
                aborted: false,
            },
            Event::SpanClose {
                id: 0,
                name: "engine.assign",
                dur_ns: 2000,
                aborted: true,
            },
        ];
        for e in events {
            let json = e.to_json();
            assert_eq!(json.get("type").unwrap().as_str(), Some(e.kind()));
            let line = json.render();
            assert_eq!(crate::json::parse(&line).unwrap(), json);
        }
        // A root span serializes its missing parent as JSON null, and
        // the span id lives under "span" — "id" is reserved for the
        // provenance event id stamped by the recorder.
        let root = Event::SpanOpen {
            id: 7,
            parent: None,
            name: "x",
            t_ns: 0,
        };
        assert_eq!(root.to_json().get("parent"), Some(&Json::Null));
        assert_eq!(root.to_json().get("span"), Some(&Json::Num(7.0)));
        assert_eq!(root.to_json().get("id"), None);
    }

    #[test]
    fn kinds_are_stable() {
        let e = Event::RunStart {
            name: "x".to_owned(),
        };
        assert_eq!(e.kind(), "run_start");
        assert_eq!(e.to_json().get("type").unwrap().as_str(), Some("run_start"));
    }
}
