//! JSONL trace-schema validation.
//!
//! Every line of a trace file must parse as a JSON object carrying a
//! known `type` tag and that type's required keys. The nightly CI job
//! runs an experiment binary with `--trace-out` and feeds the file
//! through [`validate_trace`]; the same routine backs the in-process
//! schema test, so the checked contract cannot drift from the emitter.

use crate::json::{parse, Json};

/// Required keys per event `type`, mirroring [`crate::Event::to_json`]
/// and [`crate::MetricsSnapshot::to_trace_json`].
const SCHEMAS: &[(&str, &[&str])] = &[
    ("run_start", &["name"]),
    (
        "decision",
        &[
            "round",
            "ct",
            "host",
            "gamma",
            "tie_break",
            "cache_hits",
            "cache_misses",
            "candidates",
        ],
    ),
    (
        "commit",
        &[
            "ct",
            "host",
            "invalidated_component",
            "invalidated_witness",
            "routed_tts",
            "routed_hops",
        ],
    ),
    ("sim_queue_depth", &["time", "depth", "processed"]),
    ("sim_app_rate", &["time", "app", "rate"]),
    ("sim_element_state", &["epoch", "element", "up"]),
    (
        "runtime_arrival",
        &["time", "app", "class", "admitted", "rate"],
    ),
    ("runtime_departure", &["time", "app"]),
    (
        "runtime_element_state",
        &["time", "element", "up", "displaced"],
    ),
    ("runtime_fluctuation", &["time", "violated"]),
    (
        "runtime_reconcile",
        &[
            "time", "policy", "restored", "replaced", "failed", "latency",
        ],
    ),
    (
        "service_batch",
        &[
            "time",
            "window",
            "size",
            "admitted",
            "rejected",
            "shed",
            "queue_depth",
            "solves",
        ],
    ),
    (
        "service_decision",
        &["time", "request", "class", "outcome", "wait", "rate"],
    ),
    ("service_probe", &["time", "request", "feasible", "rate"]),
    (
        "monitor_snapshot",
        &[
            "time",
            "window",
            "gr_burn",
            "gr_violation_s",
            "be_rate",
            "arrival_rate",
            "admit_rate",
            "cache_hit_rate",
            "cache_lookups",
            "warm_iters_per_solve",
            "solves",
            "queue_depth",
            "queue_p95",
            "backlog",
            "live",
            "alerts_firing",
        ],
    ),
    (
        "monitor_alert",
        &["time", "rule", "state", "value", "threshold"],
    ),
    ("span_open", &["id", "parent", "name", "t_ns"]),
    ("span_close", &["id", "name", "dur_ns", "aborted"]),
    ("snapshot", &["counters"]),
];

/// Validates one JSONL trace line. Returns the event's `type` tag.
///
/// # Errors
///
/// Returns a description when the line is not a JSON object, lacks a
/// string `type`, names an unknown type, or misses a required key.
pub fn validate_line(line: &str) -> Result<&'static str, String> {
    let json = parse(line).map_err(|e| format!("not JSON: {e}"))?;
    if !matches!(json, Json::Obj(_)) {
        return Err("line is not a JSON object".to_owned());
    }
    let kind = json
        .get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing string \"type\" key".to_owned())?;
    let (tag, required) = SCHEMAS
        .iter()
        .find(|(t, _)| *t == kind)
        .ok_or_else(|| format!("unknown event type {kind:?}"))?;
    for key in *required {
        if json.get(key).is_none() {
            return Err(format!("{kind} event missing required key {key:?}"));
        }
    }
    Ok(tag)
}

/// Validates a whole trace: every non-empty line must satisfy
/// [`validate_line`], and the final line must be the `snapshot`.
///
/// Returns the number of validated lines.
///
/// # Errors
///
/// Returns `(line_number, description)` (1-based) for the first
/// offending line, or line 0 when the trace is empty or does not end in
/// a snapshot.
pub fn validate_trace(contents: &str) -> Result<usize, (usize, String)> {
    let mut count = 0;
    let mut last_kind = "";
    for (i, line) in contents.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        last_kind = validate_line(line).map_err(|e| (i + 1, e))?;
        count += 1;
    }
    if count == 0 {
        return Err((0, "trace is empty".to_owned()));
    }
    if last_kind != "snapshot" {
        return Err((0, format!("trace ends in {last_kind:?}, not \"snapshot\"")));
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CollectRecorder, Event, Recorder};

    #[test]
    fn real_events_validate() {
        let r = CollectRecorder::new();
        r.event(&Event::RunStart { name: "t".into() });
        r.event(&Event::SimQueueDepth {
            time: 1.0,
            depth: 3,
            processed: 7,
        });
        r.counter("c", 2);
        let mut trace = String::new();
        for e in r.events() {
            trace.push_str(&e.to_json().render());
            trace.push('\n');
        }
        trace.push_str(&r.snapshot().to_trace_json().render());
        trace.push('\n');
        assert_eq!(validate_trace(&trace), Ok(3));
    }

    #[test]
    fn runtime_events_validate() {
        let r = CollectRecorder::new();
        r.event(&Event::RuntimeArrival {
            time: 0.5,
            app: 0,
            class: "be".into(),
            admitted: false,
            rate: 0.0,
        });
        r.event(&Event::RuntimeElementState {
            time: 1.0,
            element: "link:2".into(),
            up: false,
            displaced: 3,
        });
        r.event(&Event::RuntimeReconcile {
            time: 1.5,
            policy: "fifo".into(),
            restored: 2,
            replaced: 1,
            failed: 0,
            latency: 0.5,
        });
        r.event(&Event::RuntimeFluctuation {
            time: 2.0,
            violated: 0,
        });
        r.event(&Event::RuntimeDeparture { time: 2.5, app: 0 });
        let mut trace = String::new();
        for e in r.events() {
            let line = e.to_json().render();
            assert_eq!(validate_line(&line), Ok(e.kind()));
            trace.push_str(&line);
            trace.push('\n');
        }
        trace.push_str(&r.snapshot().to_trace_json().render());
        trace.push('\n');
        assert_eq!(validate_trace(&trace), Ok(6));
    }

    #[test]
    fn monitor_events_validate() {
        let r = CollectRecorder::new();
        r.event(&Event::MonitorSnapshot {
            time: 10.0,
            window: 20.0,
            gr_burn: 0.4,
            gr_violation_s: 0.2,
            be_rate: 3.5,
            arrival_rate: 1.2,
            admit_rate: 1.0,
            cache_hit_rate: 0.9,
            cache_lookups: 120,
            warm_iters_per_solve: 18.0,
            solves: 6,
            queue_depth: 40,
            queue_p95: 55,
            backlog: 0,
            live: 12,
            alerts_firing: 1,
        });
        r.event(&Event::MonitorAlert {
            time: 10.0,
            rule: "gr_burn_rate".into(),
            state: "firing".into(),
            value: 1.8,
            threshold: 1.0,
        });
        let mut trace = String::new();
        for e in r.events() {
            let line = e.to_json().render();
            assert_eq!(validate_line(&line), Ok(e.kind()));
            trace.push_str(&line);
            trace.push('\n');
        }
        trace.push_str(&r.snapshot().to_trace_json().render());
        trace.push('\n');
        assert_eq!(validate_trace(&trace), Ok(3));
    }

    #[test]
    fn service_events_validate() {
        let r = CollectRecorder::new();
        r.event(&Event::ServiceBatch {
            time: 2.0,
            window: 4,
            size: 3,
            admitted: 2,
            rejected: 1,
            shed: 0,
            queue_depth: 5,
            solves: 1,
        });
        r.event(&Event::ServiceDecision {
            time: 2.0,
            request: 17,
            class: "be".into(),
            outcome: "admitted".into(),
            wait: 0.25,
            rate: 1.5,
        });
        r.event(&Event::ServiceProbe {
            time: 2.5,
            request: 18,
            feasible: false,
            rate: 0.0,
        });
        let mut trace = String::new();
        for e in r.events() {
            let line = e.to_json().render();
            assert_eq!(validate_line(&line), Ok(e.kind()));
            trace.push_str(&line);
            trace.push('\n');
        }
        trace.push_str(&r.snapshot().to_trace_json().render());
        trace.push('\n');
        assert_eq!(validate_trace(&trace), Ok(4));
    }

    #[test]
    fn rejects_bad_lines() {
        assert!(validate_line("not json").is_err());
        assert!(validate_line("[1,2]").is_err());
        assert!(validate_line("{\"type\":\"nope\"}").is_err());
        assert!(validate_line("{\"type\":\"run_start\"}").is_err());
        let err = validate_trace("{\"type\":\"run_start\",\"name\":\"x\"}\n").unwrap_err();
        assert!(err.1.contains("snapshot"), "{err:?}");
        assert!(validate_trace("").is_err());
    }
}
