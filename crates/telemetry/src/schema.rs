//! JSONL trace-schema validation.
//!
//! Every line of a trace file must parse as a JSON object carrying a
//! known `type` tag and that type's required keys. The nightly CI job
//! runs an experiment binary with `--trace-out` and feeds the file
//! through [`validate_trace`]; the same routine backs the in-process
//! schema test, so the checked contract cannot drift from the emitter.

use crate::json::{parse, Json};

/// Required keys per event `type`, mirroring [`crate::Event::to_json`]
/// and [`crate::MetricsSnapshot::to_trace_json`].
const SCHEMAS: &[(&str, &[&str])] = &[
    ("run_start", &["name"]),
    (
        "decision",
        &[
            "round",
            "ct",
            "host",
            "gamma",
            "tie_break",
            "cache_hits",
            "cache_misses",
            "candidates",
        ],
    ),
    (
        "commit",
        &[
            "ct",
            "host",
            "invalidated_component",
            "invalidated_witness",
            "routed_tts",
            "routed_hops",
        ],
    ),
    ("sim_queue_depth", &["time", "depth", "processed"]),
    ("sim_app_rate", &["time", "app", "rate"]),
    ("sim_element_state", &["epoch", "element", "up"]),
    (
        "runtime_arrival",
        &[
            "time", "app", "lineage", "class", "admitted", "rate", "cause",
        ],
    ),
    ("runtime_departure", &["time", "app", "lineage"]),
    (
        "runtime_displace",
        &["time", "app", "lineage", "element", "cause"],
    ),
    (
        "runtime_readmit",
        &["time", "app", "lineage", "outcome", "rate", "cause"],
    ),
    (
        "runtime_migrate",
        &[
            "time", "app", "lineage", "outcome", "old_rate", "new_rate", "cause",
        ],
    ),
    (
        "runtime_probe",
        &["time", "app", "lineage", "feasible", "rate"],
    ),
    (
        "runtime_element_state",
        &["time", "element", "up", "displaced"],
    ),
    ("runtime_fluctuation", &["time", "violated"]),
    (
        "runtime_reconcile",
        &[
            "time", "policy", "restored", "replaced", "failed", "latency",
        ],
    ),
    (
        "service_batch",
        &[
            "time",
            "window",
            "size",
            "admitted",
            "rejected",
            "shed",
            "queue_depth",
            "solves",
        ],
    ),
    (
        "service_decision",
        &[
            "time", "request", "lineage", "class", "outcome", "wait", "rate", "cause",
        ],
    ),
    ("service_ingest", &["time", "request", "lineage", "class"]),
    (
        "service_defer",
        &["time", "window", "queue_depth", "writer_free", "cause"],
    ),
    (
        "service_probe",
        &["time", "request", "lineage", "feasible", "rate"],
    ),
    (
        "monitor_snapshot",
        &[
            "time",
            "window",
            "gr_burn",
            "gr_violation_s",
            "be_rate",
            "arrival_rate",
            "admit_rate",
            "cache_hit_rate",
            "cache_lookups",
            "warm_iters_per_solve",
            "solves",
            "queue_depth",
            "queue_p95",
            "backlog",
            "live",
            "alerts_firing",
        ],
    ),
    (
        "monitor_alert",
        &["time", "rule", "state", "value", "threshold"],
    ),
    ("span_open", &["span", "parent", "name", "t_ns"]),
    ("span_close", &["span", "name", "dur_ns", "aborted"]),
    ("snapshot", &["counters"]),
];

/// Validates one JSONL trace line. Returns the event's `type` tag.
///
/// Beyond the per-kind required keys, every line must carry the
/// provenance stamp: a numeric `id`, plus — when present — a `causes`
/// array whose entries are numeric ids strictly smaller than `id` (a
/// cause always precedes its effect, so cause chains are acyclic by
/// construction; DESIGN.md §14).
///
/// # Errors
///
/// Returns a description when the line is not a JSON object, lacks a
/// string `type` or numeric `id`, names an unknown type, misses a
/// required key, or carries a malformed `causes` list.
pub fn validate_line(line: &str) -> Result<&'static str, String> {
    let json = parse(line).map_err(|e| format!("not JSON: {e}"))?;
    if !matches!(json, Json::Obj(_)) {
        return Err("line is not a JSON object".to_owned());
    }
    let kind = json
        .get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing string \"type\" key".to_owned())?;
    let (tag, required) = SCHEMAS
        .iter()
        .find(|(t, _)| *t == kind)
        .ok_or_else(|| format!("unknown event type {kind:?}"))?;
    for key in *required {
        if json.get(key).is_none() {
            return Err(format!("{kind} event missing required key {key:?}"));
        }
    }
    let id = json
        .get("id")
        .and_then(Json::as_num)
        .ok_or_else(|| format!("{kind} event missing numeric \"id\" key"))?;
    if let Some(causes) = json.get("causes") {
        let entries = causes
            .as_arr()
            .ok_or_else(|| format!("{kind} event \"causes\" is not an array"))?;
        for entry in entries {
            let cause = entry
                .as_num()
                .ok_or_else(|| format!("{kind} event \"causes\" holds a non-numeric entry"))?;
            if cause >= id {
                return Err(format!(
                    "{kind} event id {id} lists cause {cause}, which does not precede it"
                ));
            }
        }
    }
    Ok(tag)
}

/// Validates a whole trace: every non-empty line must satisfy
/// [`validate_line`], and the final line must be the `snapshot`.
///
/// Returns the number of validated lines.
///
/// # Errors
///
/// Returns `(line_number, description)` (1-based) for the first
/// offending line, or line 0 when the trace is empty or does not end in
/// a snapshot.
pub fn validate_trace(contents: &str) -> Result<usize, (usize, String)> {
    match validate_trace_inner(contents, false) {
        Ok((count, _)) => Ok(count),
        Err(e) => Err(e),
    }
}

/// Like [`validate_trace`], but tolerates a partially-written trace from
/// an interrupted run: when the **final** line fails to parse as JSON it
/// is skipped (and the trailing-snapshot requirement waived, since the
/// writer clearly never got to `finish()`).
///
/// Returns `(validated_lines, truncated)`; `truncated` is `true` when a
/// partial final line was skipped.
///
/// # Errors
///
/// Same as [`validate_trace`] for every other failure mode — a
/// malformed line *before* the end of the file is still an error.
pub fn validate_trace_lenient(contents: &str) -> Result<(usize, bool), (usize, String)> {
    validate_trace_inner(contents, true)
}

fn validate_trace_inner(contents: &str, lenient: bool) -> Result<(usize, bool), (usize, String)> {
    let lines: Vec<(usize, &str)> = contents
        .lines()
        .enumerate()
        .filter(|(_, line)| !line.is_empty())
        .collect();
    let mut count = 0;
    let mut last_kind = "";
    let mut truncated = false;
    for (slot, &(i, line)) in lines.iter().enumerate() {
        match validate_line(line) {
            Ok(kind) => {
                last_kind = kind;
                count += 1;
            }
            Err(e) => {
                let is_last = slot + 1 == lines.len();
                if lenient && is_last && e.starts_with("not JSON") {
                    truncated = true;
                    break;
                }
                return Err((i + 1, e));
            }
        }
    }
    if count == 0 {
        return Err((0, "trace is empty".to_owned()));
    }
    if last_kind != "snapshot" && !truncated {
        return Err((0, format!("trace ends in {last_kind:?}, not \"snapshot\"")));
    }
    Ok((count, truncated))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::stamp_json;
    use crate::{CollectRecorder, Event, Recorder};

    /// Renders a recorder's stream plus a stamped snapshot line — what a
    /// [`crate::JsonlRecorder`] would have put on disk.
    fn full_trace(r: &CollectRecorder) -> String {
        let mut trace = r.render_trace();
        let id = r.stamped_events().len() as u64 + 1;
        trace.push_str(&stamp_json(r.snapshot().to_trace_json(), id, &[]).render());
        trace.push('\n');
        trace
    }

    #[test]
    fn real_events_validate() {
        let r = CollectRecorder::new();
        r.event(&Event::RunStart { name: "t".into() });
        r.event(&Event::SimQueueDepth {
            time: 1.0,
            depth: 3,
            processed: 7,
        });
        r.counter("c", 2);
        assert_eq!(validate_trace(&full_trace(&r)), Ok(3));
    }

    #[test]
    fn runtime_events_validate() {
        let r = CollectRecorder::new();
        let arrival = r.event_caused(
            &Event::RuntimeArrival {
                time: 0.5,
                app: 0,
                lineage: 0,
                class: "be".into(),
                admitted: true,
                rate: 1.25,
                cause: None,
            },
            &[],
        );
        let element = r.event_caused(
            &Event::RuntimeElementState {
                time: 1.0,
                element: "link:2".into(),
                up: false,
                displaced: 3,
            },
            &[],
        );
        let displace = r.event_caused(
            &Event::RuntimeDisplace {
                time: 1.0,
                app: 0,
                lineage: 0,
                element: "link:2".into(),
                cause: "element_failure".into(),
            },
            &[arrival, element],
        );
        r.event_caused(
            &Event::RuntimeProbe {
                time: 1.5,
                app: 0,
                lineage: 0,
                feasible: true,
                rate: 1.0,
            },
            &[displace],
        );
        let readmit = r.event_caused(
            &Event::RuntimeReadmit {
                time: 1.5,
                app: 0,
                lineage: 0,
                outcome: "replaced".into(),
                rate: 1.0,
                cause: None,
            },
            &[displace],
        );
        r.event_caused(
            &Event::RuntimeMigrate {
                time: 2.25,
                app: 0,
                lineage: 0,
                outcome: "migrated".into(),
                old_rate: 1.0,
                new_rate: 1.5,
                cause: "defrag_net_gain".into(),
            },
            &[readmit],
        );
        r.event_caused(
            &Event::RuntimeReconcile {
                time: 1.5,
                policy: "fifo".into(),
                restored: 2,
                replaced: 1,
                failed: 0,
                latency: 0.5,
            },
            &[displace],
        );
        r.event(&Event::RuntimeFluctuation {
            time: 2.0,
            violated: 0,
        });
        r.event_caused(
            &Event::RuntimeDeparture {
                time: 2.5,
                app: 0,
                lineage: 0,
            },
            &[readmit],
        );
        for s in r.stamped_events() {
            let line = s.to_json().render();
            assert_eq!(validate_line(&line), Ok(s.event.kind()));
        }
        assert_eq!(validate_trace(&full_trace(&r)), Ok(10));
    }

    #[test]
    fn monitor_events_validate() {
        let r = CollectRecorder::new();
        r.event(&Event::MonitorSnapshot {
            time: 10.0,
            window: 20.0,
            gr_burn: 0.4,
            gr_violation_s: 0.2,
            be_rate: 3.5,
            arrival_rate: 1.2,
            admit_rate: 1.0,
            cache_hit_rate: 0.9,
            cache_lookups: 120,
            warm_iters_per_solve: 18.0,
            solves: 6,
            queue_depth: 40,
            queue_p95: 55,
            backlog: 0,
            live: 12,
            alerts_firing: 1,
        });
        r.event(&Event::MonitorAlert {
            time: 10.0,
            rule: "gr_burn_rate".into(),
            state: "firing".into(),
            value: 1.8,
            threshold: 1.0,
        });
        for s in r.stamped_events() {
            let line = s.to_json().render();
            assert_eq!(validate_line(&line), Ok(s.event.kind()));
        }
        assert_eq!(validate_trace(&full_trace(&r)), Ok(3));
    }

    #[test]
    fn service_events_validate() {
        let r = CollectRecorder::new();
        let ingest = r.event_caused(
            &Event::ServiceIngest {
                time: 1.5,
                request: 17,
                lineage: 17,
                class: "be".into(),
            },
            &[],
        );
        r.event_caused(
            &Event::ServiceDefer {
                time: 1.75,
                window: 3,
                queue_depth: 1,
                writer_free: 2.0,
                cause: "writer_busy".into(),
            },
            &[],
        );
        let batch = r.event_caused(
            &Event::ServiceBatch {
                time: 2.0,
                window: 4,
                size: 3,
                admitted: 2,
                rejected: 1,
                shed: 0,
                queue_depth: 5,
                solves: 1,
            },
            &[ingest],
        );
        r.event_caused(
            &Event::ServiceDecision {
                time: 2.0,
                request: 17,
                lineage: 17,
                class: "be".into(),
                outcome: "admitted".into(),
                wait: 0.25,
                rate: 1.5,
                cause: None,
            },
            &[ingest, batch],
        );
        r.event(&Event::ServiceProbe {
            time: 2.5,
            request: 18,
            lineage: 18,
            feasible: false,
            rate: 0.0,
        });
        for s in r.stamped_events() {
            let line = s.to_json().render();
            assert_eq!(validate_line(&line), Ok(s.event.kind()));
        }
        assert_eq!(validate_trace(&full_trace(&r)), Ok(6));
    }

    #[test]
    fn rejects_bad_lines() {
        assert!(validate_line("not json").is_err());
        assert!(validate_line("[1,2]").is_err());
        assert!(validate_line("{\"type\":\"nope\"}").is_err());
        assert!(validate_line("{\"type\":\"run_start\",\"id\":1}").is_err());
        // The provenance stamp is mandatory...
        assert!(validate_line("{\"type\":\"run_start\",\"name\":\"x\"}").is_err());
        // ...and causes must be earlier numeric ids.
        assert!(
            validate_line("{\"type\":\"run_start\",\"id\":4,\"name\":\"x\",\"causes\":[2]}")
                .is_ok()
        );
        assert!(
            validate_line("{\"type\":\"run_start\",\"id\":4,\"name\":\"x\",\"causes\":[4]}")
                .is_err()
        );
        assert!(validate_line(
            "{\"type\":\"run_start\",\"id\":4,\"name\":\"x\",\"causes\":[\"a\"]}"
        )
        .is_err());
        assert!(
            validate_line("{\"type\":\"run_start\",\"id\":4,\"name\":\"x\",\"causes\":3}").is_err()
        );
        let err = validate_trace("{\"type\":\"run_start\",\"id\":1,\"name\":\"x\"}\n").unwrap_err();
        assert!(err.1.contains("snapshot"), "{err:?}");
        assert!(validate_trace("").is_err());
    }

    #[test]
    fn lenient_validation_skips_a_truncated_final_line() {
        let whole = "{\"type\":\"run_start\",\"id\":1,\"name\":\"x\"}\n\
                     {\"type\":\"snapshot\",\"id\":2,\"counters\":{}}\n";
        assert_eq!(validate_trace_lenient(whole), Ok((2, false)));

        // An interrupted writer leaves a partial final line: strict
        // validation rejects it, lenient validation skips it with the
        // truncation flag set (and waives the trailing-snapshot rule).
        let truncated = "{\"type\":\"run_start\",\"id\":1,\"name\":\"x\"}\n\
                         {\"type\":\"snapsh";
        assert!(validate_trace(truncated).is_err());
        assert_eq!(validate_trace_lenient(truncated), Ok((1, true)));

        // A malformed line mid-file is still an error in both modes.
        let corrupt = "{\"type\":\"run_st\n\
                       {\"type\":\"snapshot\",\"id\":2,\"counters\":{}}\n";
        assert!(validate_trace(corrupt).is_err());
        assert!(validate_trace_lenient(corrupt).is_err());

        // A truncated-only trace still counts as empty.
        assert!(validate_trace_lenient("{\"type\":\"run").is_err());
    }
}
