//! Sim-time sliding-window aggregators for the online observability
//! plane.
//!
//! Everything here is keyed on **simulated** seconds, never wall clock:
//! a sample at sim time `t` lands in slot `floor(t / slot_width)`, and a
//! window of `slots` ring-buffered slots covers the trailing
//! `slots * slot_width` simulated seconds. Because the runtime's event
//! timeline is deterministic, every aggregate derived here is a pure
//! function of the input and seed — windowed snapshots stay
//! byte-identical across evaluator thread counts, unlike the wall-clock
//! histograms in [`crate::MetricsSnapshot`].
//!
//! Three aggregators share the ring:
//!
//! * [`WindowedCounter`] — integer deltas (arrivals, cache hits);
//! * [`RateEstimator`] — `f64` quantities normalized to a per-simulated-
//!   second rate over the covered span (violation-seconds, admissions);
//! * [`WindowedHistogram`] — a [`Histogram`] per slot with a mergeable
//!   windowed view for p50/p95/p99 (queue depths, reaction latencies).
//!
//! Windowed histograms additionally [`merge`](WindowedHistogram::merge)
//! across instances **aligned by absolute slot index**, so per-shard
//! windows combine associatively into one fleet-wide window.

use crate::metrics::Histogram;

/// The generic ring under the three aggregators: `slots` values, each
/// covering `slot_width` simulated seconds, addressed by absolute slot
/// index modulo the ring length. Slots that fall out of the trailing
/// window are reset to `T::default()` on advance, so the invariant
/// holds that every ring entry is either live or default.
#[derive(Debug, Clone, PartialEq)]
struct Ring<T> {
    slot_width: f64,
    slots: Vec<T>,
    /// Highest absolute slot index observed; `None` before any sample
    /// or advance.
    head: Option<u64>,
}

impl<T: Clone + Default> Ring<T> {
    fn new(slot_width: f64, slots: usize) -> Self {
        assert!(
            slot_width.is_finite() && slot_width > 0.0,
            "slot width must be positive and finite"
        );
        assert!(slots > 0, "window needs at least one slot");
        Ring {
            slot_width,
            slots: vec![T::default(); slots],
            head: None,
        }
    }

    fn slot_of(&self, t: f64) -> u64 {
        assert!(
            t.is_finite() && t >= 0.0,
            "sim time must be finite and >= 0"
        );
        (t / self.slot_width) as u64
    }

    /// Rotates the ring forward to absolute slot `s`, clearing every
    /// slot that the advance evicts. Earlier slots are a no-op.
    fn advance_to_slot(&mut self, s: u64) {
        let len = self.slots.len() as u64;
        match self.head {
            None => self.head = Some(s),
            Some(h) if s <= h => {}
            Some(h) => {
                let jump = s - h;
                if jump >= len {
                    // The whole window scrolled past (horizon wrap):
                    // every slot is stale.
                    for slot in &mut self.slots {
                        *slot = T::default();
                    }
                } else {
                    for i in 1..=jump {
                        self.slots[((h + i) % len) as usize] = T::default();
                    }
                }
                self.head = Some(s);
            }
        }
    }

    /// The slot for sim time `t`, advancing the ring first. `None` when
    /// `t` is older than the trailing window (the sample is dropped).
    fn slot_mut(&mut self, t: f64) -> Option<&mut T> {
        let s = self.slot_of(t);
        self.advance_to_slot(s);
        let len = self.slots.len() as u64;
        if self.head.unwrap_or(0) - s >= len {
            None
        } else {
            Some(&mut self.slots[(s % len) as usize])
        }
    }

    /// Number of slots the window currently covers: the ring length,
    /// except while the run is younger than one full window.
    fn span_slots(&self) -> u64 {
        match self.head {
            None => 0,
            Some(h) => (h + 1).min(self.slots.len() as u64),
        }
    }

    /// Merges `other`'s live slots into `self`, aligned by absolute
    /// slot index (`combine` folds one aligned pair).
    fn merge_from(&mut self, other: &Ring<T>, mut combine: impl FnMut(&mut T, &T)) {
        assert!(
            self.slot_width == other.slot_width && self.slots.len() == other.slots.len(),
            "windows with different slot widths or lengths cannot merge"
        );
        let Some(other_head) = other.head else {
            return;
        };
        let len = self.slots.len() as u64;
        let target = self.head.map_or(other_head, |h| h.max(other_head));
        self.advance_to_slot(target);
        // Only slots inside both the merged window and other's live
        // range contribute; everything older is already evicted.
        let start = target
            .saturating_sub(len - 1)
            .max(other_head.saturating_sub(len - 1));
        for s in start..=other_head {
            combine(
                &mut self.slots[(s % len) as usize],
                &other.slots[(s % len) as usize],
            );
        }
    }
}

/// A sliding-window counter over simulated time: integer deltas land in
/// the slot of their sim timestamp, [`sum`](WindowedCounter::sum) reads
/// the trailing window, [`total`](WindowedCounter::total) the whole
/// run.
///
/// ```
/// use sparcle_telemetry::window::WindowedCounter;
/// let mut c = WindowedCounter::new(1.0, 4); // 4 slots x 1 sim-second
/// c.record(0.5, 2);
/// c.record(3.9, 1);
/// assert_eq!(c.sum(), 3);
/// c.advance(6.0); // slot 0 scrolled out of the [3, 6] window
/// assert_eq!(c.sum(), 1);
/// assert_eq!(c.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedCounter {
    ring: Ring<u64>,
    total: u64,
}

impl WindowedCounter {
    /// A window of `slots` ring slots, each `slot_width` sim seconds.
    ///
    /// # Panics
    ///
    /// Panics when `slot_width` is not positive/finite or `slots` is 0.
    pub fn new(slot_width: f64, slots: usize) -> Self {
        WindowedCounter {
            ring: Ring::new(slot_width, slots),
            total: 0,
        }
    }

    /// Adds `delta` at sim time `t`. Samples older than the trailing
    /// window still count toward [`total`](Self::total) but not the
    /// windowed sum.
    ///
    /// # Panics
    ///
    /// Panics when `t` is negative or not finite.
    pub fn record(&mut self, t: f64, delta: u64) {
        self.total += delta;
        if let Some(slot) = self.ring.slot_mut(t) {
            *slot += delta;
        }
    }

    /// Rotates the window forward to sim time `t` without recording.
    pub fn advance(&mut self, t: f64) {
        let s = self.ring.slot_of(t);
        self.ring.advance_to_slot(s);
    }

    /// Sum over the trailing window.
    pub fn sum(&self) -> u64 {
        // Invariant: evicted slots are zeroed, so the ring sum is the
        // window sum.
        self.ring.slots.iter().sum()
    }

    /// Lifetime sum, windowing ignored.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The window span in simulated seconds (`slot_width * slots`).
    pub fn window_seconds(&self) -> f64 {
        self.ring.slot_width * self.ring.slots.len() as f64
    }
}

/// A windowed rate estimator over simulated time: `f64` quantities
/// accumulate into slots, and [`rate`](RateEstimator::rate) normalizes
/// the windowed sum by the simulated seconds the window actually covers
/// (shorter than the full span only while the run is younger than one
/// window).
///
/// ```
/// use sparcle_telemetry::window::RateEstimator;
/// let mut r = RateEstimator::new(2.0, 5); // 10-sim-second window
/// r.record(1.0, 4.0);
/// r.record(3.0, 2.0);
/// // Run is 2 slots (4 sim seconds) old: 6.0 units / 4 s.
/// assert_eq!(r.rate(), 1.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RateEstimator {
    ring: Ring<f64>,
    total: f64,
}

impl RateEstimator {
    /// A window of `slots` ring slots, each `slot_width` sim seconds.
    ///
    /// # Panics
    ///
    /// Panics when `slot_width` is not positive/finite or `slots` is 0.
    pub fn new(slot_width: f64, slots: usize) -> Self {
        RateEstimator {
            ring: Ring::new(slot_width, slots),
            total: 0.0,
        }
    }

    /// Adds `value` at sim time `t` (older-than-window samples count
    /// only toward [`total`](Self::total)).
    ///
    /// # Panics
    ///
    /// Panics when `t` is negative or not finite.
    pub fn record(&mut self, t: f64, value: f64) {
        self.total += value;
        if let Some(slot) = self.ring.slot_mut(t) {
            *slot += value;
        }
    }

    /// Rotates the window forward to sim time `t` without recording.
    pub fn advance(&mut self, t: f64) {
        let s = self.ring.slot_of(t);
        self.ring.advance_to_slot(s);
    }

    /// Sum over the trailing window.
    pub fn sum(&self) -> f64 {
        self.ring.slots.iter().sum()
    }

    /// Windowed sum per covered simulated second; `0.0` before any
    /// sample or advance.
    pub fn rate(&self) -> f64 {
        let covered = self.covered_seconds();
        if covered > 0.0 {
            self.sum() / covered
        } else {
            0.0
        }
    }

    /// Simulated seconds the window currently covers.
    pub fn covered_seconds(&self) -> f64 {
        self.ring.span_slots() as f64 * self.ring.slot_width
    }

    /// Lifetime sum, windowing ignored.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// The window span in simulated seconds (`slot_width * slots`).
    pub fn window_seconds(&self) -> f64 {
        self.ring.slot_width * self.ring.slots.len() as f64
    }
}

/// A sliding window of [`Histogram`]s over simulated time: one
/// fixed-bucket histogram per slot, with a merged windowed view for
/// quantiles and cross-instance [`merge`](WindowedHistogram::merge)
/// aligned by absolute slot index.
///
/// ```
/// use sparcle_telemetry::window::WindowedHistogram;
/// let mut h = WindowedHistogram::new(5.0, 4);
/// h.record(1.0, 10);
/// h.record(12.0, 1000);
/// assert_eq!(h.count(), 2);
/// h.advance(21.0); // slot 0 (the 10) scrolled out
/// assert_eq!(h.merged().min(), Some(1000));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedHistogram {
    ring: Ring<Histogram>,
}

impl WindowedHistogram {
    /// A window of `slots` ring slots, each `slot_width` sim seconds.
    ///
    /// # Panics
    ///
    /// Panics when `slot_width` is not positive/finite or `slots` is 0.
    pub fn new(slot_width: f64, slots: usize) -> Self {
        WindowedHistogram {
            ring: Ring::new(slot_width, slots),
        }
    }

    /// Records `value` at sim time `t`; samples older than the trailing
    /// window are dropped.
    ///
    /// # Panics
    ///
    /// Panics when `t` is negative or not finite.
    pub fn record(&mut self, t: f64, value: u64) {
        if let Some(slot) = self.ring.slot_mut(t) {
            slot.record(value);
        }
    }

    /// Rotates the window forward to sim time `t` without recording.
    pub fn advance(&mut self, t: f64) {
        let s = self.ring.slot_of(t);
        self.ring.advance_to_slot(s);
    }

    /// The trailing window folded into one [`Histogram`].
    pub fn merged(&self) -> Histogram {
        let mut out = Histogram::new();
        // Invariant: evicted slots are empty, so folding the whole ring
        // folds exactly the live window.
        for slot in &self.ring.slots {
            out.merge(slot);
        }
        out
    }

    /// Samples in the trailing window.
    pub fn count(&self) -> u64 {
        self.ring.slots.iter().map(Histogram::count).sum()
    }

    /// The q-quantile of the trailing window (`None` when empty).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.merged().quantile(q)
    }

    /// Merges another windowed histogram into this one, **aligned by
    /// absolute slot index**: slot `k` of `other` folds into slot `k`
    /// of `self`, the merged head is the later of the two heads, and
    /// slots that fall out of the merged window are evicted. The
    /// operation is associative and commutative over the merged window,
    /// so per-shard windows combine in any order.
    ///
    /// # Panics
    ///
    /// Panics when the two windows differ in slot width or slot count.
    pub fn merge(&mut self, other: &WindowedHistogram) {
        self.ring.merge_from(&other.ring, |a, b| a.merge(b));
    }

    /// The window span in simulated seconds (`slot_width * slots`).
    pub fn window_seconds(&self) -> f64 {
        self.ring.slot_width * self.ring.slots.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_reads_zero() {
        let c = WindowedCounter::new(1.0, 4);
        assert_eq!(c.sum(), 0);
        assert_eq!(c.total(), 0);
        let r = RateEstimator::new(1.0, 4);
        assert_eq!(r.sum(), 0.0);
        assert_eq!(r.rate(), 0.0);
        assert_eq!(r.covered_seconds(), 0.0);
        let h = WindowedHistogram::new(1.0, 4);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn single_sample_is_the_window() {
        let mut c = WindowedCounter::new(2.0, 3);
        c.record(1.5, 7);
        assert_eq!(c.sum(), 7);
        assert_eq!(c.total(), 7);

        let mut h = WindowedHistogram::new(2.0, 3);
        h.record(1.5, 42);
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(h.quantile(q), Some(42), "q={q}");
        }
    }

    #[test]
    fn rotation_evicts_exactly_the_scrolled_slots() {
        let mut c = WindowedCounter::new(1.0, 4);
        for slot in 0..4u64 {
            c.record(slot as f64 + 0.5, 1);
        }
        assert_eq!(c.sum(), 4);
        // Advance one slot: slot 0 scrolls out, slots 1-4 remain.
        c.record(4.5, 1);
        assert_eq!(c.sum(), 4);
        assert_eq!(c.total(), 5);
        // Two more slots: 1 and 2 scroll out.
        c.advance(6.5);
        assert_eq!(c.sum(), 2);
    }

    #[test]
    fn horizon_wrap_clears_everything() {
        let mut c = WindowedCounter::new(1.0, 4);
        c.record(0.5, 3);
        c.record(2.5, 2);
        // Jump far past the window: every slot is stale, including ring
        // positions the jump lands on modulo the length.
        c.advance(1000.5);
        assert_eq!(c.sum(), 0);
        assert_eq!(c.total(), 5);
        c.record(1001.5, 9);
        assert_eq!(c.sum(), 9);

        let mut h = WindowedHistogram::new(1.0, 4);
        h.record(0.5, 10);
        h.advance(1000.5);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn older_than_window_samples_are_dropped_from_the_window() {
        let mut c = WindowedCounter::new(1.0, 4);
        c.advance(10.5); // head at slot 10, window covers slots 7-10
        c.record(6.5, 5); // slot 6: too old
        assert_eq!(c.sum(), 0);
        assert_eq!(c.total(), 5);
        c.record(7.5, 2); // slot 7: oldest live slot
        assert_eq!(c.sum(), 2);
    }

    #[test]
    fn rate_normalizes_by_covered_span_until_window_fills() {
        let mut r = RateEstimator::new(1.0, 10);
        r.record(0.5, 6.0);
        // One slot old: 6 units over 1 covered second.
        assert_eq!(r.rate(), 6.0);
        r.advance(2.5);
        // Three slots old: 6 units over 3 seconds.
        assert_eq!(r.rate(), 2.0);
        r.advance(99.5);
        // Window long since full: sum 0 over the full 10-second span.
        assert_eq!(r.rate(), 0.0);
        assert_eq!(r.covered_seconds(), 10.0);
        assert_eq!(r.total(), 6.0);
    }

    #[test]
    fn windowed_histogram_quantiles_track_the_window() {
        let mut h = WindowedHistogram::new(5.0, 4);
        for i in 0..20u64 {
            h.record(i as f64, i * 100);
        }
        assert_eq!(h.count(), 20);
        // Scroll two slots: samples at t in [0,10) leave the window.
        h.advance(29.0);
        assert_eq!(h.count(), 10);
        assert_eq!(h.merged().min(), Some(1000));
        assert_eq!(h.merged().max(), Some(1900));
    }

    #[test]
    fn merge_aligns_on_absolute_slots() {
        let mut a = WindowedHistogram::new(1.0, 4);
        let mut b = WindowedHistogram::new(1.0, 4);
        a.record(0.5, 10);
        b.record(3.5, 1000); // b's head is 3 slots ahead
        a.merge(&b);
        // Merged head is slot 3; slot 0 (the 10) is still live.
        assert_eq!(a.count(), 2);
        assert_eq!(a.merged().min(), Some(10));
        assert_eq!(a.merged().max(), Some(1000));
        // Advance one slot: exactly the slot-0 sample leaves.
        a.advance(4.5);
        assert_eq!(a.count(), 1);
        assert_eq!(a.merged().min(), Some(1000));
    }

    #[test]
    fn merge_evicts_slots_behind_the_merged_head() {
        let mut a = WindowedHistogram::new(1.0, 4);
        let mut b = WindowedHistogram::new(1.0, 4);
        a.record(0.5, 10); // slot 0
        b.record(7.5, 1000); // slot 7: window becomes slots 4-7
        a.merge(&b);
        assert_eq!(a.count(), 1);
        assert_eq!(a.merged().min(), Some(1000));
        // Symmetric direction: merging the stale window into the fresh
        // one contributes nothing.
        let mut b2 = WindowedHistogram::new(1.0, 4);
        b2.record(7.5, 1000);
        let mut stale = WindowedHistogram::new(1.0, 4);
        stale.record(0.5, 10);
        b2.merge(&stale);
        assert_eq!(b2.count(), 1);
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut a = WindowedHistogram::new(1.0, 4);
        a.record(1.5, 5);
        let before = a.clone();
        a.merge(&WindowedHistogram::new(1.0, 4));
        assert_eq!(a, before);

        let mut empty = WindowedHistogram::new(1.0, 4);
        empty.merge(&before);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.quantile(0.5), Some(5));
    }

    #[test]
    #[should_panic(expected = "cannot merge")]
    fn merge_rejects_mismatched_windows() {
        let mut a = WindowedHistogram::new(1.0, 4);
        let b = WindowedHistogram::new(2.0, 4);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slot_window_is_rejected() {
        let _ = WindowedCounter::new(1.0, 0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn non_positive_slot_width_is_rejected() {
        let _ = RateEstimator::new(0.0, 4);
    }

    #[test]
    fn slot_boundary_lands_in_the_new_slot() {
        let mut c = WindowedCounter::new(5.0, 2);
        c.record(5.0, 1); // exactly t = slot_width -> slot 1
        c.advance(9.9); // still slot 1
        assert_eq!(c.sum(), 1);
        c.advance(10.0); // slot 2: slot 0 scrolls out, slot 1 stays
        assert_eq!(c.sum(), 1);
        c.advance(15.0); // slot 3: slot 1 scrolls out
        assert_eq!(c.sum(), 0);
    }
}
