//! The `Recorder` trait and the built-in sinks.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::Path;
use std::sync::Mutex;

use crate::event::Event;
use crate::metrics::{Histogram, MetricsSnapshot};

/// A telemetry sink.
///
/// Methods take `&self` so one recorder can be shared behind a plain
/// reference; implementations use interior mutability. All methods have
/// no-op defaults, so a sink only implements what it cares about.
///
/// The overhead contract: when the `telemetry` feature is off in the
/// instrumented crates, no `Recorder` is ever constructed or called —
/// call sites compile away entirely (see DESIGN.md §7).
pub trait Recorder {
    /// Records one structured (deterministic) event.
    fn event(&self, _event: &Event) {}

    /// Increments a named monotonic counter.
    fn counter(&self, _name: &str, _delta: u64) {}

    /// Records a duration (nanoseconds) into a named histogram.
    ///
    /// Timings are wall-clock dependent and therefore never appear in
    /// the event/trace stream — only in the end-of-run snapshot.
    fn timing(&self, _name: &str, _nanos: u64) {}
}

/// The do-nothing sink. Useful as an explicit default.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

#[derive(Debug, Default)]
struct Accum {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Accum {
    fn counter(&mut self, name: &str, delta: u64) {
        if let Some(v) = self.counters.get_mut(name) {
            *v += delta;
        } else {
            self.counters.insert(name.to_owned(), delta);
        }
    }

    fn timing(&mut self, name: &str, nanos: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(nanos);
        } else {
            let mut h = Histogram::new();
            h.record(nanos);
            self.histograms.insert(name.to_owned(), h);
        }
    }

    fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            histograms: self.histograms.clone(),
        }
    }
}

/// An in-memory sink that keeps every event; made for tests that assert
/// on decision traces and counters (e.g. the thread-count consistency
/// suite).
#[derive(Debug, Default)]
pub struct CollectRecorder {
    inner: Mutex<(Vec<Event>, Accum)>,
}

impl CollectRecorder {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// All events recorded so far, in order.
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().expect("telemetry poisoned").0.clone()
    }

    /// A snapshot of the counters/histograms recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner.lock().expect("telemetry poisoned").1.snapshot()
    }
}

impl Recorder for CollectRecorder {
    fn event(&self, event: &Event) {
        self.inner
            .lock()
            .expect("telemetry poisoned")
            .0
            .push(event.clone());
    }

    fn counter(&self, name: &str, delta: u64) {
        self.inner
            .lock()
            .expect("telemetry poisoned")
            .1
            .counter(name, delta);
    }

    fn timing(&self, name: &str, nanos: u64) {
        self.inner
            .lock()
            .expect("telemetry poisoned")
            .1
            .timing(name, nanos);
    }
}

struct JsonlInner {
    writer: BufWriter<File>,
    accum: Accum,
    error: Option<io::Error>,
}

/// A sink that streams events as JSON Lines to a file and accumulates
/// counters/histograms for the final snapshot.
///
/// Write errors are latched and surfaced by [`JsonlRecorder::finish`];
/// recording itself never panics or returns `Result`, so hot paths stay
/// clean.
pub struct JsonlRecorder {
    inner: Mutex<JsonlInner>,
}

impl std::fmt::Debug for JsonlRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlRecorder").finish_non_exhaustive()
    }
}

impl JsonlRecorder {
    /// Creates (truncates) the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Fails when the file cannot be created.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlRecorder {
            inner: Mutex::new(JsonlInner {
                writer: BufWriter::new(file),
                accum: Accum::default(),
                error: None,
            }),
        })
    }

    /// Writes the final counters-only `snapshot` line, flushes, and
    /// returns the full [`MetricsSnapshot`] (counters *and* histograms).
    ///
    /// # Errors
    ///
    /// Returns the first write error encountered during the run, if any.
    pub fn finish(self) -> io::Result<MetricsSnapshot> {
        let mut inner = self.inner.into_inner().expect("telemetry poisoned");
        if let Some(e) = inner.error.take() {
            return Err(e);
        }
        let snapshot = inner.accum.snapshot();
        let line = snapshot.to_trace_json().render();
        inner.writer.write_all(line.as_bytes())?;
        inner.writer.write_all(b"\n")?;
        inner.writer.flush()?;
        Ok(snapshot)
    }
}

impl Recorder for JsonlRecorder {
    fn event(&self, event: &Event) {
        let line = event.to_json().render();
        let mut inner = self.inner.lock().expect("telemetry poisoned");
        if inner.error.is_some() {
            return;
        }
        let result = inner
            .writer
            .write_all(line.as_bytes())
            .and_then(|()| inner.writer.write_all(b"\n"));
        if let Err(e) = result {
            inner.error = Some(e);
        }
    }

    fn counter(&self, name: &str, delta: u64) {
        self.inner
            .lock()
            .expect("telemetry poisoned")
            .accum
            .counter(name, delta);
    }

    fn timing(&self, name: &str, nanos: u64) {
        self.inner
            .lock()
            .expect("telemetry poisoned")
            .accum
            .timing(name, nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_recorder_accumulates() {
        let r = CollectRecorder::new();
        r.event(&Event::RunStart { name: "t".into() });
        r.counter("hits", 2);
        r.counter("hits", 3);
        r.timing("ns", 128);
        assert_eq!(r.events().len(), 1);
        let snap = r.snapshot();
        assert_eq!(snap.counter("hits"), 5);
        assert_eq!(snap.histograms["ns"].count(), 1);
    }

    #[test]
    fn jsonl_recorder_writes_parseable_lines() {
        let path = std::env::temp_dir().join("sparcle-telemetry-recorder-test.jsonl");
        let r = JsonlRecorder::create(&path).unwrap();
        r.event(&Event::RunStart { name: "t".into() });
        r.counter("commits", 7);
        let snap = r.finish().unwrap();
        assert_eq!(snap.counter("commits"), 7);

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = crate::json::parse(lines[0]).unwrap();
        assert_eq!(first.get("type").unwrap().as_str(), Some("run_start"));
        let last = crate::json::parse(lines[1]).unwrap();
        assert_eq!(last.get("type").unwrap().as_str(), Some("snapshot"));
        assert_eq!(
            last.get("counters")
                .unwrap()
                .get("commits")
                .unwrap()
                .as_num(),
            Some(7.0)
        );
        std::fs::remove_file(&path).ok();
    }
}
