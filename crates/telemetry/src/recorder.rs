//! The `Recorder` trait and the built-in sinks.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::Path;
use std::sync::Mutex;

use crate::event::Event;
use crate::json::Json;
use crate::metrics::{Histogram, MetricsSnapshot};

/// One recorded event plus its provenance stamp: the monotonic event
/// `id` the recorder assigned and the ids of the earlier events that
/// caused it (DESIGN.md §14).
///
/// Ids start at 1 and increase by 1 per recorded event, in record
/// order. Because the event stream itself is deterministic (byte-
/// identical across runs and evaluator thread counts), the assigned ids
/// are too — provenance rides the existing determinism contract for
/// free.
#[derive(Debug, Clone, PartialEq)]
pub struct StampedEvent {
    /// Monotonic event id, unique within one recorder's stream (`0` is
    /// reserved for "no event").
    pub id: u64,
    /// Ids of earlier events that caused this one, in the order the
    /// emitter supplied them. Empty for exogenous events (arrivals,
    /// element transitions, run starts).
    pub causes: Vec<u64>,
    /// The event itself.
    pub event: Event,
}

impl StampedEvent {
    /// The event's JSON trace line with the provenance keys stamped in:
    /// `"id"` right after `"type"`, `"causes"` appended when non-empty.
    pub fn to_json(&self) -> Json {
        stamp_json(self.event.to_json(), self.id, &self.causes)
    }
}

/// Stamps a trace-line object with its provenance keys: `"id"` right
/// after `"type"`, `"causes"` appended when non-empty.
///
/// Exposed so out-of-tree trace producers (tests, fixtures) can build
/// schema-valid lines for JSON values that are not [`Event`]s — e.g.
/// the final `snapshot` line.
pub fn stamp_json(json: Json, id: u64, causes: &[u64]) -> Json {
    let Json::Obj(mut fields) = json else {
        return json;
    };
    let at = usize::from(!fields.is_empty());
    fields.insert(at, ("id".to_owned(), Json::Num(id as f64)));
    if !causes.is_empty() {
        fields.push((
            "causes".to_owned(),
            Json::Arr(causes.iter().map(|&c| Json::Num(c as f64)).collect()),
        ));
    }
    Json::Obj(fields)
}

/// A telemetry sink.
///
/// Methods take `&self` so one recorder can be shared behind a plain
/// reference; implementations use interior mutability. All methods have
/// no-op defaults, so a sink only implements what it cares about.
///
/// The overhead contract: when the `telemetry` feature is off in the
/// instrumented crates, no `Recorder` is ever constructed or called —
/// call sites compile away entirely (see DESIGN.md §7).
pub trait Recorder {
    /// Records one structured (deterministic) event.
    fn event(&self, event: &Event) {
        self.event_caused(event, &[]);
    }

    /// Records one structured event with its causal back-references and
    /// returns the event id the sink assigned (for use in later
    /// `causes` lists). Sinks that don't track provenance return `0`.
    fn event_caused(&self, _event: &Event, _causes: &[u64]) -> u64 {
        0
    }

    /// Increments a named monotonic counter.
    fn counter(&self, _name: &str, _delta: u64) {}

    /// Records a duration (nanoseconds) into a named histogram.
    ///
    /// Timings are wall-clock dependent and therefore never appear in
    /// the event/trace stream — only in the end-of-run snapshot.
    fn timing(&self, _name: &str, _nanos: u64) {}
}

/// The do-nothing sink. Useful as an explicit default.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

#[derive(Debug, Default)]
struct Accum {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Accum {
    fn counter(&mut self, name: &str, delta: u64) {
        if let Some(v) = self.counters.get_mut(name) {
            *v += delta;
        } else {
            self.counters.insert(name.to_owned(), delta);
        }
    }

    fn timing(&mut self, name: &str, nanos: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(nanos);
        } else {
            let mut h = Histogram::new();
            h.record(nanos);
            self.histograms.insert(name.to_owned(), h);
        }
    }

    fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            histograms: self.histograms.clone(),
        }
    }
}

/// An in-memory sink that keeps every event; made for tests that assert
/// on decision traces and counters (e.g. the thread-count consistency
/// suite).
#[derive(Debug, Default)]
pub struct CollectRecorder {
    inner: Mutex<(Vec<StampedEvent>, Accum)>,
}

impl CollectRecorder {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// All events recorded so far, in order, without their provenance
    /// stamps.
    pub fn events(&self) -> Vec<Event> {
        self.inner
            .lock()
            .expect("telemetry poisoned")
            .0
            .iter()
            .map(|s| s.event.clone())
            .collect()
    }

    /// All events recorded so far with their assigned ids and causes.
    pub fn stamped_events(&self) -> Vec<StampedEvent> {
        self.inner.lock().expect("telemetry poisoned").0.clone()
    }

    /// The full JSONL trace (one stamped line per event, each
    /// newline-terminated) — the in-memory equivalent of what a
    /// [`JsonlRecorder`] would have written, minus the final snapshot
    /// line.
    pub fn render_trace(&self) -> String {
        let inner = self.inner.lock().expect("telemetry poisoned");
        let mut out = String::new();
        for stamped in &inner.0 {
            out.push_str(&stamped.to_json().render());
            out.push('\n');
        }
        out
    }

    /// A snapshot of the counters/histograms recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner.lock().expect("telemetry poisoned").1.snapshot()
    }
}

impl Recorder for CollectRecorder {
    fn event_caused(&self, event: &Event, causes: &[u64]) -> u64 {
        let mut inner = self.inner.lock().expect("telemetry poisoned");
        let id = inner.0.len() as u64 + 1;
        inner.0.push(StampedEvent {
            id,
            causes: causes.to_vec(),
            event: event.clone(),
        });
        id
    }

    fn counter(&self, name: &str, delta: u64) {
        self.inner
            .lock()
            .expect("telemetry poisoned")
            .1
            .counter(name, delta);
    }

    fn timing(&self, name: &str, nanos: u64) {
        self.inner
            .lock()
            .expect("telemetry poisoned")
            .1
            .timing(name, nanos);
    }
}

struct JsonlInner {
    writer: BufWriter<File>,
    accum: Accum,
    error: Option<io::Error>,
    next_id: u64,
}

/// A sink that streams events as JSON Lines to a file and accumulates
/// counters/histograms for the final snapshot.
///
/// Write errors are latched and surfaced by [`JsonlRecorder::finish`];
/// recording itself never panics or returns `Result`, so hot paths stay
/// clean.
pub struct JsonlRecorder {
    inner: Mutex<JsonlInner>,
}

impl std::fmt::Debug for JsonlRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlRecorder").finish_non_exhaustive()
    }
}

impl JsonlRecorder {
    /// Creates (truncates) the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Fails when the file cannot be created.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlRecorder {
            inner: Mutex::new(JsonlInner {
                writer: BufWriter::new(file),
                accum: Accum::default(),
                error: None,
                next_id: 1,
            }),
        })
    }

    /// Writes the final counters-only `snapshot` line (stamped with the
    /// last event id, so every line in the file carries `id`), flushes,
    /// and returns the full [`MetricsSnapshot`] (counters *and*
    /// histograms).
    ///
    /// # Errors
    ///
    /// Returns the first write error encountered during the run, if any.
    pub fn finish(self) -> io::Result<MetricsSnapshot> {
        let mut inner = self.inner.into_inner().expect("telemetry poisoned");
        if let Some(e) = inner.error.take() {
            return Err(e);
        }
        let snapshot = inner.accum.snapshot();
        let line = stamp_json(snapshot.to_trace_json(), inner.next_id, &[]).render();
        inner.writer.write_all(line.as_bytes())?;
        inner.writer.write_all(b"\n")?;
        inner.writer.flush()?;
        Ok(snapshot)
    }
}

impl Recorder for JsonlRecorder {
    fn event_caused(&self, event: &Event, causes: &[u64]) -> u64 {
        let mut inner = self.inner.lock().expect("telemetry poisoned");
        if inner.error.is_some() {
            return 0;
        }
        let id = inner.next_id;
        inner.next_id += 1;
        let line = stamp_json(event.to_json(), id, causes).render();
        let result = inner
            .writer
            .write_all(line.as_bytes())
            .and_then(|()| inner.writer.write_all(b"\n"));
        if let Err(e) = result {
            inner.error = Some(e);
        }
        id
    }

    fn counter(&self, name: &str, delta: u64) {
        self.inner
            .lock()
            .expect("telemetry poisoned")
            .accum
            .counter(name, delta);
    }

    fn timing(&self, name: &str, nanos: u64) {
        self.inner
            .lock()
            .expect("telemetry poisoned")
            .accum
            .timing(name, nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_recorder_accumulates() {
        let r = CollectRecorder::new();
        r.event(&Event::RunStart { name: "t".into() });
        r.counter("hits", 2);
        r.counter("hits", 3);
        r.timing("ns", 128);
        assert_eq!(r.events().len(), 1);
        let snap = r.snapshot();
        assert_eq!(snap.counter("hits"), 5);
        assert_eq!(snap.histograms["ns"].count(), 1);
    }

    #[test]
    fn collect_recorder_stamps_monotonic_ids_and_causes() {
        let r = CollectRecorder::new();
        let a = r.event_caused(&Event::RunStart { name: "a".into() }, &[]);
        let b = r.event_caused(&Event::RunStart { name: "b".into() }, &[a]);
        r.event(&Event::RunStart { name: "c".into() });
        assert_eq!((a, b), (1, 2));
        let stamped = r.stamped_events();
        assert_eq!(
            stamped.iter().map(|s| s.id).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(stamped[1].causes, vec![1]);
        assert!(stamped[2].causes.is_empty());
    }

    #[test]
    fn stamped_json_puts_id_after_type_and_causes_last() {
        let s = StampedEvent {
            id: 9,
            causes: vec![3, 7],
            event: Event::RunStart { name: "t".into() },
        };
        let line = s.to_json().render();
        assert_eq!(
            line,
            r#"{"type":"run_start","id":9,"name":"t","causes":[3,7]}"#
        );
        let no_causes = StampedEvent {
            id: 1,
            causes: vec![],
            event: Event::RunStart { name: "t".into() },
        };
        assert!(no_causes.to_json().get("causes").is_none());
    }

    #[test]
    fn jsonl_recorder_writes_parseable_lines() {
        let path = std::env::temp_dir().join("sparcle-telemetry-recorder-test.jsonl");
        let r = JsonlRecorder::create(&path).unwrap();
        r.event(&Event::RunStart { name: "t".into() });
        r.counter("commits", 7);
        let snap = r.finish().unwrap();
        assert_eq!(snap.counter("commits"), 7);

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = crate::json::parse(lines[0]).unwrap();
        assert_eq!(first.get("type").unwrap().as_str(), Some("run_start"));
        assert_eq!(first.get("id").unwrap().as_num(), Some(1.0));
        let last = crate::json::parse(lines[1]).unwrap();
        assert_eq!(last.get("type").unwrap().as_str(), Some("snapshot"));
        assert_eq!(last.get("id").unwrap().as_num(), Some(2.0));
        assert_eq!(
            last.get("counters")
                .unwrap()
                .get("commits")
                .unwrap()
                .as_num(),
            Some(7.0)
        );
        std::fs::remove_file(&path).ok();
    }
}
