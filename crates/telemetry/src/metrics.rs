//! Counters, fixed-bucket histograms, and the end-of-run snapshot.

use std::collections::BTreeMap;

use crate::json::Json;

/// Number of log2 buckets: values up to `2^63` nanoseconds (~292 years)
/// land in a bucket; everything larger saturates into the last one.
pub const BUCKETS: usize = 64;

/// A fixed-bucket power-of-two histogram.
///
/// Bucket `k` holds values `v` with `ceil(log2(v + 1)) == k`, i.e.
/// bucket 0 is exactly `0`, bucket 1 is `1`, bucket 2 is `2..=3`, bucket
/// 3 is `4..=7`, and so on. Recording is branch-light (`leading_zeros`)
/// and allocation-free, so it is safe to call from hot paths when
/// telemetry is enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded values (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Estimate of the q-quantile (0 ≤ q ≤ 1) by linear interpolation
    /// across the holding bucket's value range, clamped to the observed
    /// `[min, max]`.
    ///
    /// The clamp makes degenerate cases exact: a single-sample
    /// histogram returns that sample for every `q`, and `q = 1` returns
    /// the true maximum rather than the bucket's upper bound. Within a
    /// populated bucket the estimate is still only bucket-resolution
    /// accurate (a factor of two) — fine for the order-of-magnitude
    /// latency questions telemetry answers.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (k, n) in self.buckets.iter().enumerate() {
            if *n == 0 {
                continue;
            }
            if seen + n >= rank {
                // Bucket k covers [2^(k-1), 2^k - 1] (bucket 0 is just
                // 0). Interpolate by the rank's position within the
                // bucket's occupants.
                let lower = if k == 0 { 0u64 } else { 1u64 << (k - 1) };
                let upper = if k == 0 {
                    0u64
                } else {
                    (1u64 << k.min(63)) - 1
                };
                let frac = (rank - seen) as f64 / *n as f64;
                let est = lower as f64 + frac * (upper - lower) as f64;
                return Some((est.round() as u64).clamp(self.min, self.max));
            }
            seen += n;
        }
        Some(self.max)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::Num(self.count as f64)),
            ("sum", Json::Num(self.sum as f64)),
            ("min", Json::Num(self.min().unwrap_or(0) as f64)),
            ("max", Json::Num(self.max().unwrap_or(0) as f64)),
            ("mean", Json::num(self.mean().unwrap_or(0.0))),
            ("p50", Json::Num(self.quantile(0.50).unwrap_or(0) as f64)),
            ("p99", Json::Num(self.quantile(0.99).unwrap_or(0) as f64)),
        ])
    }
}

/// A frozen view of all counters and histograms at the end of a run.
///
/// The bench harness embeds this in its result JSON; the JSONL sink
/// writes it as the final `snapshot` trace line (counters only — see
/// [`MetricsSnapshot::to_trace_json`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Named monotonic counters, sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// Named histograms (timings in nanoseconds by convention).
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Value of a counter, zero when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Full JSON form: counters plus histogram summaries. This goes
    /// into result JSON files, **not** the trace stream (histograms
    /// carry wall-clock data and would break trace determinism).
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Deterministic trace-line form: `type: "snapshot"` plus counters
    /// only. Counters are pure function of the input (cache hits,
    /// commits, invalidations...), so this line stays bit-identical
    /// across runs and thread counts.
    pub fn to_trace_json(&self) -> Json {
        Json::obj([
            ("type", Json::Str("snapshot".to_owned())),
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Renders a human-readable summary table (for `--summary`).
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        out.push_str("== telemetry summary ==\n");
        if !self.counters.is_empty() {
            let width = self
                .counters
                .keys()
                .map(|k| k.len())
                .max()
                .unwrap_or(0)
                .max(7);
            out.push_str(&format!("{:<width$}  {:>12}\n", "counter", "value"));
            for (name, value) in &self.counters {
                out.push_str(&format!("{name:<width$}  {value:>12}\n"));
            }
        }
        if !self.histograms.is_empty() {
            let width = self
                .histograms
                .keys()
                .map(|k| k.len())
                .max()
                .unwrap_or(0)
                .max(9);
            out.push_str(&format!(
                "{:<width$}  {:>8} {:>12} {:>12} {:>12} {:>12}\n",
                "histogram", "count", "mean", "p50<=", "p99<=", "max"
            ));
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "{name:<width$}  {:>8} {:>12.1} {:>12} {:>12} {:>12}\n",
                    h.count(),
                    h.mean().unwrap_or(0.0),
                    h.quantile(0.50).unwrap_or(0),
                    h.quantile(0.99).unwrap_or(0),
                    h.max().unwrap_or(0),
                ));
            }
        }
        if self.counters.is_empty() && self.histograms.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 1025);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        // p50 of 8 values -> 4th smallest (3): rank 4 tops out bucket
        // [2,3], interpolating to its upper bound.
        assert_eq!(h.quantile(0.5), Some(3));
        // p100 lands in 1000's bucket [512,1023]; the [min,max] clamp
        // pulls the bucket bound back to the true maximum.
        assert_eq!(h.quantile(1.0), Some(1000));
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        a.record(5);
        let mut b = Histogram::new();
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(100));
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut a = Histogram::new();
        a.record(42);
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before);

        let mut empty = Histogram::new();
        empty.merge(&before);
        assert_eq!(empty, before);

        let mut both = Histogram::new();
        both.merge(&Histogram::new());
        assert_eq!(both.count(), 0);
        assert_eq!(both.quantile(0.5), None);
        assert_eq!(both.min(), None);
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let mut h = Histogram::new();
        h.record(5);
        // The [min,max] clamp collapses the bucket range [4,7] to the
        // one observed value, for every q.
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(5), "q={q}");
        }
    }

    #[test]
    fn quantile_interpolates_within_and_across_buckets() {
        // Two samples sharing bucket [4,7]: p50 interpolates halfway
        // (5.5 -> 6), p100 reaches the bucket's upper bound.
        let mut h = Histogram::new();
        h.record(4);
        h.record(7);
        assert_eq!(h.quantile(0.5), Some(6));
        assert_eq!(h.quantile(1.0), Some(7));

        // Samples in distant buckets: the quantile jumps buckets rather
        // than interpolating between them.
        let mut far = Histogram::new();
        far.record(1);
        far.record(1000);
        assert_eq!(far.quantile(0.5), Some(1));
        assert_eq!(far.quantile(1.0), Some(1000));
    }

    #[test]
    fn merged_percentiles_match_combined_population() {
        let mut a = Histogram::new();
        for v in [0u64, 1, 2, 3] {
            a.record(v);
        }
        let mut b = Histogram::new();
        b.record(1000);
        b.record(2000);
        a.merge(&b);
        assert_eq!(a.count(), 6);
        assert_eq!(a.sum(), 3006);
        assert_eq!(a.min(), Some(0));
        assert_eq!(a.max(), Some(2000));
        // rank 3 of 6 -> bucket [2,3] upper half.
        assert_eq!(a.quantile(0.5), Some(3));
        // p100 clamps bucket [1024,2047] down to the true max.
        assert_eq!(a.quantile(1.0), Some(2000));
    }

    #[test]
    fn snapshot_trace_json_is_counters_only() {
        let mut s = MetricsSnapshot::default();
        s.counters.insert("z.commits".into(), 3);
        s.counters.insert("a.hits".into(), 9);
        s.histograms.insert("row_fill_ns".into(), Histogram::new());
        let trace = s.to_trace_json();
        assert_eq!(trace.get("type").unwrap().as_str(), Some("snapshot"));
        assert!(trace.get("histograms").is_none());
        // BTreeMap ordering: "a.hits" before "z.commits".
        let rendered = trace.render();
        assert!(rendered.find("a.hits").unwrap() < rendered.find("z.commits").unwrap());
    }

    #[test]
    fn summary_renders_counters_and_histograms() {
        let mut s = MetricsSnapshot::default();
        s.counters.insert("gamma_cache.hits".into(), 42);
        let mut h = Histogram::new();
        h.record(10);
        s.histograms.insert("row_fill_ns".into(), h);
        let text = s.render_summary();
        assert!(text.contains("gamma_cache.hits"));
        assert!(text.contains("42"));
        assert!(text.contains("row_fill_ns"));
    }

    #[test]
    fn empty_quantile_is_none() {
        assert_eq!(Histogram::new().quantile(0.5), None);
        assert_eq!(Histogram::new().mean(), None);
    }
}
