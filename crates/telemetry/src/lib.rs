//! # sparcle-telemetry
//!
//! Zero-dependency structured telemetry for the SPARCLE workspace:
//! scheduler decision tracing, counters, fixed-bucket histograms,
//! hierarchical timed spans, and JSONL export. See DESIGN.md §7 for the
//! architecture and the overhead contract, §9 for the span model.
//!
//! The crate splits telemetry into two streams with different
//! guarantees:
//!
//! * **Events** ([`Event`]) are deterministic — pure functions of the
//!   input and seed, bit-identical across runs and worker-thread
//!   counts. They form the JSONL trace.
//! * **Metrics** (counters + histograms, [`MetricsSnapshot`]) may carry
//!   wall-clock timings. Counters are deterministic and appear in the
//!   final trace line; histograms never enter the trace.
//!
//! **Spans** ([`Span`], [`SpanTracker`]) straddle the two: their
//! open/close *structure* (ids, parents, names, ordering) is
//! deterministic, but their timestamps are wall-clock. They are
//! therefore opt-in — only traces recorded with a [`SpanTracker`]
//! attached contain `span_open`/`span_close` lines, and `sparcle-trace
//! diff` compares traces with the wall-clock keys stripped.
//!
//! Sinks implement [`Recorder`]. The instrumented crates (`sparcle-core`,
//! `sparcle-sim`) gate every call site behind their own `telemetry`
//! cargo feature, so with the feature off this crate is not even linked.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod schema;
pub mod span;
pub mod window;

pub use event::{Candidate, CommitRecord, CtTieBreak, Event, HostTieBreak, PlacementDecision};
pub use json::{parse as parse_json, Json, ParseError};
pub use metrics::{Histogram, MetricsSnapshot};
pub use recorder::{
    stamp_json, CollectRecorder, JsonlRecorder, NoopRecorder, Recorder, StampedEvent,
};
pub use span::{Span, SpanTracker};
pub use window::{RateEstimator, WindowedCounter, WindowedHistogram};

use std::time::Instant;

/// A scope timer: measures monotonic elapsed time from construction and
/// records it into the recorder's named histogram on
/// [`ScopeTimer::finish`] or drop.
///
/// This is the metrics-side sibling of the event-side [`Span`]: a
/// `ScopeTimer` feeds a histogram (aggregate, no structure), a [`Span`]
/// emits paired `span_open`/`span_close` events (per-instance, with
/// parent/child structure).
///
/// ```
/// use sparcle_telemetry::{CollectRecorder, ScopeTimer};
/// let recorder = CollectRecorder::new();
/// {
///     let _timer = ScopeTimer::start(&recorder, "work_ns");
///     // ... timed work ...
/// }
/// assert_eq!(recorder.snapshot().histograms["work_ns"].count(), 1);
/// ```
pub struct ScopeTimer<'a> {
    recorder: &'a dyn Recorder,
    name: &'static str,
    start: Instant,
    done: bool,
}

impl std::fmt::Debug for ScopeTimer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScopeTimer")
            .field("name", &self.name)
            .finish()
    }
}

impl<'a> ScopeTimer<'a> {
    /// Starts timing now.
    pub fn start(recorder: &'a dyn Recorder, name: &'static str) -> Self {
        ScopeTimer {
            recorder,
            name,
            start: Instant::now(),
            done: false,
        }
    }

    /// Stops the timer early and records the elapsed nanoseconds.
    pub fn finish(mut self) {
        self.record();
    }

    fn record(&mut self) {
        if !self.done {
            self.done = true;
            let nanos = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.recorder.timing(self.name, nanos);
        }
    }
}

impl Drop for ScopeTimer<'_> {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_timer_records_once() {
        let r = CollectRecorder::new();
        let timer = ScopeTimer::start(&r, "t_ns");
        timer.finish();
        {
            let _implicit = ScopeTimer::start(&r, "t_ns");
        }
        assert_eq!(r.snapshot().histograms["t_ns"].count(), 2);
    }
}
