//! Property-based tests for workload generation and scenario files.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sparcle_workloads::scenario_file::{parse_scenario, write_scenario, FileScenario};
use sparcle_workloads::{BottleneckCase, GraphKind, ScenarioConfig, TopologyKind};

fn arb_config() -> impl Strategy<Value = ScenarioConfig> {
    let case = prop_oneof![
        Just(BottleneckCase::NcpBottleneck),
        Just(BottleneckCase::LinkBottleneck),
        Just(BottleneckCase::Balanced),
        Just(BottleneckCase::MemoryBottleneck),
    ];
    let graph = prop_oneof![
        (1usize..5).prop_map(|stages| GraphKind::Linear { stages }),
        Just(GraphKind::Diamond),
        (1usize..4).prop_map(|cts| GraphKind::Random { cts }),
    ];
    let topology = prop_oneof![
        Just(TopologyKind::Star),
        Just(TopologyKind::Linear),
        Just(TopologyKind::FullyConnected),
    ];
    (case, graph, topology, 3usize..8, 0.0f64..0.2).prop_map(
        |(case, graph, topology, ncps, link_failure)| {
            let mut cfg = ScenarioConfig::new(case, graph, topology);
            cfg.ncps = ncps;
            cfg.link_failure = link_failure;
            cfg
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every sampled scenario is well-formed: connected network, valid
    /// pins, graph invariants.
    #[test]
    fn sampled_scenarios_are_well_formed(cfg in arb_config(), seed in 0u64..100_000) {
        let s = cfg.sample(&mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert!(s.network.all_reachable_from(sparcle_model::NcpId::new(0)));
        s.app.check_against_network(&s.network).unwrap();
        prop_assert!(!s.app.graph().sources().is_empty());
        prop_assert!(!s.app.graph().sinks().is_empty());
        prop_assert_eq!(s.network.ncp_count(), cfg.ncps);
    }

    /// Scenario files round-trip: write → parse reproduces the network
    /// and applications exactly.
    #[test]
    fn scenario_files_round_trip(cfg in arb_config(), seed in 0u64..100_000) {
        let s = cfg.sample(&mut StdRng::seed_from_u64(seed)).unwrap();
        let file = FileScenario {
            network: s.network.clone(),
            apps: vec![(s.app.graph().name().to_owned(), s.app.clone())],
        };
        let text = write_scenario(&file);
        let parsed = parse_scenario(&text)
            .unwrap_or_else(|e| panic!("round-trip parse failed: {e}\n{text}"));
        prop_assert_eq!(&parsed.network, &s.network);
        prop_assert_eq!(parsed.apps.len(), 1);
        prop_assert_eq!(parsed.apps[0].1.graph(), s.app.graph());
        prop_assert_eq!(parsed.apps[0].1.qoe(), s.app.qoe());
        prop_assert_eq!(parsed.apps[0].1.pinned(), s.app.pinned());
    }

    /// Sampling with the same seed is bit-identical; different seeds
    /// (almost always) differ.
    #[test]
    fn sampling_determinism(cfg in arb_config(), seed in 0u64..100_000) {
        let a = cfg.sample(&mut StdRng::seed_from_u64(seed)).unwrap();
        let b = cfg.sample(&mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(a.network, b.network);
        prop_assert_eq!(a.app.graph(), b.app.graph());
    }
}
