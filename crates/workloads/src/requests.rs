//! Request streams for the admission service plane.
//!
//! The service front-end (DESIGN.md §13) does not consume raw arrival
//! timestamps: it consumes *requests* — placement submissions to
//! coalesce into micro-batches, interleaved with read-only what-if
//! probes answered from the state snapshot. This module adapts the
//! seeded arrival generators of [`crate::traces`] into exactly that
//! shape: each arrival becomes a [`ServiceRequest`] tagged with its
//! kind, with every `probe_every`-th arrival turned into a probe.
//!
//! The stream is a thin, lazy wrapper over [`ArrivalEvents`], so it
//! inherits its guarantees: deterministic per `(trace, horizon, seed)`,
//! sorted non-decreasing times inside `[0, horizon)`, and properly
//! fused after exhaustion.

use crate::traces::{ArrivalEvents, ArrivalTrace};

/// What a [`ServiceRequest`] asks the admission service to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Submit an application for placement (queued into the current
    /// micro-batch window).
    Admit,
    /// Ask a read-only what-if/γ-probe question against the service's
    /// immutable state snapshot (never queued, never batched).
    Probe,
}

/// One timestamped request for the admission service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceRequest {
    /// Arrival timestamp in `[0, horizon)`.
    pub time: f64,
    /// Zero-based request sequence number within the stream.
    pub index: u64,
    /// Submission or probe.
    pub kind: RequestKind,
}

/// Lazy, seeded stream of [`ServiceRequest`]s over an [`ArrivalTrace`].
///
/// Obtained from [`RequestStream::new`]; configure the probe cadence
/// with [`RequestStream::with_probe_every`].
#[derive(Debug, Clone)]
pub struct RequestStream {
    arrivals: ArrivalEvents,
    probe_every: u64,
}

impl RequestStream {
    /// A request stream over `trace` with no probes mixed in.
    ///
    /// # Panics
    ///
    /// Panics on non-finite/negative rates or horizon (see
    /// [`ArrivalTrace::events`]).
    pub fn new(trace: ArrivalTrace, horizon: f64, seed: u64) -> Self {
        RequestStream {
            arrivals: trace.events(horizon, seed),
            probe_every: 0,
        }
    }

    /// Turns every `n`-th request (1-based positions `n`, `2n`, …) into
    /// a [`RequestKind::Probe`]; `0` disables probes entirely.
    #[must_use]
    pub fn with_probe_every(mut self, n: u64) -> Self {
        self.probe_every = n;
        self
    }

    /// The horizon beyond which no requests are produced.
    pub fn horizon(&self) -> f64 {
        self.arrivals.horizon()
    }
}

impl Iterator for RequestStream {
    type Item = ServiceRequest;

    fn next(&mut self) -> Option<ServiceRequest> {
        let event = self.arrivals.next()?;
        let kind = if self.probe_every > 0 && (event.index + 1).is_multiple_of(self.probe_every) {
            RequestKind::Probe
        } else {
            RequestKind::Admit
        };
        Some(ServiceRequest {
            time: event.time,
            index: event.index,
            kind,
        })
    }
}

impl std::iter::FusedIterator for RequestStream {}

#[cfg(test)]
mod tests {
    use super::*;

    fn flash_crowd() -> ArrivalTrace {
        ArrivalTrace::FlashCrowd {
            rate: 1.0,
            burst_rate: 8.0,
            burst_start: 20.0,
            burst_end: 40.0,
        }
    }

    #[test]
    fn stream_is_deterministic_and_in_horizon() {
        let a: Vec<_> = RequestStream::new(flash_crowd(), 50.0, 7)
            .with_probe_every(4)
            .collect();
        let b: Vec<_> = RequestStream::new(flash_crowd(), 50.0, 7)
            .with_probe_every(4)
            .collect();
        assert_eq!(a, b, "same seed ⇒ identical request stream");
        assert!(!a.is_empty());
        for (i, request) in a.iter().enumerate() {
            assert_eq!(request.index, i as u64);
            assert!((0.0..50.0).contains(&request.time));
        }
        assert!(a.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn probe_cadence_marks_every_nth_request() {
        let requests: Vec<_> = RequestStream::new(flash_crowd(), 50.0, 7)
            .with_probe_every(3)
            .collect();
        for request in &requests {
            let expected = if (request.index + 1).is_multiple_of(3) {
                RequestKind::Probe
            } else {
                RequestKind::Admit
            };
            assert_eq!(request.kind, expected, "request {}", request.index);
        }
        let probes = requests
            .iter()
            .filter(|r| r.kind == RequestKind::Probe)
            .count();
        assert_eq!(probes, requests.len() / 3);
    }

    #[test]
    fn no_probes_by_default_and_stream_fuses() {
        let mut stream = RequestStream::new(flash_crowd(), 30.0, 9);
        assert!(stream.all(|r| r.kind == RequestKind::Admit));
        // `all` exhausted the stream; a fused stream stays exhausted.
        assert_eq!(stream.next(), None);
        assert_eq!(stream.next(), None);
    }
}
