//! Plain-text experiment scenario files.
//!
//! The paper's emulator "first reads the experiment scenario file
//! describing NCPs and their CPU capacities, links and their
//! bandwidths, … and the CT/TT requirements" (§V-A). This module
//! implements that: a line-oriented format describing one network and
//! one or more applications, with a parser ([`parse_scenario`]) and a
//! writer ([`write_scenario`]) that round-trip.
//!
//! # Format
//!
//! ```text
//! # comments and blank lines are ignored
//! network <name>                 # optional display name
//! ncp  <name> cpu=<MHz> [memory=<MB>] [failure=<p>]
//! link <name> <ncp> <ncp> bw=<Mbps> [failure=<p>] [directed]
//!
//! app  <name> best-effort priority=<f> [availability=<p>]
//! app  <name> guaranteed rate=<f> availability=<p>
//! ct   <name> [cpu=<f>] [memory=<f>] [host=<ncp>]
//! tt   <name> <ct> <ct> bits=<f>
//! ```
//!
//! `ct`/`tt` lines belong to the most recent `app` line. `host=` pins a
//! CT to an NCP (sources and sinks must be pinned).
//!
//! # Examples
//!
//! ```
//! # use sparcle_workloads::scenario_file::parse_scenario;
//! let text = "
//! ncp gw cpu=800
//! ncp edge cpu=3000
//! link wifi gw edge bw=40
//! app demo best-effort priority=1
//! ct cam host=gw
//! ct work cpu=1500
//! ct out host=edge
//! tt raw cam work bits=8
//! tt res work out bits=0.05
//! ";
//! let scenario = parse_scenario(text)?;
//! assert_eq!(scenario.network.ncp_count(), 2);
//! assert_eq!(scenario.apps.len(), 1);
//! # Ok::<(), sparcle_workloads::scenario_file::ScenarioParseError>(())
//! ```

use sparcle_model::{
    Application, CtId, LinkDirection, ModelError, NcpId, Network, NetworkBuilder, QoeClass,
    ResourceVec, TaskGraphBuilder,
};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A parsed scenario: one network plus the applications to schedule.
#[derive(Debug, Clone)]
pub struct FileScenario {
    /// The dispersed computing network.
    pub network: Network,
    /// Applications in file order, with their names.
    pub apps: Vec<(String, Application)>,
}

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioParseError {
    /// 1-based line of the offending input (0 for end-of-input errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ScenarioParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario line {}: {}", self.line, self.message)
    }
}

impl Error for ScenarioParseError {}

fn err(line: usize, message: impl Into<String>) -> ScenarioParseError {
    ScenarioParseError {
        line,
        message: message.into(),
    }
}

fn model_err(line: usize, e: ModelError) -> ScenarioParseError {
    err(line, e.to_string())
}

/// Splits `key=value` tokens and flags out of a token stream.
fn parse_kv<'a>(
    tokens: &[&'a str],
    line: usize,
) -> Result<(BTreeMap<&'a str, &'a str>, Vec<&'a str>), ScenarioParseError> {
    let mut kv = BTreeMap::new();
    let mut flags = Vec::new();
    for &tok in tokens {
        match tok.split_once('=') {
            Some((k, v)) => {
                if kv.insert(k, v).is_some() {
                    return Err(err(line, format!("duplicate key `{k}`")));
                }
            }
            None => flags.push(tok),
        }
    }
    Ok((kv, flags))
}

fn parse_f64(
    kv: &BTreeMap<&str, &str>,
    key: &str,
    line: usize,
) -> Result<Option<f64>, ScenarioParseError> {
    match kv.get(key) {
        None => Ok(None),
        Some(v) => v
            .parse::<f64>()
            .map(Some)
            .map_err(|_| err(line, format!("`{key}` is not a number: {v}"))),
    }
}

/// One application under construction.
struct AppDraft {
    name: String,
    qoe: QoeClass,
    line: usize,
    builder: TaskGraphBuilder,
    ct_names: BTreeMap<String, CtId>,
    pins: Vec<(CtId, NcpId)>,
}

impl AppDraft {
    fn finish(self) -> Result<(String, Application), ScenarioParseError> {
        let graph = self.builder.build().map_err(|e| model_err(self.line, e))?;
        let app =
            Application::new(graph, self.qoe, self.pins).map_err(|e| model_err(self.line, e))?;
        Ok((self.name, app))
    }
}

/// Parses a scenario file.
///
/// # Errors
///
/// Returns a [`ScenarioParseError`] naming the offending line for any
/// syntactic or semantic problem (unknown directive, dangling
/// reference, invalid quantity, malformed graph).
pub fn parse_scenario(text: &str) -> Result<FileScenario, ScenarioParseError> {
    let mut nb = NetworkBuilder::new();
    let mut ncp_names: BTreeMap<String, NcpId> = BTreeMap::new();
    let mut network: Option<Network> = None;
    let mut apps: Vec<(String, Application)> = Vec::new();
    let mut draft: Option<AppDraft> = None;

    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = content.split_whitespace().collect();
        match tokens[0] {
            "network" => {
                if network.is_some() {
                    return Err(err(line, "network line must precede app lines"));
                }
                let name = *tokens
                    .get(1)
                    .ok_or_else(|| err(line, "network needs a name"))?;
                nb.name(name);
            }
            "ncp" => {
                if network.is_some() {
                    return Err(err(line, "ncp lines must precede app lines"));
                }
                let name = *tokens.get(1).ok_or_else(|| err(line, "ncp needs a name"))?;
                let (kv, flags) = parse_kv(&tokens[2..], line)?;
                if !flags.is_empty() {
                    return Err(err(line, format!("unknown flag `{}`", flags[0])));
                }
                let cpu =
                    parse_f64(&kv, "cpu", line)?.ok_or_else(|| err(line, "ncp needs cpu=<MHz>"))?;
                let mut cap = ResourceVec::cpu(cpu);
                if let Some(mem) = parse_f64(&kv, "memory", line)? {
                    cap.set(sparcle_model::ResourceKind::Memory, mem);
                }
                let failure = parse_f64(&kv, "failure", line)?.unwrap_or(0.0);
                let id = nb
                    .add_ncp_with_failure(name, cap, failure)
                    .map_err(|e| model_err(line, e))?;
                if ncp_names.insert(name.to_owned(), id).is_some() {
                    return Err(err(line, format!("duplicate ncp `{name}`")));
                }
            }
            "link" => {
                if network.is_some() {
                    return Err(err(line, "link lines must precede app lines"));
                }
                let name = *tokens
                    .get(1)
                    .ok_or_else(|| err(line, "link needs a name"))?;
                let a = *tokens
                    .get(2)
                    .ok_or_else(|| err(line, "link needs two NCPs"))?;
                let b = *tokens
                    .get(3)
                    .ok_or_else(|| err(line, "link needs two NCPs"))?;
                let (kv, flags) = parse_kv(&tokens[4..], line)?;
                let direction = match flags.as_slice() {
                    [] => LinkDirection::Undirected,
                    ["directed"] => LinkDirection::Directed,
                    other => return Err(err(line, format!("unknown flag `{}`", other[0]))),
                };
                let bw =
                    parse_f64(&kv, "bw", line)?.ok_or_else(|| err(line, "link needs bw=<Mbps>"))?;
                let failure = parse_f64(&kv, "failure", line)?.unwrap_or(0.0);
                let a = *ncp_names
                    .get(a)
                    .ok_or_else(|| err(line, format!("unknown ncp `{a}`")))?;
                let b = *ncp_names
                    .get(b)
                    .ok_or_else(|| err(line, format!("unknown ncp `{b}`")))?;
                nb.add_link_full(name, a, b, bw, direction, failure)
                    .map_err(|e| model_err(line, e))?;
            }
            "app" => {
                if network.is_none() {
                    network = Some(
                        std::mem::take(&mut nb)
                            .build()
                            .map_err(|e| model_err(line, e))?,
                    );
                }
                if let Some(done) = draft.take() {
                    apps.push(done.finish()?);
                }
                let name = *tokens.get(1).ok_or_else(|| err(line, "app needs a name"))?;
                let kind = *tokens
                    .get(2)
                    .ok_or_else(|| err(line, "app needs best-effort|guaranteed"))?;
                let (kv, _) = parse_kv(&tokens[3..], line)?;
                let qoe = match kind {
                    "best-effort" => QoeClass::BestEffort {
                        priority: parse_f64(&kv, "priority", line)?.unwrap_or(1.0),
                        availability: parse_f64(&kv, "availability", line)?,
                    },
                    "guaranteed" => QoeClass::GuaranteedRate {
                        min_rate: parse_f64(&kv, "rate", line)?
                            .ok_or_else(|| err(line, "guaranteed needs rate=<f>"))?,
                        min_rate_availability: parse_f64(&kv, "availability", line)?
                            .ok_or_else(|| err(line, "guaranteed needs availability=<p>"))?,
                    },
                    other => {
                        return Err(err(line, format!("unknown app kind `{other}`")));
                    }
                };
                let mut builder = TaskGraphBuilder::new();
                builder.name(name);
                draft = Some(AppDraft {
                    name: name.to_owned(),
                    qoe,
                    line,
                    builder,
                    ct_names: BTreeMap::new(),
                    pins: Vec::new(),
                });
            }
            "ct" => {
                let d = draft
                    .as_mut()
                    .ok_or_else(|| err(line, "ct outside of an app block"))?;
                let name = *tokens.get(1).ok_or_else(|| err(line, "ct needs a name"))?;
                let (kv, _) = parse_kv(&tokens[2..], line)?;
                let mut req = ResourceVec::new();
                if let Some(cpu) = parse_f64(&kv, "cpu", line)? {
                    req.set(sparcle_model::ResourceKind::Cpu, cpu);
                }
                if let Some(mem) = parse_f64(&kv, "memory", line)? {
                    req.set(sparcle_model::ResourceKind::Memory, mem);
                }
                let id = d.builder.add_ct(name, req);
                if d.ct_names.insert(name.to_owned(), id).is_some() {
                    return Err(err(line, format!("duplicate ct `{name}`")));
                }
                if let Some(host) = kv.get("host") {
                    let ncp = *ncp_names
                        .get(*host)
                        .ok_or_else(|| err(line, format!("unknown ncp `{host}`")))?;
                    d.pins.push((id, ncp));
                }
            }
            "tt" => {
                let d = draft
                    .as_mut()
                    .ok_or_else(|| err(line, "tt outside of an app block"))?;
                let name = *tokens.get(1).ok_or_else(|| err(line, "tt needs a name"))?;
                let from = *tokens.get(2).ok_or_else(|| err(line, "tt needs two CTs"))?;
                let to = *tokens.get(3).ok_or_else(|| err(line, "tt needs two CTs"))?;
                let (kv, _) = parse_kv(&tokens[4..], line)?;
                let bits =
                    parse_f64(&kv, "bits", line)?.ok_or_else(|| err(line, "tt needs bits=<f>"))?;
                let from = *d
                    .ct_names
                    .get(from)
                    .ok_or_else(|| err(line, format!("unknown ct `{from}`")))?;
                let to = *d
                    .ct_names
                    .get(to)
                    .ok_or_else(|| err(line, format!("unknown ct `{to}`")))?;
                d.builder
                    .add_tt(name, from, to, bits)
                    .map_err(|e| model_err(line, e))?;
            }
            other => return Err(err(line, format!("unknown directive `{other}`"))),
        }
    }
    if let Some(done) = draft.take() {
        apps.push(done.finish()?);
    }
    let network = match network {
        Some(n) => n,
        None => nb.build().map_err(|e| model_err(0, e))?,
    };
    Ok(FileScenario { network, apps })
}

/// Serializes a scenario back to the file format (round-trips through
/// [`parse_scenario`]).
pub fn write_scenario(scenario: &FileScenario) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let net = &scenario.network;
    if !net.name().is_empty() {
        writeln!(out, "network {}", net.name()).expect("string write");
    }
    for id in net.ncp_ids() {
        let ncp = net.ncp(id);
        write!(
            out,
            "ncp {} cpu={}",
            ncp.name(),
            ncp.capacity().amount(sparcle_model::ResourceKind::Cpu)
        )
        .expect("string write");
        let mem = ncp.capacity().amount(sparcle_model::ResourceKind::Memory);
        if mem > 0.0 {
            write!(out, " memory={mem}").expect("string write");
        }
        if ncp.failure_probability() > 0.0 {
            write!(out, " failure={}", ncp.failure_probability()).expect("string write");
        }
        out.push('\n');
    }
    for id in net.link_ids() {
        let link = net.link(id);
        write!(
            out,
            "link {} {} {} bw={}",
            link.name(),
            net.ncp(link.a()).name(),
            net.ncp(link.b()).name(),
            link.bandwidth()
        )
        .expect("string write");
        if link.failure_probability() > 0.0 {
            write!(out, " failure={}", link.failure_probability()).expect("string write");
        }
        if link.direction() == LinkDirection::Directed {
            out.push_str(" directed");
        }
        out.push('\n');
    }
    for (name, app) in &scenario.apps {
        out.push('\n');
        match app.qoe() {
            QoeClass::BestEffort {
                priority,
                availability,
            } => {
                write!(out, "app {name} best-effort priority={priority}").expect("string write");
                if let Some(a) = availability {
                    write!(out, " availability={a}").expect("string write");
                }
                out.push('\n');
            }
            QoeClass::GuaranteedRate {
                min_rate,
                min_rate_availability,
            } => {
                writeln!(
                    out,
                    "app {name} guaranteed rate={min_rate} availability={min_rate_availability}"
                )
                .expect("string write");
            }
        }
        let graph = app.graph();
        for ct in graph.ct_ids() {
            let c = graph.ct(ct);
            write!(out, "ct {}", c.name()).expect("string write");
            let cpu = c.requirement().amount(sparcle_model::ResourceKind::Cpu);
            if cpu > 0.0 {
                write!(out, " cpu={cpu}").expect("string write");
            }
            let mem = c.requirement().amount(sparcle_model::ResourceKind::Memory);
            if mem > 0.0 {
                write!(out, " memory={mem}").expect("string write");
            }
            if let Some(host) = app.pinned_host(ct) {
                write!(out, " host={}", net.ncp(host).name()).expect("string write");
            }
            out.push('\n');
        }
        for tt in graph.tt_ids() {
            let t = graph.tt(tt);
            writeln!(
                out,
                "tt {} {} {} bits={}",
                t.name(),
                graph.ct(t.from()).name(),
                graph.ct(t.to()).name(),
                t.bits_per_unit()
            )
            .expect("string write");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "
# A small deployment.
ncp gw cpu=800 failure=0.01
ncp edge cpu=3000 memory=512
link wifi gw edge bw=40 failure=0.02

app demo best-effort priority=2 availability=0.9
ct cam host=gw
ct work cpu=1500 memory=64
ct out host=edge
tt raw cam work bits=8
tt res work out bits=0.05

app guard guaranteed rate=1.5 availability=0.99
ct src host=edge
ct crunch cpu=300
ct dst host=gw
tt in src crunch bits=2
tt outt crunch dst bits=1
";

    #[test]
    fn parses_sample() {
        let s = parse_scenario(SAMPLE).unwrap();
        assert_eq!(s.network.ncp_count(), 2);
        assert_eq!(s.network.link_count(), 1);
        assert_eq!(s.apps.len(), 2);
        assert_eq!(s.apps[0].0, "demo");
        assert!(matches!(
            s.apps[0].1.qoe(),
            QoeClass::BestEffort { priority, availability: Some(a) }
                if *priority == 2.0 && *a == 0.9
        ));
        assert!(matches!(
            s.apps[1].1.qoe(),
            QoeClass::GuaranteedRate { min_rate, .. } if *min_rate == 1.5
        ));
        // Memory parsed on both sides.
        let edge = s.network.ncp(NcpId::new(1));
        assert_eq!(
            edge.capacity().amount(sparcle_model::ResourceKind::Memory),
            512.0
        );
        let work = s.apps[0].1.graph().ct(CtId::new(1));
        assert_eq!(
            work.requirement()
                .amount(sparcle_model::ResourceKind::Memory),
            64.0
        );
    }

    #[test]
    fn round_trips() {
        let a = parse_scenario(SAMPLE).unwrap();
        let text = write_scenario(&a);
        let b = parse_scenario(&text).unwrap();
        assert_eq!(a.network, b.network);
        assert_eq!(a.apps.len(), b.apps.len());
        for ((na, aa), (nb_, ab)) in a.apps.iter().zip(&b.apps) {
            assert_eq!(na, nb_);
            assert_eq!(aa.graph(), ab.graph());
            assert_eq!(aa.qoe(), ab.qoe());
            assert_eq!(aa.pinned(), ab.pinned());
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "ncp a cpu=1\nncp b cpu=2\nlink l a c bw=1\n";
        let e = parse_scenario(bad).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("unknown ncp"), "{}", e.message);
    }

    #[test]
    fn rejects_unknown_directive() {
        let e = parse_scenario("frobnicate x\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("unknown directive"));
    }

    #[test]
    fn rejects_ct_outside_app() {
        let e = parse_scenario("ncp a cpu=1\nct lonely\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn rejects_duplicate_keys_and_names() {
        let e = parse_scenario("ncp a cpu=1 cpu=2\n").unwrap_err();
        assert!(e.message.contains("duplicate key"));
        let e = parse_scenario("ncp a cpu=1\nncp a cpu=2\n").unwrap_err();
        assert!(e.message.contains("duplicate ncp"));
    }

    #[test]
    fn rejects_unpinned_endpoint_with_app_line() {
        let text = "ncp a cpu=1\napp x best-effort priority=1\nct s\nct t cpu=1\ntt e s t bits=1\n";
        let e = parse_scenario(text).unwrap_err();
        // The error is attributed to the app's opening line.
        assert_eq!(e.line, 2);
        assert!(e.message.contains("pinned"), "{}", e.message);
    }

    #[test]
    fn directed_links_parse_and_write() {
        let text = "ncp a cpu=1\nncp b cpu=1\nlink l a b bw=5 directed\n";
        let s = parse_scenario(text).unwrap();
        assert_eq!(
            s.network.link(sparcle_model::LinkId::new(0)).direction(),
            LinkDirection::Directed
        );
        let round = parse_scenario(&write_scenario(&s)).unwrap();
        assert_eq!(s.network, round.network);
    }

    #[test]
    fn best_effort_priority_defaults_to_one() {
        let text = "\nncp a cpu=10\napp x best-effort\nct s host=a\nct w cpu=1\nct t host=a\ntt e s w bits=1\ntt f w t bits=1\n";
        let s = parse_scenario(text).unwrap();
        assert!(matches!(
            s.apps[0].1.qoe(),
            QoeClass::BestEffort { priority, availability: None } if *priority == 1.0
        ));
    }

    #[test]
    fn guaranteed_requires_rate_and_availability() {
        let text = "ncp a cpu=1\napp x guaranteed availability=0.9\n";
        let e = parse_scenario(text).unwrap_err();
        assert!(e.message.contains("rate"), "{}", e.message);
        let text = "ncp a cpu=1\napp x guaranteed rate=1\n";
        let e = parse_scenario(text).unwrap_err();
        assert!(e.message.contains("availability"), "{}", e.message);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let s = parse_scenario("# just a comment\n\nncp a cpu=1 # trailing\n").unwrap();
        assert_eq!(s.network.ncp_count(), 1);
        assert!(s.apps.is_empty());
    }
}
