//! Synthetic application arrival traces.
//!
//! The paper evaluates with applications that "arrive over time"
//! (§III-A) without specifying a process. This module provides seeded
//! arrival-time generators for system-level studies (admission under
//! churn, fluctuation): a homogeneous Poisson process, a diurnal
//! (sinusoidally modulated) process, and a flash-crowd process that
//! superimposes a burst on a baseline.
//!
//! All generators return sorted arrival timestamps within `[0, horizon)`
//! and are deterministic per seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One application arrival drawn from an [`ArrivalTrace`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalEvent {
    /// Arrival timestamp in `[0, horizon)`.
    pub time: f64,
    /// Zero-based arrival sequence number within the trace.
    pub index: u64,
}

/// Lazy, seeded arrival generator: yields [`ArrivalEvent`]s in
/// non-decreasing time order up to an explicit horizon.
///
/// Obtained from [`ArrivalTrace::events`]; the online runtime consumes
/// this directly while batch studies collect it via
/// [`ArrivalTrace::sample`]. Deterministic per `(trace, horizon, seed)`.
#[derive(Debug, Clone)]
pub struct ArrivalEvents {
    trace: ArrivalTrace,
    horizon: f64,
    peak: f64,
    rng: StdRng,
    t: f64,
    index: u64,
    done: bool,
}

impl ArrivalEvents {
    /// The horizon beyond which no arrivals are produced.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }
}

impl Iterator for ArrivalEvents {
    type Item = ArrivalEvent;

    fn next(&mut self) -> Option<ArrivalEvent> {
        // Properly fused: once the thinning clock crosses the horizon
        // the iterator is spent — later calls must not keep drawing RNG
        // values (a flash-crowd burst straddling the horizon would
        // otherwise advance `t` and burn entropy on every poll).
        if self.done || self.peak <= 0.0 {
            return None;
        }
        loop {
            let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
            self.t += -u.ln() / self.peak;
            if self.t >= self.horizon {
                self.done = true;
                return None;
            }
            // Thinning: accept with probability λ(t)/λ_max.
            if self.rng.gen::<f64>() < self.trace.intensity(self.t) / self.peak {
                let event = ArrivalEvent {
                    time: self.t,
                    index: self.index,
                };
                self.index += 1;
                return Some(event);
            }
        }
    }
}

impl std::iter::FusedIterator for ArrivalEvents {}

/// The arrival process to draw from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalTrace {
    /// Homogeneous Poisson arrivals at `rate` per time unit.
    Poisson {
        /// Mean arrivals per time unit.
        rate: f64,
    },
    /// Sinusoidally modulated Poisson: intensity
    /// `rate · (1 + depth · sin(2πt / period))`, clamped at zero.
    Diurnal {
        /// Mean arrivals per time unit.
        rate: f64,
        /// Modulation depth in `[0, 1]`.
        depth: f64,
        /// Period of the cycle, in time units.
        period: f64,
    },
    /// A Poisson baseline plus a burst window at `burst_rate`.
    FlashCrowd {
        /// Baseline arrivals per time unit.
        rate: f64,
        /// Burst arrivals per time unit inside the window.
        burst_rate: f64,
        /// Burst window start.
        burst_start: f64,
        /// Burst window end.
        burst_end: f64,
    },
}

impl ArrivalTrace {
    /// The (time-varying) intensity at time `t`.
    pub fn intensity(&self, t: f64) -> f64 {
        match *self {
            ArrivalTrace::Poisson { rate } => rate,
            ArrivalTrace::Diurnal {
                rate,
                depth,
                period,
            } => (rate * (1.0 + depth * (std::f64::consts::TAU * t / period).sin())).max(0.0),
            ArrivalTrace::FlashCrowd {
                rate,
                burst_rate,
                burst_start,
                burst_end,
            } => {
                if (burst_start..burst_end).contains(&t) {
                    burst_rate
                } else {
                    rate
                }
            }
        }
    }

    /// The peak intensity over any time (used for thinning).
    fn peak(&self) -> f64 {
        match *self {
            ArrivalTrace::Poisson { rate } => rate,
            ArrivalTrace::Diurnal { rate, depth, .. } => rate * (1.0 + depth.abs()),
            ArrivalTrace::FlashCrowd {
                rate, burst_rate, ..
            } => rate.max(burst_rate),
        }
    }

    /// Draws sorted arrival times in `[0, horizon)` by Lewis–Shedler
    /// thinning (exact for the constant case). Deterministic per seed.
    ///
    /// # Panics
    ///
    /// Panics on non-finite/negative rates or horizon.
    ///
    /// # Examples
    ///
    /// ```
    /// # use sparcle_workloads::traces::ArrivalTrace;
    /// let arrivals = ArrivalTrace::Poisson { rate: 2.0 }.sample(100.0, 7);
    /// // ~200 arrivals, sorted, inside the horizon.
    /// assert!((150..250).contains(&arrivals.len()));
    /// assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
    /// assert!(arrivals.iter().all(|&t| (0.0..100.0).contains(&t)));
    /// ```
    pub fn sample(&self, horizon: f64, seed: u64) -> Vec<f64> {
        self.events(horizon, seed).map(|e| e.time).collect()
    }

    /// Lazy counterpart of [`ArrivalTrace::sample`]: an iterator of
    /// [`ArrivalEvent`]s (timestamp + sequence number) over
    /// `[0, horizon)`, deterministic per seed.
    ///
    /// # Panics
    ///
    /// Panics on non-finite/negative rates or horizon.
    ///
    /// # Examples
    ///
    /// ```
    /// # use sparcle_workloads::traces::ArrivalTrace;
    /// let mut events = ArrivalTrace::Poisson { rate: 2.0 }.events(100.0, 7);
    /// let first = events.next().unwrap();
    /// assert_eq!(first.index, 0);
    /// assert!(first.time >= 0.0 && first.time < 100.0);
    /// ```
    pub fn events(&self, horizon: f64, seed: u64) -> ArrivalEvents {
        assert!(horizon.is_finite() && horizon >= 0.0, "bad horizon");
        let peak = self.peak();
        assert!(peak.is_finite() && peak >= 0.0, "bad rate");
        ArrivalEvents {
            trace: *self,
            horizon,
            peak,
            rng: StdRng::seed_from_u64(seed),
            t: 0.0,
            index: 0,
            done: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_count_matches_rate() {
        let arrivals = ArrivalTrace::Poisson { rate: 5.0 }.sample(1_000.0, 3);
        let n = arrivals.len() as f64;
        // Mean 5000, std ~71; allow 5σ.
        assert!((n - 5_000.0).abs() < 360.0, "count {n}");
    }

    #[test]
    fn diurnal_peaks_and_troughs() {
        let trace = ArrivalTrace::Diurnal {
            rate: 4.0,
            depth: 0.9,
            period: 100.0,
        };
        // Intensity at the crest vs the trough.
        assert!(trace.intensity(25.0) > 7.0);
        assert!(trace.intensity(75.0) < 1.0);
        // Counts in crest vs trough windows over many cycles.
        let arrivals = trace.sample(10_000.0, 5);
        let crest = arrivals
            .iter()
            .filter(|&&t| (t % 100.0) >= 10.0 && (t % 100.0) < 40.0)
            .count();
        let trough = arrivals
            .iter()
            .filter(|&&t| (t % 100.0) >= 60.0 && (t % 100.0) < 90.0)
            .count();
        assert!(
            crest > 3 * trough,
            "crest {crest} should dwarf trough {trough}"
        );
    }

    #[test]
    fn flash_crowd_bursts() {
        let trace = ArrivalTrace::FlashCrowd {
            rate: 1.0,
            burst_rate: 20.0,
            burst_start: 400.0,
            burst_end: 500.0,
        };
        let arrivals = trace.sample(1_000.0, 9);
        let in_burst = arrivals
            .iter()
            .filter(|&&t| (400.0..500.0).contains(&t))
            .count();
        let outside = arrivals.len() - in_burst;
        // Burst: ~2000 arrivals in 100 units; outside: ~900 in 900.
        assert!(in_burst > outside, "burst {in_burst} vs outside {outside}");
        assert!(in_burst > 1_500 && in_burst < 2_500, "burst {in_burst}");
    }

    #[test]
    fn deterministic_per_seed() {
        let trace = ArrivalTrace::Poisson { rate: 3.0 };
        assert_eq!(trace.sample(50.0, 42), trace.sample(50.0, 42));
        assert_ne!(trace.sample(50.0, 42), trace.sample(50.0, 43));
    }

    #[test]
    fn event_iterators_are_deterministic_for_every_process() {
        let traces = [
            ArrivalTrace::Poisson { rate: 3.0 },
            ArrivalTrace::Diurnal {
                rate: 4.0,
                depth: 0.8,
                period: 50.0,
            },
            ArrivalTrace::FlashCrowd {
                rate: 1.0,
                burst_rate: 10.0,
                burst_start: 20.0,
                burst_end: 40.0,
            },
        ];
        for trace in traces {
            let a: Vec<_> = trace.events(200.0, 42).collect();
            let b: Vec<_> = trace.events(200.0, 42).collect();
            assert_eq!(a, b, "same seed ⇒ identical event sequence ({trace:?})");
            assert!(!a.is_empty(), "{trace:?} produced no events");
            let c: Vec<_> = trace.events(200.0, 43).collect();
            assert_ne!(a, c, "different seed ⇒ different sequence ({trace:?})");
            // Indices count up from zero; times are sorted in-horizon.
            for (i, e) in a.iter().enumerate() {
                assert_eq!(e.index, i as u64);
                assert!((0.0..200.0).contains(&e.time));
            }
            assert!(a.windows(2).all(|w| w[0].time <= w[1].time));
            // The lazy iterator and the batch sampler agree exactly.
            assert_eq!(
                a.iter().map(|e| e.time).collect::<Vec<_>>(),
                trace.sample(200.0, 42),
            );
        }
    }

    #[test]
    fn event_iterator_respects_horizon_and_fuses() {
        let mut events = ArrivalTrace::Poisson { rate: 5.0 }.events(10.0, 1);
        for e in events.by_ref() {
            assert!(e.time < 10.0);
        }
        assert_eq!(events.next(), None, "exhausted iterator stays exhausted");
        assert!(ArrivalTrace::Poisson { rate: 5.0 }
            .events(0.0, 1)
            .next()
            .is_none());
    }

    #[test]
    fn flash_crowd_burst_straddling_the_horizon_is_clamped_and_fused() {
        // The burst window extends past the horizon: arrivals must stop
        // at the horizon exactly, and the exhausted iterator must be
        // properly fused — polling it again may not draw RNG values or
        // advance the thinning clock.
        let trace = ArrivalTrace::FlashCrowd {
            rate: 0.5,
            burst_rate: 30.0,
            burst_start: 90.0,
            burst_end: 150.0,
        };
        let horizon = 100.0;
        let collected: Vec<ArrivalEvent> = trace.events(horizon, 77).collect();
        assert!(
            !collected.is_empty() && collected.iter().all(|e| e.time < horizon),
            "no arrival may cross the horizon"
        );
        assert!(
            collected.iter().filter(|e| e.time >= 90.0).count() > 10,
            "the in-horizon part of the burst must show up"
        );

        // Lazy + deterministic: stepping one-by-one replays the batch.
        let mut stepped = trace.events(horizon, 77);
        for expected in &collected {
            assert_eq!(stepped.next().as_ref(), Some(expected));
        }
        assert_eq!(stepped.next(), None);

        // Fused: after exhaustion the iterator's RNG is frozen. Two
        // clones of the spent iterator must remain bitwise identical
        // even when one is polled many more times — with the old
        // unfused loop each poll consumed a draw and moved `t`.
        let spent = stepped.clone();
        for _ in 0..1_000 {
            assert_eq!(stepped.next(), None, "exhausted iterator stays exhausted");
        }
        assert_eq!(
            format!("{stepped:?}"),
            format!("{spent:?}"),
            "polling an exhausted iterator must not consume RNG state"
        );
    }

    #[test]
    fn degenerate_inputs() {
        assert!(ArrivalTrace::Poisson { rate: 0.0 }
            .sample(100.0, 1)
            .is_empty());
        assert!(ArrivalTrace::Poisson { rate: 5.0 }
            .sample(0.0, 1)
            .is_empty());
    }
}
