//! Randomized bottleneck scenarios for the simulation study (§V-B-1).
//!
//! The paper evaluates three regimes (plus a multi-resource variant):
//!
//! * **NCP-bottleneck** — links have a 10× larger capacity-to-requirement
//!   ratio than NCPs, so compute decides the rate;
//! * **link-bottleneck** — the reverse: bandwidth decides the rate;
//! * **balanced** — both can bind;
//! * **memory-bottleneck** — CTs carry CPU *and* memory requirements,
//!   and NCP memory is the scarce resource (Figure 12).
//!
//! [`ScenarioConfig::sample`] draws a heterogeneous `(Application,
//! Network)` instance with requirements and capacities in the chosen
//! regime, seeded for reproducibility.

use crate::graphs::{diamond_task_graph, linear_task_graph_multi};
use crate::topologies::{link_count, TopologyKind, TopologySpec};
use rand::Rng;
use sparcle_model::{Application, ModelError, NcpId, Network, QoeClass, ResourceVec, TaskGraph};

/// Which element class is scarce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BottleneckCase {
    /// NCP CPU decides the rate.
    NcpBottleneck,
    /// Link bandwidth decides the rate.
    LinkBottleneck,
    /// Either may bind.
    Balanced,
    /// NCP memory decides the rate (multi-resource case).
    MemoryBottleneck,
}

impl BottleneckCase {
    /// The three single-resource cases evaluated in Figures 8, 9, 11.
    pub const SINGLE_RESOURCE: [BottleneckCase; 3] = [
        BottleneckCase::NcpBottleneck,
        BottleneckCase::Balanced,
        BottleneckCase::LinkBottleneck,
    ];
}

impl std::fmt::Display for BottleneckCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BottleneckCase::NcpBottleneck => f.write_str("ncp-bottleneck"),
            BottleneckCase::LinkBottleneck => f.write_str("link-bottleneck"),
            BottleneckCase::Balanced => f.write_str("balanced"),
            BottleneckCase::MemoryBottleneck => f.write_str("memory-bottleneck"),
        }
    }
}

/// Which task graph family to draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphKind {
    /// The Figure 7(a) pipeline with this many compute stages.
    Linear {
        /// Number of compute CTs between source and sink.
        stages: usize,
    },
    /// The Figure 7(b) diamond (4 middle CTs, 2 aggregators).
    Diamond,
    /// A random layered DAG with this many compute CTs (30 % extra
    /// forward edges) — beyond the paper's shapes, for robustness
    /// sweeps.
    Random {
        /// Number of compute CTs between source and sink.
        cts: usize,
    },
}

impl std::fmt::Display for GraphKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphKind::Linear { stages } => write!(f, "linear{stages}"),
            GraphKind::Diamond => f.write_str("diamond"),
            GraphKind::Random { cts } => write!(f, "random{cts}"),
        }
    }
}

/// A sampled evaluation instance.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The application (task graph + QoE + pinned endpoints).
    pub app: Application,
    /// The dispersed computing network.
    pub network: Network,
}

/// Parameters of the scenario distribution.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Scarcity regime.
    pub case: BottleneckCase,
    /// Task graph family.
    pub graph: GraphKind,
    /// Network wiring.
    pub topology: TopologyKind,
    /// Number of NCPs.
    pub ncps: usize,
    /// Failure probability applied to every link.
    pub link_failure: f64,
    /// Failure probability applied to every NCP.
    pub ncp_failure: f64,
    /// QoE attached to the sampled application.
    pub qoe: QoeClass,
    /// Attach memory requirements/capacities even outside the
    /// memory-bottleneck case (Figure 12's link-bottleneck +
    /// multi-resource variant). Memory is then abundant.
    pub with_memory: bool,
}

impl ScenarioConfig {
    /// The paper's default simulation shape: the given case/graph on a
    /// star of 8 NCPs with no failures, Best-Effort priority 1.
    pub fn new(case: BottleneckCase, graph: GraphKind, topology: TopologyKind) -> Self {
        ScenarioConfig {
            case,
            graph,
            topology,
            ncps: 8,
            link_failure: 0.0,
            ncp_failure: 0.0,
            qoe: QoeClass::best_effort(1.0),
            with_memory: false,
        }
    }

    /// Draws one scenario.
    ///
    /// Requirements are `U(5, 15)` per data unit; capacities are
    /// `U(50, 150)` on the bottleneck side and ×10 that on the abundant
    /// side, per the paper's 10× ratio description.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] only if the configuration produces an
    /// invalid model (it does not, for valid configs).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Scenario, ModelError> {
        let scarce = || (50.0, 150.0);
        let abundant = || (500.0, 1500.0);
        let (ncp_rng, link_rng) = match self.case {
            BottleneckCase::NcpBottleneck => (scarce(), abundant()),
            BottleneckCase::LinkBottleneck => (abundant(), scarce()),
            BottleneckCase::Balanced => (scarce(), scarce()),
            BottleneckCase::MemoryBottleneck => (abundant(), abundant()),
        };

        let graph = self.sample_graph(rng)?;
        let n = self.ncps;
        let ncp_cpu: Vec<f64> = (0..n)
            .map(|_| rng.gen_range(ncp_rng.0..ncp_rng.1))
            .collect();
        let ncp_memory = match self.case {
            BottleneckCase::MemoryBottleneck => {
                Some((0..n).map(|_| rng.gen_range(50.0..150.0)).collect())
            }
            _ if self.with_memory => Some((0..n).map(|_| rng.gen_range(500.0..1500.0)).collect()),
            _ => None,
        };
        let links = link_count(self.topology, n);
        let link_bandwidth: Vec<f64> = (0..links)
            .map(|_| rng.gen_range(link_rng.0..link_rng.1))
            .collect();
        let spec = TopologySpec {
            kind: self.topology,
            ncp_cpu,
            ncp_memory,
            link_bandwidth,
            ncp_failure: self.ncp_failure,
            link_failure: self.link_failure,
        };
        let network = spec.build()?;

        // Pin the data source and the consumer on random (possibly
        // equal) NCPs — the camera and the operator terminal.
        let src_host = NcpId::new(rng.gen_range(0..n) as u32);
        let sink_host = NcpId::new(rng.gen_range(0..n) as u32);
        let source = graph.sources()[0];
        let sink = graph.sinks()[0];
        let app = Application::new(
            graph,
            self.qoe.clone(),
            [(source, src_host), (sink, sink_host)],
        )?;
        Ok(Scenario { app, network })
    }

    fn sample_graph<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<TaskGraph, ModelError> {
        let req = |rng: &mut R| rng.gen_range(5.0..15.0);
        let memory = self.with_memory || matches!(self.case, BottleneckCase::MemoryBottleneck);
        let ct_req = |rng: &mut R| {
            if memory {
                ResourceVec::cpu_memory(req(rng), rng.gen_range(5.0..15.0))
            } else {
                ResourceVec::cpu(req(rng))
            }
        };
        match self.graph {
            GraphKind::Linear { stages } => {
                let reqs: Vec<ResourceVec> = (0..stages).map(|_| ct_req(rng)).collect();
                let bits: Vec<f64> = (0..=stages).map(|_| rng.gen_range(5.0..15.0)).collect();
                linear_task_graph_multi(&reqs, &bits)
            }
            GraphKind::Diamond => {
                let mids: Vec<ResourceVec> = (0..4).map(|_| ct_req(rng)).collect();
                let aggs: Vec<ResourceVec> = (0..2).map(|_| ct_req(rng)).collect();
                diamond_task_graph(
                    &mids,
                    &aggs,
                    rng.gen_range(5.0..15.0),
                    rng.gen_range(5.0..15.0),
                    rng.gen_range(5.0..15.0),
                )
            }
            GraphKind::Random { cts } => {
                // Note: the memory-bottleneck case is not supported for
                // random graphs (CPU-only requirements).
                crate::graphs::random_task_graph(rng, cts, 0.3, (5.0, 15.0), (5.0, 15.0))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sparcle_model::ResourceKind;

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let cfg = ScenarioConfig::new(
            BottleneckCase::Balanced,
            GraphKind::Linear { stages: 4 },
            TopologyKind::Star,
        );
        let a = cfg.sample(&mut StdRng::seed_from_u64(42)).unwrap();
        let b = cfg.sample(&mut StdRng::seed_from_u64(42)).unwrap();
        assert_eq!(a.network, b.network);
        assert_eq!(a.app.graph(), b.app.graph());
        assert_eq!(a.app.pinned(), b.app.pinned());
    }

    #[test]
    fn link_bottleneck_has_rich_ncps() {
        let cfg = ScenarioConfig::new(
            BottleneckCase::LinkBottleneck,
            GraphKind::Diamond,
            TopologyKind::Star,
        );
        let s = cfg.sample(&mut StdRng::seed_from_u64(1)).unwrap();
        for ncp in s.network.ncp_ids() {
            let cpu = s.network.ncp(ncp).capacity().amount(ResourceKind::Cpu);
            assert!((500.0..1500.0).contains(&cpu), "cpu = {cpu}");
        }
        for link in s.network.link_ids() {
            let bw = s.network.link(link).bandwidth();
            assert!((50.0..150.0).contains(&bw), "bw = {bw}");
        }
    }

    #[test]
    fn memory_bottleneck_adds_memory_everywhere() {
        let cfg = ScenarioConfig::new(
            BottleneckCase::MemoryBottleneck,
            GraphKind::Diamond,
            TopologyKind::Star,
        );
        let s = cfg.sample(&mut StdRng::seed_from_u64(2)).unwrap();
        for ncp in s.network.ncp_ids() {
            assert!(s.network.ncp(ncp).capacity().amount(ResourceKind::Memory) > 0.0);
        }
        // Compute CTs have memory requirements.
        let g = s.app.graph();
        let inner = g
            .ct_ids()
            .filter(|&ct| !g.in_edges(ct).is_empty() && !g.out_edges(ct).is_empty());
        for ct in inner {
            assert!(g.ct(ct).requirement().amount(ResourceKind::Memory) > 0.0);
        }
    }

    #[test]
    fn failure_probabilities_propagate() {
        let mut cfg = ScenarioConfig::new(
            BottleneckCase::Balanced,
            GraphKind::Linear { stages: 3 },
            TopologyKind::Linear,
        );
        cfg.link_failure = 0.02;
        cfg.ncps = 5;
        let s = cfg.sample(&mut StdRng::seed_from_u64(3)).unwrap();
        for link in s.network.link_ids() {
            assert_eq!(s.network.link(link).failure_probability(), 0.02);
        }
    }

    #[test]
    fn diamond_scenarios_are_schedulable_shapes() {
        let cfg = ScenarioConfig::new(
            BottleneckCase::Balanced,
            GraphKind::Diamond,
            TopologyKind::FullyConnected,
        );
        let s = cfg.sample(&mut StdRng::seed_from_u64(4)).unwrap();
        assert_eq!(s.app.graph().ct_count(), 8);
        assert_eq!(s.network.ncp_count(), 8);
        assert!(s.app.check_against_network(&s.network).is_ok());
    }
}
