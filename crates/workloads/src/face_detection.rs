//! The paper's experimental workload: a face-detection stream pipeline
//! (Figure 5, Table II) on the Figure 4 testbed network (Table I).
//!
//! Units are chosen so the numbers read exactly like the paper's tables:
//! CPU requirements in **mega-cycles per image** and CPU capacities in
//! **MHz** (⇒ rates in images/second); TT payloads in **megabits per
//! image** and bandwidths in **Mbps**.
//!
//! The physical testbed + Mininet of §V-A are substituted by
//! `sparcle-sim`'s emulator; this module only provides the parameters,
//! which *are* published in the paper.

use sparcle_model::{
    Application, CtId, ModelError, NcpId, Network, NetworkBuilder, QoeClass, ResourceVec,
    TaskGraph, TaskGraphBuilder,
};

/// Cloud CPU capacity: 4 cores × 3.8 GHz (Table I), in MHz.
pub const CLOUD_CPU_MHZ: f64 = 4.0 * 3800.0;
/// Field NCP CPU capacity (Table I), in MHz.
pub const FIELD_CPU_MHZ: f64 = 3000.0;
/// Cloud access link bandwidth (Table I), in Mbps.
pub const CLOUD_BW_MBPS: f64 = 100.0;

/// Table II CPU requirements, mega-cycles per image.
pub const RESIZE_MC: f64 = 9880.0;
/// Denoise stage cost (Table II).
pub const DENOISE_MC: f64 = 12800.0;
/// Edge-detection stage cost (Table II).
pub const EDGE_MC: f64 = 4826.0;
/// Face-detection stage cost (Table II).
pub const FACE_MC: f64 = 5658.0;

/// Table II transport sizes, converted to megabits per image.
pub const RAW_IMAGE_MBIT: f64 = 3.1 * 8.0; // 3.1 MB
/// Resized image payload (182 kB).
pub const RESIZED_MBIT: f64 = 0.182 * 8.0;
/// Denoised image payload (145 kB).
pub const DENOISED_MBIT: f64 = 0.145 * 8.0;
/// Edge map payload (188 kB).
pub const EDGE_MAP_MBIT: f64 = 0.188 * 8.0;
/// Detected-faces payload (11 kB).
pub const FACES_MBIT: f64 = 0.011 * 8.0;

/// Index of the cloud NCP in [`testbed_network`].
pub const CLOUD: NcpId = NcpId::new(0);
/// Index of the camera-hosting field NCP (data source and consumer).
pub const CAMERA: NcpId = NcpId::new(4);

/// Builds the Figure 5 face-detection task graph:
/// `source → resize → denoise → edge-detection → face-detection →
/// consumer`, with Table II requirements.
///
/// # Errors
///
/// Never fails in practice (constants are valid); the `Result` mirrors
/// the fallible builder API.
pub fn face_detection_graph() -> Result<TaskGraph, ModelError> {
    let mut b = TaskGraphBuilder::new();
    b.name("face-detection");
    let source = b.add_ct("camera", ResourceVec::new());
    let resize = b.add_ct("resize", ResourceVec::cpu(RESIZE_MC));
    let denoise = b.add_ct("denoise", ResourceVec::cpu(DENOISE_MC));
    let edge = b.add_ct("edge-detection", ResourceVec::cpu(EDGE_MC));
    let face = b.add_ct("face-detection", ResourceVec::cpu(FACE_MC));
    let consumer = b.add_ct("consumer", ResourceVec::new());
    b.add_tt("raw-images", source, resize, RAW_IMAGE_MBIT)?;
    b.add_tt("resized", resize, denoise, RESIZED_MBIT)?;
    b.add_tt("denoised", denoise, edge, DENOISED_MBIT)?;
    b.add_tt("edge-maps", edge, face, EDGE_MAP_MBIT)?;
    b.add_tt("faces", face, consumer, FACES_MBIT)?;
    b.build()
}

/// Builds the face-detection [`Application`] with the camera and
/// consumer pinned on the [`CAMERA`] field NCP of [`testbed_network`].
///
/// # Errors
///
/// Never fails in practice; mirrors the fallible constructors.
pub fn face_detection_app(qoe: QoeClass) -> Result<Application, ModelError> {
    let graph = face_detection_graph()?;
    let source = graph.sources()[0];
    let sink = graph.sinks()[0];
    Application::new(graph, qoe, [(source, CAMERA), (sink, CAMERA)])
}

/// Builds the Figure 4 testbed network: one cloud NCP behind a 100 Mbps
/// access link, and six field NCPs (3000 MHz each) meshed by
/// `field_bw_mbps` links.
///
/// Topology (a reconstruction of Figure 4 — a row of four field NCPs
/// with two more hanging off it, cloud attached at one end):
///
/// ```text
///        cloud(0)
///          │ 100 Mbps
///  (1) ── (2) ── (3) ── (4=camera)
///          │      │
///         (5) ── (6)
/// ```
///
/// # Panics
///
/// Panics if `field_bw_mbps` is negative or not finite.
pub fn testbed_network(field_bw_mbps: f64) -> Network {
    assert!(
        field_bw_mbps.is_finite() && field_bw_mbps >= 0.0,
        "field bandwidth must be finite and non-negative"
    );
    let mut b = NetworkBuilder::new();
    b.name("testbed");
    let cloud = b.add_ncp("cloud", ResourceVec::cpu(CLOUD_CPU_MHZ));
    let field: Vec<NcpId> = (1..=6)
        .map(|i| b.add_ncp(format!("ncp{i}"), ResourceVec::cpu(FIELD_CPU_MHZ)))
        .collect();
    b.add_link("cloud-bw", cloud, field[1], CLOUD_BW_MBPS)
        .expect("valid link");
    let field_links = [(0, 1), (1, 2), (2, 3), (1, 4), (4, 5), (2, 5)];
    for (i, &(x, y)) in field_links.iter().enumerate() {
        b.add_link(format!("field{i}"), field[x], field[y], field_bw_mbps)
            .expect("valid link");
    }
    b.build().expect("testbed network is well-formed")
}

/// The cloud-computing reference placement: every compute CT on the
/// cloud NCP. Returns the CT → NCP map (TT routing is up to the caller,
/// e.g. `sparcle-baselines`' cloud assigner).
pub fn cloud_placement_hosts(graph: &TaskGraph) -> Vec<(CtId, NcpId)> {
    graph
        .ct_ids()
        .map(|ct| {
            if graph.in_edges(ct).is_empty() || graph.out_edges(ct).is_empty() {
                (ct, CAMERA)
            } else {
                (ct, CLOUD)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparcle_model::ResourceKind;

    #[test]
    fn graph_matches_table_ii() {
        let g = face_detection_graph().unwrap();
        assert_eq!(g.ct_count(), 6);
        assert_eq!(g.tt_count(), 5);
        assert_eq!(
            g.ct(CtId::new(1)).requirement().amount(ResourceKind::Cpu),
            9880.0
        );
        assert_eq!(
            g.ct(CtId::new(2)).requirement().amount(ResourceKind::Cpu),
            12800.0
        );
        let raw = g.tt(sparcle_model::TtId::new(0));
        assert!((raw.bits_per_unit() - 24.8).abs() < 1e-12);
    }

    #[test]
    fn network_matches_table_i() {
        let net = testbed_network(10.0);
        assert_eq!(net.ncp_count(), 7);
        assert_eq!(net.link_count(), 7);
        assert_eq!(net.ncp(CLOUD).capacity().amount(ResourceKind::Cpu), 15200.0);
        assert_eq!(
            net.ncp(NcpId::new(3)).capacity().amount(ResourceKind::Cpu),
            3000.0
        );
        assert_eq!(net.link(sparcle_model::LinkId::new(0)).bandwidth(), 100.0);
        assert_eq!(net.link(sparcle_model::LinkId::new(1)).bandwidth(), 10.0);
        assert!(net.all_reachable_from(CLOUD));
    }

    #[test]
    fn app_pins_camera_and_consumer() {
        let app = face_detection_app(QoeClass::best_effort(1.0)).unwrap();
        assert_eq!(app.pinned_host(CtId::new(0)), Some(CAMERA));
        assert_eq!(app.pinned_host(CtId::new(5)), Some(CAMERA));
    }

    #[test]
    fn cloud_hosts_put_compute_on_cloud() {
        let g = face_detection_graph().unwrap();
        let hosts = cloud_placement_hosts(&g);
        assert_eq!(hosts.len(), 6);
        assert_eq!(hosts[0].1, CAMERA);
        assert_eq!(hosts[1].1, CLOUD);
        assert_eq!(hosts[4].1, CLOUD);
        assert_eq!(hosts[5].1, CAMERA);
    }
}
