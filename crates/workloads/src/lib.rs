//! Workload and topology generators for the SPARCLE evaluation.
//!
//! * [`graphs`] — the linear and diamond task graphs of Figure 7;
//! * [`topologies`] — the star / linear / fully-connected networks of
//!   §V-B-1;
//! * [`scenarios`] — seeded samplers for the NCP-bottleneck,
//!   link-bottleneck, balanced, and memory-bottleneck regimes;
//! * [`face_detection`] — the real experimental workload of §V-A:
//!   Table II's face-detection pipeline and Table I's testbed network
//!   (Figure 4), parameterized by the field bandwidth swept in Figure 6;
//! * [`scale`] — seeded 5k–10k-NCP two-level hub-and-spoke topologies
//!   (plus a backbone-crossing pipeline app) for scale experiments;
//! * [`scenario_file`] — the plain-text experiment scenario files the
//!   paper's emulator reads (parser + writer);
//! * [`traces`] — seeded arrival-time generators (Poisson, diurnal,
//!   flash-crowd) for system-level churn studies;
//! * [`requests`] — the request-stream adapter over [`traces`] feeding
//!   the admission service plane (submissions + what-if probes).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod face_detection;
pub mod graphs;
pub mod requests;
pub mod scale;
pub mod scenario_file;
pub mod scenarios;
pub mod topologies;
pub mod traces;

pub use face_detection::{face_detection_app, face_detection_graph, testbed_network};
pub use graphs::{
    diamond_task_graph, linear_task_graph, linear_task_graph_multi, random_task_graph,
};
pub use requests::{RequestKind, RequestStream, ServiceRequest};
pub use scale::{ScaleScenario, ScaleSpec};
pub use scenario_file::{parse_scenario, write_scenario, FileScenario, ScenarioParseError};
pub use scenarios::{BottleneckCase, GraphKind, Scenario, ScenarioConfig};
pub use topologies::{TopologyKind, TopologySpec};
pub use traces::{ArrivalEvent, ArrivalEvents, ArrivalTrace};
