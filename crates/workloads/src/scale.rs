//! Large-topology generator for scale experiments (5k–10k NCPs).
//!
//! The paper's simulations stop at tens of NCPs; the repo's north star
//! (and the dispersed-computing throughput experiments of Zhao et al.)
//! needs placement on *thousands*. This module builds a deterministic,
//! seeded **two-level hub-and-spoke** network — a chain of backbone
//! hubs, each fanning out to a block of leaves — which matches how
//! dispersed IoT deployments actually cluster (site gateways on a
//! backbone, devices behind each gateway) while keeping the link count
//! `O(n)`, so a 10k-NCP instance stays sparse instead of exploding
//! quadratically like [`crate::topologies::TopologyKind::FullyConnected`].
//!
//! The companion application is a linear pipeline whose source is
//! pinned behind the *first* hub and sink behind the *last*, forcing
//! every placement to reason about the whole backbone.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparcle_model::{
    Application, ModelError, NcpId, Network, NetworkBuilder, QoeClass, ResourceVec,
};

use crate::graphs::linear_task_graph;

/// Spec for one seeded scale scenario (network + pinned pipeline app).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleSpec {
    /// Total NCPs (hubs + leaves). Must be ≥ 4.
    pub ncps: usize,
    /// Leaves attached to each hub (the hub count follows from this).
    pub leaves_per_hub: usize,
    /// Compute stages of the pipeline application.
    pub stages: usize,
    /// Seed for the capacity/bandwidth draws.
    pub seed: u64,
}

impl ScaleSpec {
    /// A spec with the default shape: 64 leaves per hub, an 8-stage
    /// pipeline, seed 1.
    pub fn new(ncps: usize) -> Self {
        ScaleSpec {
            ncps,
            leaves_per_hub: 64,
            stages: 8,
            seed: 1,
        }
    }

    /// Number of backbone hubs this spec produces.
    pub fn hub_count(&self) -> usize {
        (self.ncps / (self.leaves_per_hub + 1)).max(2)
    }

    /// Builds the network and the pinned pipeline application.
    ///
    /// Identical specs always build identical scenarios (topology,
    /// capacities, pins) — the draws come from a seeded [`StdRng`].
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] for degenerate shapes (fewer than 4
    /// NCPs, zero stages).
    ///
    /// # Panics
    ///
    /// Panics if `ncps < 4` or `stages == 0`.
    pub fn build(&self) -> Result<ScaleScenario, ModelError> {
        assert!(self.ncps >= 4, "scale topologies need at least 4 NCPs");
        assert!(self.stages >= 1, "the pipeline needs at least one stage");
        let hubs = self.hub_count();
        let leaves = self.ncps - hubs;
        let mut rng = StdRng::seed_from_u64(self.seed);

        let mut b = NetworkBuilder::new();
        b.name(format!("scale-{}", self.ncps));
        // Hubs first (dense ids 0..hubs): strong compute, chained by a
        // wide backbone.
        let hub_ids: Vec<NcpId> = (0..hubs)
            .map(|h| {
                let cpu = rng.gen_range(2_000.0..6_000.0);
                b.add_ncp(format!("hub{h}"), ResourceVec::cpu(cpu))
            })
            .collect();
        for w in hub_ids.windows(2) {
            let bw = rng.gen_range(5_000.0..15_000.0);
            b.add_link(
                format!("bb-{}-{}", w[0].index(), w[1].index()),
                w[0],
                w[1],
                bw,
            )?;
        }
        // Leaves round-robin across hubs: modest compute, narrower
        // uplinks.
        let mut leaf_ids = Vec::with_capacity(leaves);
        for l in 0..leaves {
            let hub = hub_ids[l % hubs];
            let cpu = rng.gen_range(50.0..150.0);
            let leaf = b.add_ncp(format!("leaf{l}"), ResourceVec::cpu(cpu));
            let bw = rng.gen_range(500.0..1_500.0);
            b.add_link(
                format!("up-{}-{}", hub.index(), leaf.index()),
                hub,
                leaf,
                bw,
            )?;
            leaf_ids.push(leaf);
        }
        let network = b.build()?;

        // Pipeline: source behind the first hub, sink behind the last —
        // the widest route must cross the whole backbone.
        let cycles: Vec<f64> = (0..self.stages).map(|_| rng.gen_range(5.0..15.0)).collect();
        let bits: Vec<f64> = (0..=self.stages)
            .map(|_| rng.gen_range(5.0..15.0))
            .collect();
        let graph = linear_task_graph(&cycles, &bits)?;
        let source_ct = graph.ct_ids().next().expect("pipeline has a source");
        let sink_ct = graph.ct_ids().last().expect("pipeline has a sink");
        let source_host = *leaf_ids.first().unwrap_or(&hub_ids[0]);
        let sink_host = leaf_ids
            .iter()
            .rev()
            .find(|l| {
                // The last leaf attached to the last hub.
                (l.index() - hubs) % hubs == hubs - 1
            })
            .copied()
            .unwrap_or(hub_ids[hubs - 1]);
        let app = Application::new(
            graph,
            QoeClass::best_effort(1.0),
            [(source_ct, source_host), (sink_ct, sink_host)],
        )?;
        Ok(ScaleScenario { network, app })
    }
}

/// One built scale scenario.
#[derive(Debug, Clone)]
pub struct ScaleScenario {
    /// The two-level hub-and-spoke network.
    pub network: Network,
    /// The pipeline application, endpoints pinned across the backbone.
    pub app: Application,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_the_requested_size() {
        let s = ScaleSpec::new(500).build().unwrap();
        assert_eq!(s.network.ncp_count(), 500);
        // Two-level tree: exactly n - 1 links (chain of hubs + leaves).
        assert_eq!(s.network.link_count(), 499);
        assert!(s.network.all_reachable_from(NcpId::new(0)));
    }

    #[test]
    fn is_deterministic_per_seed() {
        let a = ScaleSpec::new(300).build().unwrap();
        let b = ScaleSpec::new(300).build().unwrap();
        assert_eq!(a.network, b.network);
        assert_eq!(a.app.pinned(), b.app.pinned());
        let c = ScaleSpec {
            seed: 7,
            ..ScaleSpec::new(300)
        }
        .build()
        .unwrap();
        assert_ne!(a.network, c.network);
    }

    #[test]
    fn endpoints_sit_behind_opposite_hubs() {
        let spec = ScaleSpec::new(400);
        let s = spec.build().unwrap();
        let hubs = spec.hub_count();
        let pins: Vec<NcpId> = s.app.pinned().values().copied().collect();
        assert_eq!(pins.len(), 2);
        for pin in pins {
            assert!(pin.index() >= hubs, "endpoints are pinned on leaves");
        }
    }

    #[test]
    fn link_widths_are_heterogeneous() {
        let s = ScaleSpec::new(300).build().unwrap();
        let mut bws: Vec<f64> = s
            .network
            .link_ids()
            .map(|l| s.network.link(l).bandwidth())
            .collect();
        bws.sort_by(f64::total_cmp);
        assert!(bws.first().unwrap() >= &500.0, "uplinks start at 500");
        assert!(bws.last().unwrap() > &5_000.0, "backbone links are wide");
    }
}
