//! Generators for the paper's task graph families (Figure 7).
//!
//! Two shapes recur throughout the evaluation:
//!
//! * the **linear** task graph (Figure 7(a)) — a pipeline
//!   `source → CT → … → CT → sink`;
//! * the **diamond** task graph (Figure 7(b)) — `source → 4 parallel CTs
//!   → 2 aggregation CTs → sink`, with every middle CT feeding both
//!   aggregators (8 CTs, 14 TTs).
//!
//! Each generator takes explicit per-task requirements so the scenario
//! samplers in [`crate::scenarios`] can dial in NCP-bottleneck,
//! link-bottleneck, or balanced regimes.

use rand::Rng;
use sparcle_model::{CtId, ModelError, ResourceVec, TaskGraph, TaskGraphBuilder};

/// Builds the linear task graph of Figure 7(a): a data source, `cpu.len()`
/// compute CTs in a chain, and a result consumer.
///
/// `bits[i]` is the payload of the TT *entering* compute CT `i`;
/// `bits[cpu.len()]` is the payload delivered to the consumer, so
/// `bits.len() == cpu.len() + 1`.
///
/// # Errors
///
/// Returns a [`ModelError`] if any quantity is invalid.
///
/// # Panics
///
/// Panics if `cpu` is empty or `bits.len() != cpu.len() + 1`.
///
/// # Examples
///
/// ```
/// # use sparcle_workloads::graphs::linear_task_graph;
/// let g = linear_task_graph(&[10.0, 20.0], &[8.0, 4.0, 2.0]).unwrap();
/// assert_eq!(g.ct_count(), 4); // source + 2 + sink
/// assert_eq!(g.tt_count(), 3);
/// ```
pub fn linear_task_graph(cpu: &[f64], bits: &[f64]) -> Result<TaskGraph, ModelError> {
    assert!(!cpu.is_empty(), "at least one compute CT");
    assert_eq!(bits.len(), cpu.len() + 1, "one TT per hop");
    let mut b = TaskGraphBuilder::new();
    b.name("linear");
    let source = b.add_ct("source", ResourceVec::new());
    let mut prev = source;
    for (i, &c) in cpu.iter().enumerate() {
        let ct = b.add_ct(format!("stage{i}"), ResourceVec::cpu(c));
        b.add_tt(format!("tt{i}"), prev, ct, bits[i])?;
        prev = ct;
    }
    let sink = b.add_ct("consumer", ResourceVec::new());
    b.add_tt(format!("tt{}", cpu.len()), prev, sink, bits[cpu.len()])?;
    b.build()
}

/// Like [`linear_task_graph`] but with full multi-resource requirements
/// per compute CT (used by the Figure 12 multi-resource experiments).
///
/// # Errors
///
/// Returns a [`ModelError`] if any quantity is invalid.
///
/// # Panics
///
/// Panics if `reqs` is empty or `bits.len() != reqs.len() + 1`.
pub fn linear_task_graph_multi(
    reqs: &[ResourceVec],
    bits: &[f64],
) -> Result<TaskGraph, ModelError> {
    assert!(!reqs.is_empty(), "at least one compute CT");
    assert_eq!(bits.len(), reqs.len() + 1, "one TT per hop");
    let mut b = TaskGraphBuilder::new();
    b.name("linear-multi");
    let source = b.add_ct("source", ResourceVec::new());
    let mut prev = source;
    for (i, r) in reqs.iter().enumerate() {
        let ct = b.add_ct(format!("stage{i}"), r.clone());
        b.add_tt(format!("tt{i}"), prev, ct, bits[i])?;
        prev = ct;
    }
    let sink = b.add_ct("consumer", ResourceVec::new());
    b.add_tt(format!("tt{}", reqs.len()), prev, sink, bits[reqs.len()])?;
    b.build()
}

/// Builds the diamond task graph of Figure 7(b):
///
/// ```text
///            ┌── CT2 ──┐
/// CT1(src) ──┼── CT3 ──┼──> CT6 ──┐
///            ├── CT4 ──┤          ├──> CT8 (consumer)
///            └── CT5 ──┼──> CT7 ──┘
/// ```
///
/// with all four middle CTs feeding both aggregators: 8 CTs, 14 TTs.
///
/// `mid_reqs` are the requirements of the four middle CTs, `agg_reqs` of
/// the two aggregators; `fanout_bits`, `cross_bits`, and `final_bits`
/// size the three TT layers.
///
/// # Errors
///
/// Returns a [`ModelError`] if any quantity is invalid.
///
/// # Panics
///
/// Panics unless `mid_reqs.len() == 4` and `agg_reqs.len() == 2`.
///
/// # Examples
///
/// ```
/// # use sparcle_workloads::graphs::diamond_task_graph;
/// # use sparcle_model::ResourceVec;
/// let g = diamond_task_graph(
///     &[ResourceVec::cpu(1.0), ResourceVec::cpu(2.0),
///       ResourceVec::cpu(3.0), ResourceVec::cpu(4.0)],
///     &[ResourceVec::cpu(5.0), ResourceVec::cpu(6.0)],
///     1.0, 2.0, 3.0,
/// ).unwrap();
/// assert_eq!(g.ct_count(), 8);
/// assert_eq!(g.tt_count(), 14);
/// ```
pub fn diamond_task_graph(
    mid_reqs: &[ResourceVec],
    agg_reqs: &[ResourceVec],
    fanout_bits: f64,
    cross_bits: f64,
    final_bits: f64,
) -> Result<TaskGraph, ModelError> {
    assert_eq!(mid_reqs.len(), 4, "diamond has four middle CTs");
    assert_eq!(agg_reqs.len(), 2, "diamond has two aggregators");
    let mut b = TaskGraphBuilder::new();
    b.name("diamond");
    let source = b.add_ct("source", ResourceVec::new());
    let mids: Vec<CtId> = mid_reqs
        .iter()
        .enumerate()
        .map(|(i, r)| b.add_ct(format!("mid{i}"), r.clone()))
        .collect();
    let aggs: Vec<CtId> = agg_reqs
        .iter()
        .enumerate()
        .map(|(i, r)| b.add_ct(format!("agg{i}"), r.clone()))
        .collect();
    let sink = b.add_ct("consumer", ResourceVec::new());
    let mut tt = 0usize;
    for &m in &mids {
        b.add_tt(format!("tt{tt}"), source, m, fanout_bits)?;
        tt += 1;
    }
    for &m in &mids {
        for &a in &aggs {
            b.add_tt(format!("tt{tt}"), m, a, cross_bits)?;
            tt += 1;
        }
    }
    for &a in &aggs {
        b.add_tt(format!("tt{tt}"), a, sink, final_bits)?;
        tt += 1;
    }
    b.build()
}

/// Generates a random layered DAG with one source, one sink, and
/// `inner` compute CTs arranged in layers, with forward edges drawn at
/// random (a spanning spine guarantees weak connectivity). Useful for
/// robustness sweeps beyond the paper's two fixed shapes.
///
/// Requirements are drawn from `req_range` (CPU per data unit) and TT
/// payloads from `bits_range`.
///
/// # Errors
///
/// Returns a [`ModelError`] only for degenerate ranges (not for valid
/// inputs).
///
/// # Panics
///
/// Panics if `inner == 0` or the ranges are empty/inverted.
pub fn random_task_graph<R: Rng + ?Sized>(
    rng: &mut R,
    inner: usize,
    extra_edge_prob: f64,
    req_range: (f64, f64),
    bits_range: (f64, f64),
) -> Result<TaskGraph, ModelError> {
    assert!(inner >= 1, "at least one compute CT");
    assert!(req_range.0 < req_range.1, "non-empty requirement range");
    assert!(bits_range.0 < bits_range.1, "non-empty payload range");
    let mut b = TaskGraphBuilder::new();
    b.name(format!("random-{inner}"));
    let source = b.add_ct("source", ResourceVec::new());
    let inners: Vec<CtId> = (0..inner)
        .map(|i| {
            b.add_ct(
                format!("work{i}"),
                ResourceVec::cpu(rng.gen_range(req_range.0..req_range.1)),
            )
        })
        .collect();
    let sink = b.add_ct("sink", ResourceVec::new());
    let bits = |rng: &mut R| rng.gen_range(bits_range.0..bits_range.1);
    // Spine source -> work0 -> ... -> sink guarantees connectivity and
    // the single-source/single-sink shape.
    let mut tt = 0usize;
    let mut add = |b: &mut TaskGraphBuilder, from: CtId, to: CtId, w: f64| {
        let name = format!("tt{tt}");
        tt += 1;
        b.add_tt(name, from, to, w)
    };
    add(&mut b, source, inners[0], bits(rng))?;
    for w in inners.windows(2) {
        add(&mut b, w[0], w[1], bits(rng))?;
    }
    add(&mut b, *inners.last().expect("non-empty"), sink, bits(rng))?;
    // Extra forward skip edges.
    for i in 0..inner {
        for j in i + 1..inner {
            if rng.gen_bool(extra_edge_prob) {
                add(&mut b, inners[i], inners[j], bits(rng))?;
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparcle_model::ResourceKind;

    #[test]
    fn linear_shape() {
        let g = linear_task_graph(&[1.0, 2.0, 3.0, 4.0], &[5.0; 5]).unwrap();
        assert_eq!(g.ct_count(), 6);
        assert_eq!(g.tt_count(), 5);
        assert_eq!(g.sources().len(), 1);
        assert_eq!(g.sinks().len(), 1);
        // Chain: every interior CT has exactly one in and one out edge.
        for ct in g.ct_ids() {
            assert!(g.in_edges(ct).len() <= 1);
            assert!(g.out_edges(ct).len() <= 1);
        }
    }

    #[test]
    fn linear_multi_carries_memory() {
        let reqs = [ResourceVec::cpu_memory(1.0, 10.0), ResourceVec::cpu(2.0)];
        let g = linear_task_graph_multi(&reqs, &[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(
            g.ct(CtId::new(1))
                .requirement()
                .amount(ResourceKind::Memory),
            10.0
        );
    }

    #[test]
    fn diamond_shape_matches_figure_7b() {
        let r = ResourceVec::cpu(1.0);
        let g = diamond_task_graph(
            &[r.clone(), r.clone(), r.clone(), r.clone()],
            &[r.clone(), r.clone()],
            1.0,
            1.0,
            1.0,
        )
        .unwrap();
        assert_eq!(g.ct_count(), 8);
        assert_eq!(g.tt_count(), 14);
        // Source fans out to 4; each aggregator has 4 inputs.
        assert_eq!(g.out_edges(CtId::new(0)).len(), 4);
        assert_eq!(g.in_edges(CtId::new(5)).len(), 4);
        assert_eq!(g.in_edges(CtId::new(6)).len(), 4);
        // Consumer receives from both aggregators.
        assert_eq!(g.in_edges(CtId::new(7)).len(), 2);
    }

    #[test]
    #[should_panic(expected = "one TT per hop")]
    fn linear_arity_checked() {
        let _ = linear_task_graph(&[1.0], &[1.0]);
    }

    #[test]
    fn random_graph_is_single_source_single_sink() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(9);
        for inner in [1usize, 3, 8] {
            let g = random_task_graph(&mut rng, inner, 0.4, (1.0, 10.0), (1.0, 10.0)).unwrap();
            assert_eq!(g.ct_count(), inner + 2);
            assert_eq!(g.sources().len(), 1);
            assert_eq!(g.sinks().len(), 1);
            assert!(g.tt_count() > inner, "spine edges present");
        }
    }

    #[test]
    fn random_graph_is_deterministic_per_seed() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let a = random_task_graph(
            &mut StdRng::seed_from_u64(3),
            5,
            0.5,
            (1.0, 10.0),
            (1.0, 10.0),
        )
        .unwrap();
        let b = random_task_graph(
            &mut StdRng::seed_from_u64(3),
            5,
            0.5,
            (1.0, 10.0),
            (1.0, 10.0),
        )
        .unwrap();
        assert_eq!(a, b);
    }
}
