//! Generators for the paper's network topologies.
//!
//! The simulations of §V-B use three dispersed-computing topologies
//! "consistent with typical IoT scenarios": **star**, **linear**, and
//! **fully-connected**. Each generator takes per-NCP CPU capacities and a
//! per-link bandwidth, plus a uniform failure probability for links
//! (NCPs can be failure-prone too via [`TopologySpec`]).

use sparcle_model::{ModelError, NcpId, Network, NetworkBuilder, ResourceVec};

/// Which of the paper's topologies to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// Hub-and-spoke: NCP0 is the hub.
    Star,
    /// A chain NCP0 — NCP1 — … — NCPn.
    Linear,
    /// Every pair of NCPs directly linked.
    FullyConnected,
}

impl TopologyKind {
    /// All three kinds, for sweeps.
    pub const ALL: [TopologyKind; 3] = [
        TopologyKind::Star,
        TopologyKind::Linear,
        TopologyKind::FullyConnected,
    ];
}

impl std::fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyKind::Star => f.write_str("star"),
            TopologyKind::Linear => f.write_str("linear"),
            TopologyKind::FullyConnected => f.write_str("fully-connected"),
        }
    }
}

/// Full description of a homogeneous-link topology instance.
#[derive(Debug, Clone)]
pub struct TopologySpec {
    /// The wiring pattern.
    pub kind: TopologyKind,
    /// CPU capacity per NCP (also sets the NCP count).
    pub ncp_cpu: Vec<f64>,
    /// Optional memory capacity per NCP (same length when present).
    pub ncp_memory: Option<Vec<f64>>,
    /// Bandwidth per link.
    pub link_bandwidth: Vec<f64>,
    /// Failure probability applied to every NCP.
    pub ncp_failure: f64,
    /// Failure probability applied to every link.
    pub link_failure: f64,
}

impl TopologySpec {
    /// A spec with uniform CPU and bandwidth and no failures.
    ///
    /// # Panics
    ///
    /// Panics if `ncps < 2`.
    pub fn uniform(kind: TopologyKind, ncps: usize, cpu: f64, bandwidth: f64) -> Self {
        assert!(ncps >= 2, "topologies need at least two NCPs");
        let links = link_count(kind, ncps);
        TopologySpec {
            kind,
            ncp_cpu: vec![cpu; ncps],
            ncp_memory: None,
            link_bandwidth: vec![bandwidth; links],
            ncp_failure: 0.0,
            link_failure: 0.0,
        }
    }

    /// Builds the [`Network`].
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] for invalid capacities or probabilities.
    ///
    /// # Panics
    ///
    /// Panics if `link_bandwidth.len()` does not match the topology's
    /// link count, or `ncp_memory` has a mismatched length.
    pub fn build(&self) -> Result<Network, ModelError> {
        let n = self.ncp_cpu.len();
        assert!(n >= 2, "topologies need at least two NCPs");
        assert_eq!(
            self.link_bandwidth.len(),
            link_count(self.kind, n),
            "one bandwidth per link"
        );
        if let Some(mem) = &self.ncp_memory {
            assert_eq!(mem.len(), n, "one memory capacity per NCP");
        }
        let mut b = NetworkBuilder::new();
        b.name(format!("{}-{}", self.kind, n));
        let ids: Vec<NcpId> = (0..n)
            .map(|i| {
                let cap = match &self.ncp_memory {
                    Some(mem) => ResourceVec::cpu_memory(self.ncp_cpu[i], mem[i]),
                    None => ResourceVec::cpu(self.ncp_cpu[i]),
                };
                b.add_ncp_with_failure(format!("ncp{i}"), cap, self.ncp_failure)
            })
            .collect::<Result<_, _>>()?;
        let mut bw = self.link_bandwidth.iter().copied();
        let mut add = |b: &mut NetworkBuilder, x: NcpId, y: NcpId| -> Result<(), ModelError> {
            let bandwidth = bw.next().expect("bandwidth count checked above");
            b.add_link_full(
                format!("l-{}-{}", x.index(), y.index()),
                x,
                y,
                bandwidth,
                sparcle_model::LinkDirection::Undirected,
                self.link_failure,
            )?;
            Ok(())
        };
        match self.kind {
            TopologyKind::Star => {
                for &leaf in &ids[1..] {
                    add(&mut b, ids[0], leaf)?;
                }
            }
            TopologyKind::Linear => {
                for w in ids.windows(2) {
                    add(&mut b, w[0], w[1])?;
                }
            }
            TopologyKind::FullyConnected => {
                for i in 0..n {
                    for j in i + 1..n {
                        add(&mut b, ids[i], ids[j])?;
                    }
                }
            }
        }
        b.build()
    }
}

/// Number of links each topology kind uses for `n` NCPs.
pub fn link_count(kind: TopologyKind, n: usize) -> usize {
    match kind {
        TopologyKind::Star => n - 1,
        TopologyKind::Linear => n - 1,
        TopologyKind::FullyConnected => n * (n - 1) / 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_hub_touches_everyone() {
        let net = TopologySpec::uniform(TopologyKind::Star, 8, 100.0, 10.0)
            .build()
            .unwrap();
        assert_eq!(net.ncp_count(), 8);
        assert_eq!(net.link_count(), 7);
        assert_eq!(net.neighbors(NcpId::new(0)).count(), 7);
        assert_eq!(net.neighbors(NcpId::new(3)).count(), 1);
        assert!(net.all_reachable_from(NcpId::new(5)));
    }

    #[test]
    fn linear_is_a_chain() {
        let net = TopologySpec::uniform(TopologyKind::Linear, 5, 100.0, 10.0)
            .build()
            .unwrap();
        assert_eq!(net.link_count(), 4);
        assert_eq!(net.neighbors(NcpId::new(0)).count(), 1);
        assert_eq!(net.neighbors(NcpId::new(2)).count(), 2);
    }

    #[test]
    fn full_mesh_links() {
        let net = TopologySpec::uniform(TopologyKind::FullyConnected, 6, 100.0, 10.0)
            .build()
            .unwrap();
        assert_eq!(net.link_count(), 15);
        for ncp in net.ncp_ids() {
            assert_eq!(net.neighbors(ncp).count(), 5);
        }
    }

    #[test]
    fn per_element_capacities_apply() {
        let spec = TopologySpec {
            kind: TopologyKind::Linear,
            ncp_cpu: vec![10.0, 20.0, 30.0],
            ncp_memory: Some(vec![1.0, 2.0, 3.0]),
            link_bandwidth: vec![5.0, 6.0],
            ncp_failure: 0.01,
            link_failure: 0.02,
        };
        let net = spec.build().unwrap();
        assert_eq!(
            net.ncp(NcpId::new(1))
                .capacity()
                .amount(sparcle_model::ResourceKind::Memory),
            2.0
        );
        assert_eq!(net.link(sparcle_model::LinkId::new(1)).bandwidth(), 6.0);
        assert_eq!(net.ncp(NcpId::new(0)).failure_probability(), 0.01);
        assert_eq!(
            net.link(sparcle_model::LinkId::new(0))
                .failure_probability(),
            0.02
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(TopologyKind::Star.to_string(), "star");
        assert_eq!(TopologyKind::FullyConnected.to_string(), "fully-connected");
    }
}
