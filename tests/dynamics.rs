//! Integration tests for system dynamics: arrivals, departures, and
//! capacity fluctuation across the full stack.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sparcle::core::{Admission, SparcleSystem};
use sparcle::model::QoeClass;
use sparcle::sim::FluctuationModel;
use sparcle::workloads::{BottleneckCase, GraphKind, ScenarioConfig, TopologyKind};

fn cfg() -> ScenarioConfig {
    ScenarioConfig::new(
        BottleneckCase::Balanced,
        GraphKind::Linear { stages: 2 },
        TopologyKind::Star,
    )
}

/// A churn sequence of arrivals and departures never leaves the system
/// inconsistent: BE rates stay positive and jointly feasible, GR
/// residual capacity is restored exactly on departures.
#[test]
fn churn_preserves_invariants() {
    let mut rng = StdRng::seed_from_u64(0xc0c0);
    let scenario = cfg().sample(&mut rng).unwrap();
    let mut system = SparcleSystem::new(scenario.network.clone());
    let full = scenario.network.capacity_map();

    let mut live_ids = Vec::new();
    for round in 0..12 {
        // Arrivals: alternate BE and GR.
        let app = cfg().sample(&mut rng).unwrap().app;
        let app = if round % 2 == 0 {
            app.with_qoe(QoeClass::best_effort(1.0 + (round % 3) as f64))
                .unwrap()
        } else {
            app.with_qoe(QoeClass::guaranteed_rate(0.2, 0.5)).unwrap()
        };
        if let Admission::Admitted(id) = system.submit(app).unwrap() {
            live_ids.push(id);
        }
        // Departures: every third round the oldest app leaves.
        if round % 3 == 2 && !live_ids.is_empty() {
            let id = live_ids.remove(0);
            assert!(system.remove(id));
        }
        // Invariants after every step.
        for be in system.be_apps() {
            assert!(
                be.allocated_rate > 0.0,
                "BE app {} starved after round {round}",
                be.id
            );
        }
        for ncp in scenario.network.ncp_ids() {
            for (kind, residual) in system.gr_residual().ncp(ncp).iter() {
                let cap = full.ncp(ncp).amount(kind);
                assert!(
                    residual <= cap + 1e-9,
                    "residual above capacity on {ncp}: {residual} > {cap}"
                );
            }
        }
    }

    // Drain everything: residual returns to the full map.
    for id in live_ids {
        system.remove(id);
    }
    for ncp in scenario.network.ncp_ids() {
        for (kind, residual) in system.gr_residual().ncp(ncp).iter() {
            let cap = full.ncp(ncp).amount(kind);
            assert!(
                (residual - cap).abs() < 1e-6 * cap.max(1.0),
                "capacity not restored on {ncp}"
            );
        }
    }
}

/// Under continuous fluctuation, adaptive re-allocation keeps every
/// epoch's BE rates feasible against that epoch's capacities.
#[test]
fn fluctuating_capacities_stay_feasible() {
    let mut rng = StdRng::seed_from_u64(0xf10c);
    let scenario = cfg().sample(&mut rng).unwrap();
    let mut system = SparcleSystem::new(scenario.network.clone());
    for _ in 0..3 {
        let app = cfg().sample(&mut rng).unwrap().app;
        system.submit(app).unwrap();
    }
    let model = FluctuationModel {
        floor: 0.5,
        step: 0.2,
        seed: 9,
    };
    let mut series = model.series(&scenario.network);
    for _ in 0..50 {
        let caps = series.step();
        system.apply_capacity_fluctuation(caps.clone());
        // Joint demand of all BE apps at their allocated rates fits.
        let mut demand = sparcle::model::LoadMap::zeroed(&scenario.network);
        for be in system.be_apps() {
            demand.merge_scaled(&be.combined_load, be.allocated_rate);
        }
        assert!(
            caps.bottleneck_rate(&demand) >= 1.0 - 1e-6,
            "allocation infeasible under fluctuation"
        );
    }
}

/// Random-DAG applications flow through the whole pipeline too.
#[test]
fn random_graphs_schedule_end_to_end() {
    let mut config = cfg();
    config.graph = GraphKind::Random { cts: 4 };
    let mut rng = StdRng::seed_from_u64(0xda6);
    for _ in 0..5 {
        let scenario = config.sample(&mut rng).unwrap();
        let mut system = SparcleSystem::new(scenario.network.clone());
        let admission = system.submit(scenario.app).unwrap();
        assert!(admission.is_admitted());
        let be = &system.be_apps()[0];
        assert!(be.allocated_rate > 0.0);
        be.paths[0]
            .placement
            .validate(be.app.graph(), &scenario.network)
            .unwrap();
    }
}
