//! Cross-representation differential suite: Legacy adjacency vs CSR.
//!
//! The CSR graph core (`sparcle_model::CsrNetwork` + the bucketed
//! widest-path queue) promises to be a *pure speedup*: for every
//! scenario, thread count, and telemetry stream, assignments under
//! `GraphRepr::Csr` are byte-identical to `GraphRepr::Legacy` — same
//! CT→NCP placements, same TT routes, bit-identical bottleneck rates,
//! same rejection reasons, same decision/commit event logs and
//! counters. This suite holds it to that over the same seeded scenario
//! grid as `parallel_equivalence.rs`, plus the fig6 testbed, the
//! scaling_assign benchmark point, and a hub-and-spoke scale topology.
//!
//! It also pins the γ-row adoption safety contract: exported rows are
//! stamped with the network's build generation, so a *rebuilt* (even
//! identically shaped) topology refuses adoption instead of aliasing
//! dense element ids across builds.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sparcle_core::{AssignError, AssignedPath, DynamicRankingAssigner, GraphRepr, PlacementEngine};
use sparcle_model::{Application, CapacityMap, Network, QoeClass};
use sparcle_workloads::face_detection::{face_detection_app, testbed_network};
use sparcle_workloads::{
    BottleneckCase, GraphKind, ScaleSpec, Scenario, ScenarioConfig, TopologyKind,
};

/// The seeded scenario grid shared with `parallel_equivalence.rs`:
/// 3 graph families × 3 topologies × 4 bottleneck regimes.
fn scenario_grid() -> Vec<(String, Scenario)> {
    let graphs = [
        GraphKind::Linear { stages: 5 },
        GraphKind::Diamond,
        GraphKind::Random { cts: 7 },
    ];
    let cases = BottleneckCase::SINGLE_RESOURCE
        .into_iter()
        .chain([BottleneckCase::MemoryBottleneck]);
    let mut out = Vec::new();
    let mut seed = 0xc5a0;
    for case in cases {
        for &graph in &graphs {
            for &topology in &TopologyKind::ALL {
                if case == BottleneckCase::MemoryBottleneck
                    && matches!(graph, GraphKind::Random { .. })
                {
                    continue;
                }
                seed += 1;
                let mut cfg = ScenarioConfig::new(case, graph, topology);
                cfg.ncps = 10;
                let scenario = cfg
                    .sample(&mut StdRng::seed_from_u64(seed as u64))
                    .expect("valid scenario config");
                out.push((format!("{case}/{graph}/{topology}/seed{seed}"), scenario));
            }
        }
    }
    assert!(out.len() >= 20, "grid too small: {}", out.len());
    out
}

/// Named (app, network) pairs beyond the random grid: the benchmark
/// workloads the CSR port explicitly targets.
fn named_scenarios() -> Vec<(String, Application, Network)> {
    let mut out = Vec::new();
    for &bw in &[0.5, 10.0, 22.0] {
        out.push((
            format!("fig6/testbed@{bw}Mbps"),
            face_detection_app(QoeClass::best_effort(1.0)).expect("valid workload"),
            testbed_network(bw),
        ));
    }
    let scaling = {
        let mut c = ScenarioConfig::new(
            BottleneckCase::Balanced,
            GraphKind::Linear { stages: 8 },
            TopologyKind::Star,
        );
        c.ncps = 32;
        c.sample(&mut StdRng::seed_from_u64(1))
            .expect("valid scenario")
    };
    out.push((
        "scaling_assign/star32".to_owned(),
        scaling.app,
        scaling.network,
    ));
    let scale = ScaleSpec::new(300).build().expect("valid scale scenario");
    out.push((
        "scale/hub-and-spoke300".to_owned(),
        scale.app,
        scale.network,
    ));
    out
}

fn assert_identical(label: &str, legacy: &AssignedPath, csr: &AssignedPath, variant: &str) {
    assert_eq!(
        legacy.placement, csr.placement,
        "{label}: {variant} CSR placement (hosts or routes) diverged from legacy"
    );
    assert_eq!(
        legacy.rate.to_bits(),
        csr.rate.to_bits(),
        "{label}: {variant} CSR rate {} is not bit-identical to legacy {}",
        csr.rate,
        legacy.rate
    );
}

fn compare_reprs(label: &str, app: &Application, network: &Network, caps: &CapacityMap) -> bool {
    let mut any_ok = false;
    for threads in [1usize, 2, 8] {
        let run = |repr| {
            DynamicRankingAssigner::with_threads(threads)
                .with_repr(repr)
                .assign(app, network, caps)
        };
        let legacy = run(GraphRepr::Legacy);
        let csr = run(GraphRepr::Csr);
        match (&legacy, &csr) {
            (Ok(l), Ok(c)) => {
                assert_identical(label, l, c, &format!("threads={threads}"));
                any_ok = true;
            }
            (Err(le), Err(ce)) => assert_eq!(
                le, ce,
                "{label}: threads={threads} CSR failed differently from legacy"
            ),
            (l, c) => panic!(
                "{label}: threads={threads} representations disagreed on feasibility: \
                 legacy {l:?} vs csr {c:?}"
            ),
        }
    }
    any_ok
}

#[test]
fn csr_matches_legacy_on_the_scenario_grid() {
    let mut compared = 0;
    for (label, scenario) in scenario_grid() {
        let caps = scenario.network.capacity_map();
        if compare_reprs(&label, &scenario.app, &scenario.network, &caps) {
            compared += 1;
        }
    }
    assert!(compared >= 20, "too few feasible comparisons: {compared}");
}

#[test]
fn csr_matches_legacy_on_benchmark_workloads() {
    for (label, app, network) in named_scenarios() {
        let caps = network.capacity_map();
        assert!(
            compare_reprs(&label, &app, &network, &caps),
            "{label}: benchmark workload must be assignable"
        );
    }
}

/// The reference (uncached) scan runs on the legacy representation; the
/// default assigner is cached + CSR. They must still agree — this is
/// the triangle `reference/legacy ≡ cached/legacy ≡ cached/csr` closed.
#[test]
fn default_csr_assigner_matches_legacy_reference_scan() {
    assert_eq!(DynamicRankingAssigner::new().repr(), GraphRepr::Csr);
    assert_eq!(
        DynamicRankingAssigner::reference().repr(),
        GraphRepr::Legacy
    );
    for (label, scenario) in scenario_grid().into_iter().step_by(4) {
        let caps = scenario.network.capacity_map();
        let reference =
            DynamicRankingAssigner::reference().assign(&scenario.app, &scenario.network, &caps);
        let csr = DynamicRankingAssigner::new().assign(&scenario.app, &scenario.network, &caps);
        match (&reference, &csr) {
            (Ok(r), Ok(c)) => assert_identical(&label, r, c, "default-csr"),
            (Err(re), Err(ce)) => assert_eq!(re, ce, "{label}: errors diverged"),
            (r, c) => panic!("{label}: feasibility diverged: {r:?} vs {c:?}"),
        }
    }
}

/// Telemetry must not leak the representation either: decision/commit
/// event streams and every counter (commits, γ-cache hits/misses,
/// invalidations) are identical under Legacy and Csr, at one and eight
/// threads. Only timing histograms may differ.
#[cfg(feature = "telemetry")]
#[test]
fn telemetry_streams_identical_across_representations() {
    use sparcle_core::TraceHandle;
    use sparcle_telemetry::CollectRecorder;

    let mut scenarios = named_scenarios();
    scenarios.truncate(5);
    for (label, app, network) in scenarios {
        let caps = network.capacity_map();
        for threads in [1usize, 8] {
            let run = |repr| {
                let recorder = CollectRecorder::new();
                DynamicRankingAssigner::with_threads(threads)
                    .with_repr(repr)
                    .assign_with_trace(&app, &network, &caps, TraceHandle::new(&recorder))
                    .expect("named scenarios are feasible");
                (recorder.events(), recorder.snapshot())
            };
            let (events_l, snap_l) = run(GraphRepr::Legacy);
            let (events_c, snap_c) = run(GraphRepr::Csr);
            assert_eq!(
                events_l, events_c,
                "{label}: threads={threads} event streams diverged across representations"
            );
            assert_eq!(
                snap_l.counters, snap_c.counters,
                "{label}: threads={threads} counters diverged across representations"
            );
        }
    }
}

/// Infeasible instances fail identically across representations: the
/// CSR router must report the same `NoRoute` the legacy router does.
#[test]
fn infeasible_scenarios_fail_identically_across_representations() {
    use sparcle_model::{NetworkBuilder, ResourceVec, TaskGraphBuilder};
    let mut tb = TaskGraphBuilder::new();
    let s = tb.add_ct("s", ResourceVec::new());
    let w = tb.add_ct("w", ResourceVec::cpu(5.0));
    let t = tb.add_ct("t", ResourceVec::new());
    tb.add_tt("a", s, w, 2.0).unwrap();
    tb.add_tt("b", w, t, 2.0).unwrap();
    let mut nb = NetworkBuilder::new();
    let n0 = nb.add_ncp("n0", ResourceVec::cpu(50.0));
    let n1 = nb.add_ncp("n1", ResourceVec::cpu(50.0));
    let n2 = nb.add_ncp("n2", ResourceVec::cpu(50.0));
    nb.add_link("l0", n0, n1, 100.0).unwrap();
    // n2 is an island.
    let net = nb.build().unwrap();
    let app = Application::new(
        tb.build().unwrap(),
        QoeClass::best_effort(1.0),
        [(s, n0), (t, n2)],
    )
    .unwrap();
    let caps = net.capacity_map();
    let legacy = DynamicRankingAssigner::new()
        .with_repr(GraphRepr::Legacy)
        .assign(&app, &net, &caps);
    for threads in [1, 2, 8] {
        let csr = DynamicRankingAssigner::with_threads(threads)
            .with_repr(GraphRepr::Csr)
            .assign(&app, &net, &caps);
        match (&legacy, &csr) {
            (Err(AssignError::NoRoute { .. }), Err(AssignError::NoRoute { .. })) => {}
            (Err(le), Err(ce)) => assert_eq!(le, ce),
            (l, c) => panic!("feasibility diverged: {l:?} vs {c:?}"),
        }
    }
}

/// γ-row adoption is generation-fenced: rows exported from one engine
/// seed another engine over the *same* network build (same generation),
/// but a rebuilt topology — even one with byte-identical shape and
/// capacities — gets a fresh generation and must refuse the rows. The
/// refusal also cannot change results: the refusing engine recomputes
/// cold and commits the exact same assignment.
#[test]
fn gamma_row_adoption_is_fenced_by_network_generation() {
    let build = || ScaleSpec::new(120).build().expect("valid scale scenario");
    let a = build();
    let b = build();
    assert_eq!(a.network, b.network, "identical specs build equal networks");
    assert_ne!(
        a.network.generation(),
        b.network.generation(),
        "every build gets a fresh generation"
    );

    let caps = a.network.capacity_map();
    let rows = {
        let mut seeder = PlacementEngine::new(&a.app, &a.network, &caps).expect("assignable");
        seeder.rank_round(1).expect("rankable");
        seeder
            .export_rows()
            .expect("rows exportable before unpinned commits")
    };
    assert!(rows.present() > 0, "seeder computed at least one γ row");

    let drive = |network: &Network, adopt: Option<&sparcle_core::GammaRows>| {
        let mut engine = PlacementEngine::new(&a.app, network, &caps).expect("assignable");
        let adopted = adopt.map(|r| engine.adopt_rows(r));
        while let Some((ct, host, _)) = engine.rank_round(1).expect("rankable") {
            engine.commit(ct, host).expect("committable");
        }
        (engine.finish().expect("assignable"), adopted)
    };

    // Same build: adoption takes, and the result matches a cold engine.
    let (cold, _) = drive(&a.network, None);
    let (warm, adopted_same) = drive(&a.network, Some(&rows));
    assert_eq!(adopted_same, Some(rows.present()), "same-build rows adopt");
    assert_identical("adoption/same-build", &cold, &warm, "warm");

    // Rebuilt topology: adoption must be refused wholesale...
    let (rebuilt, adopted_rebuilt) = drive(&b.network, Some(&rows));
    assert_eq!(
        adopted_rebuilt,
        Some(0),
        "rows from another build generation must not be adopted"
    );
    // ...and the refusing engine still produces the identical result.
    assert_identical("adoption/rebuilt", &cold, &rebuilt, "rebuilt");
}
