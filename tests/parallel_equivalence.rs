//! Differential determinism suite for the cached/parallel γ evaluator.
//!
//! The placement engine promises (see `sparcle_core::engine` module docs)
//! that the incrementally-cached, optionally multi-threaded Algorithm-2
//! path commits *exactly* the placements of the uncached serial reference
//! scan — same CT→NCP mapping, same TT routes, bit-identical bottleneck
//! rate — for every worker-thread count. This suite holds it to that over
//! a grid of seeded random scenarios spanning every bottleneck regime,
//! task-graph family, and topology the workload generator produces.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sparcle_core::{AssignError, AssignedPath, DynamicRankingAssigner};
use sparcle_workloads::{BottleneckCase, GraphKind, Scenario, ScenarioConfig, TopologyKind};

/// The seeded scenario grid: 3 graph families × 3 topologies × 4
/// bottleneck regimes with interleaved seeds — 36 scenarios, comfortably
/// above the 20 the determinism contract calls for.
fn scenario_grid() -> Vec<(String, Scenario)> {
    let graphs = [
        GraphKind::Linear { stages: 5 },
        GraphKind::Diamond,
        GraphKind::Random { cts: 7 },
    ];
    let cases = BottleneckCase::SINGLE_RESOURCE
        .into_iter()
        .chain([BottleneckCase::MemoryBottleneck]);
    let mut out = Vec::new();
    let mut seed = 0x5bac1e;
    for case in cases {
        for &graph in &graphs {
            for &topology in &TopologyKind::ALL {
                // Memory requirements are CPU-only on random graphs, so
                // that regime sticks to the paper's two shapes.
                if case == BottleneckCase::MemoryBottleneck
                    && matches!(graph, GraphKind::Random { .. })
                {
                    continue;
                }
                seed += 1;
                let mut cfg = ScenarioConfig::new(case, graph, topology);
                cfg.ncps = 10;
                let scenario = cfg
                    .sample(&mut StdRng::seed_from_u64(seed as u64))
                    .expect("valid scenario config");
                out.push((format!("{case}/{graph}/{topology}/seed{seed}"), scenario));
            }
        }
    }
    assert!(out.len() >= 20, "grid too small: {}", out.len());
    out
}

fn assert_identical(label: &str, reference: &AssignedPath, other: &AssignedPath, variant: &str) {
    assert_eq!(
        reference.placement, other.placement,
        "{label}: {variant} placement (hosts or routes) diverged from the reference scan"
    );
    assert_eq!(
        reference.rate.to_bits(),
        other.rate.to_bits(),
        "{label}: {variant} rate {} is not bit-identical to reference {}",
        other.rate,
        reference.rate
    );
}

#[test]
fn cached_engine_matches_reference_at_every_thread_count() {
    let mut compared = 0;
    for (label, scenario) in scenario_grid() {
        let caps = scenario.network.capacity_map();
        let reference =
            DynamicRankingAssigner::reference().assign(&scenario.app, &scenario.network, &caps);
        for threads in [1, 2, 8] {
            let cached = DynamicRankingAssigner::with_threads(threads).assign(
                &scenario.app,
                &scenario.network,
                &caps,
            );
            match (&reference, &cached) {
                (Ok(r), Ok(c)) => {
                    assert_identical(&label, r, c, &format!("threads={threads}"));
                    compared += 1;
                }
                (Err(re), Err(ce)) => assert_eq!(
                    re, ce,
                    "{label}: threads={threads} failed differently from the reference"
                ),
                (r, c) => panic!(
                    "{label}: threads={threads} disagreed on feasibility: \
                     reference {r:?} vs cached {c:?}"
                ),
            }
        }
    }
    assert!(
        compared >= 20 * 3,
        "too few successful comparisons: {compared}"
    );
}

/// TT routes specifically: `Placement` equality already covers them, but
/// route divergence is the likeliest failure mode of the shared
/// commit-time scratch, so check them one TT at a time with a pointed
/// message.
#[test]
fn tt_routes_are_identical_across_modes() {
    for (label, scenario) in scenario_grid().into_iter().take(8) {
        let caps = scenario.network.capacity_map();
        let reference = DynamicRankingAssigner::reference()
            .assign(&scenario.app, &scenario.network, &caps)
            .expect("grid head scenarios are feasible");
        let cached = DynamicRankingAssigner::with_threads(8)
            .assign(&scenario.app, &scenario.network, &caps)
            .expect("grid head scenarios are feasible");
        for tt in scenario.app.graph().tt_ids() {
            assert_eq!(
                reference.placement.tt_route(tt),
                cached.placement.tt_route(tt),
                "{label}: route for {tt} diverged"
            );
        }
    }
}

/// The default assigner is the cached single-threaded mode and must also
/// agree with the reference — this is what every other test and binary in
/// the workspace implicitly relies on.
#[test]
fn default_assigner_is_cached_and_equivalent() {
    assert_eq!(
        DynamicRankingAssigner::new().mode(),
        sparcle_core::EvalMode::Cached { threads: 1 }
    );
    for (label, scenario) in scenario_grid().into_iter().step_by(3) {
        let caps = scenario.network.capacity_map();
        let reference =
            DynamicRankingAssigner::reference().assign(&scenario.app, &scenario.network, &caps);
        let default = DynamicRankingAssigner::new().assign(&scenario.app, &scenario.network, &caps);
        match (&reference, &default) {
            (Ok(r), Ok(d)) => assert_identical(&label, r, d, "default"),
            (Err(re), Err(de)) => assert_eq!(re, de, "{label}: errors diverged"),
            (r, d) => panic!("{label}: feasibility diverged: {r:?} vs {d:?}"),
        }
    }
}

/// The telemetry stream obeys the same contract as the placements: the
/// decision trace (candidate sets, chosen host, γ, tie-break reasons)
/// and every counter (commits, γ-cache hits/misses, both invalidation
/// rules) must be identical whether rows are filled by one worker
/// thread or eight. Only the timing histograms may differ — they hold
/// wall-clock samples and never enter the trace.
#[cfg(feature = "telemetry")]
#[test]
fn decision_traces_and_counters_identical_across_thread_counts() {
    use sparcle_core::TraceHandle;
    use sparcle_telemetry::{CollectRecorder, Event};

    for (label, scenario) in scenario_grid().into_iter().take(8) {
        let caps = scenario.network.capacity_map();
        let run = |threads: usize| {
            let recorder = CollectRecorder::new();
            DynamicRankingAssigner::with_threads(threads)
                .assign_with_trace(
                    &scenario.app,
                    &scenario.network,
                    &caps,
                    TraceHandle::new(&recorder),
                )
                .expect("grid head scenarios are feasible");
            (recorder.events(), recorder.snapshot())
        };
        let (events_1, snap_1) = run(1);
        let (events_8, snap_8) = run(8);
        assert_eq!(
            events_1, events_8,
            "{label}: decision/commit event streams diverged across thread counts"
        );
        assert_eq!(
            snap_1.counters, snap_8.counters,
            "{label}: counters diverged across thread counts"
        );
        // The streams must actually carry the assignment: one decision
        // per ranked CT, one commit per placed CT (ranked + pinned),
        // with live cache counters.
        let decisions = events_1
            .iter()
            .filter(|e| matches!(e, Event::Decision(_)))
            .count();
        let commits = events_1
            .iter()
            .filter(|e| matches!(e, Event::Commit(_)))
            .count();
        assert!(decisions > 0, "{label}: no decisions traced");
        assert!(
            commits >= decisions,
            "{label}: fewer commits ({commits}) than ranking rounds ({decisions})"
        );
        assert_eq!(snap_1.counter("engine.commits"), commits as u64, "{label}");
        assert!(
            snap_1.counter("gamma_cache.hits") + snap_1.counter("gamma_cache.misses") > 0,
            "{label}: γ-cache counters silent"
        );
    }
}

/// Infeasible instances must fail identically too: the cached scan's
/// `NoHostForCt` must name the same CT the reference scan stops at.
#[test]
fn infeasible_scenarios_fail_identically() {
    // A linear 3-NCP chain whose middle link is dead cannot route the
    // pipeline between endpoints pinned on opposite ends.
    use sparcle_model::{Application, NetworkBuilder, QoeClass, ResourceVec, TaskGraphBuilder};
    let mut tb = TaskGraphBuilder::new();
    let s = tb.add_ct("s", ResourceVec::new());
    let w1 = tb.add_ct("w1", ResourceVec::cpu(5.0));
    let w2 = tb.add_ct("w2", ResourceVec::cpu(5.0));
    let t = tb.add_ct("t", ResourceVec::new());
    tb.add_tt("a", s, w1, 2.0).unwrap();
    tb.add_tt("b", w1, w2, 2.0).unwrap();
    tb.add_tt("c", w2, t, 2.0).unwrap();
    let mut nb = NetworkBuilder::new();
    let n0 = nb.add_ncp("n0", ResourceVec::cpu(50.0));
    let _n1 = nb.add_ncp("n1", ResourceVec::cpu(50.0));
    let n2 = nb.add_ncp("n2", ResourceVec::cpu(50.0));
    nb.add_link("l0", n0, _n1, 100.0).unwrap();
    // n2 is an island.
    let net = nb.build().unwrap();
    let app = Application::new(
        tb.build().unwrap(),
        QoeClass::best_effort(1.0),
        [(s, n0), (t, n2)],
    )
    .unwrap();
    let caps = net.capacity_map();
    let reference = DynamicRankingAssigner::reference().assign(&app, &net, &caps);
    for threads in [1, 2, 8] {
        let cached = DynamicRankingAssigner::with_threads(threads).assign(&app, &net, &caps);
        match (&reference, &cached) {
            (Err(AssignError::NoRoute { .. }), Err(AssignError::NoRoute { .. })) => {}
            (Err(re), Err(ce)) => assert_eq!(re, ce),
            (r, c) => panic!("feasibility diverged: {r:?} vs {c:?}"),
        }
    }
}
