//! The decision-provenance contract, end to end.
//!
//! Every telemetry event carries a recorder-assigned monotonic `id`,
//! and every caused event lists `causes` whose ids are strictly
//! smaller — so cause chains are acyclic *by construction*, a property
//! this suite checks over seed-varied runtime and service timelines
//! rather than on a fixture. On top of that sits the user-facing
//! guarantee: `sparcle-trace explain` reconstructs a complete,
//! cause-linked lifecycle for any subject (no orphan hops), and its
//! output is byte-identical whether the γ evaluator ran with 1, 2, or
//! 8 worker threads — provenance obeys the same determinism contract
//! as the event log itself.

#![cfg(feature = "telemetry")]

use proptest::prelude::*;
use sparcle_core::{SystemConfig, TraceHandle};
use sparcle_model::{
    Application, LinkDirection, NcpId, Network, NetworkBuilder, QoeClass, ResourceVec,
};
use sparcle_runtime::{FluctuationConfig, ReconcilePolicy, RuntimeConfig, SparcleRuntime};
use sparcle_service::{AdmissionService, ServiceConfig, SolveCostModel};
use sparcle_sim::FluctuationModel;
use sparcle_telemetry::{CollectRecorder, StampedEvent};
use sparcle_trace_tools::explain::{explain, pick_lineage, Selector};
use sparcle_trace_tools::load_trace;
use sparcle_workloads::graphs::linear_task_graph;
use sparcle_workloads::{ArrivalTrace, RequestStream};

/// Two routes between the pinned endpoints, flaky links on the primary
/// one so the churn timeline produces displacements and readmissions.
fn churn_network() -> Network {
    let mut b = NetworkBuilder::new();
    let src = b.add_ncp("src-host", ResourceVec::cpu(10.0));
    let hub = b.add_ncp("hub", ResourceVec::cpu(1000.0));
    let sink = b.add_ncp("sink-host", ResourceVec::cpu(10.0));
    let alt = b.add_ncp("alt", ResourceVec::cpu(800.0));
    b.add_link_full("l0", src, hub, 1e4, LinkDirection::Undirected, 0.15)
        .unwrap();
    b.add_link_full("l1", hub, sink, 1e4, LinkDirection::Undirected, 0.15)
        .unwrap();
    b.add_link("l2", src, alt, 1e4).unwrap();
    b.add_link("l3", alt, sink, 1e4).unwrap();
    b.build().unwrap()
}

fn churn_app(index: u64) -> Application {
    let graph = linear_task_graph(&[50.0], &[1000.0, 500.0]).unwrap();
    let (src, sink) = (graph.sources()[0], graph.sinks()[0]);
    let qoe = if index.is_multiple_of(3) {
        QoeClass::guaranteed_rate(2.0, 0.5)
    } else {
        QoeClass::best_effort(1.0 + (index % 4) as f64)
    };
    Application::new(graph, qoe, [(src, NcpId::new(0)), (sink, NcpId::new(2))]).unwrap()
}

/// One traced churn-runtime run; the γ-impact policy plus capacity
/// fluctuation exercises displace → reconcile → readmit chains.
fn runtime_events(threads: usize, failure_seed: u64, arrival_seed: u64) -> CollectRecorder {
    let mut config = RuntimeConfig {
        horizon: 60.0,
        failure_seed,
        hold_seed: 7,
        mean_hold: 12.0,
        policy: ReconcilePolicy::GammaImpact,
        fluctuation: Some(FluctuationConfig {
            model: FluctuationModel {
                floor: 0.5,
                step: 0.1,
                seed: 5,
            },
            period: 4.0,
        }),
        ..RuntimeConfig::default()
    };
    config.system.assigner_threads = threads;
    let arrivals = ArrivalTrace::Poisson { rate: 0.8 }.events(config.horizon, arrival_seed);
    let mut rt = SparcleRuntime::new(churn_network(), arrivals, churn_app, config);
    let recorder = CollectRecorder::new();
    rt.run_traced(TraceHandle::new(&recorder));
    recorder
}

/// One traced service run under a lossy config (real solve cost,
/// bounded queue, one defer window) so the stream produces admissions,
/// rejections, deferrals, *and* sheds.
fn service_events(threads: usize, stream_seed: u64) -> CollectRecorder {
    let config = ServiceConfig {
        batch_window: 0.5,
        queue_capacity: 16,
        max_defer_windows: 1,
        solve_cost: SolveCostModel {
            fixed: 1.2,
            per_request: 0.05,
        },
        system: SystemConfig {
            assigner_threads: threads,
            ..SystemConfig::default()
        },
        ..ServiceConfig::default()
    };
    let stream = RequestStream::new(
        ArrivalTrace::FlashCrowd {
            rate: 1.0,
            burst_rate: 10.0,
            burst_start: 10.0,
            burst_end: 30.0,
        },
        45.0,
        stream_seed,
    )
    .with_probe_every(7);
    let recorder = CollectRecorder::new();
    let mut service = AdmissionService::new(churn_network(), config, churn_app);
    service.run_traced(stream, TraceHandle::new(&recorder));
    recorder
}

/// The structural invariant behind acyclicity: recorder ids are dense
/// and strictly increasing, and every cause points strictly backward
/// to a real event — no zero, no forward, no self reference.
fn assert_chains_point_backward(stamped: &[StampedEvent]) {
    let mut caused = 0usize;
    for (i, s) in stamped.iter().enumerate() {
        assert_eq!(
            s.id,
            i as u64 + 1,
            "recorder ids must be dense, starting at 1"
        );
        caused += usize::from(!s.causes.is_empty());
        for &cause in &s.causes {
            assert!(
                cause >= 1 && cause < s.id,
                "event #{} ({}) cites cause #{cause}; causes must point \
                 strictly backward",
                s.id,
                s.event.kind()
            );
        }
    }
    assert!(caused > 0, "timeline produced no caused events at all");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Cause chains are acyclic on every seed, not just the pinned one:
    /// each cause id is strictly smaller than the event it explains, so
    /// following causes always terminates at a root.
    #[test]
    fn runtime_cause_chains_are_acyclic(
        failure_seed in 1u64..200,
        arrival_seed in 1u64..200,
    ) {
        let recorder = runtime_events(1, failure_seed, arrival_seed);
        assert_chains_point_backward(&recorder.stamped_events());
    }

    /// Same invariant for the service plane, whose chains are longer
    /// (ingest → defer → batch → decision) and include sheds.
    #[test]
    fn service_cause_chains_are_acyclic(stream_seed in 1u64..200) {
        let recorder = service_events(1, stream_seed);
        assert_chains_point_backward(&recorder.stamped_events());
    }
}

/// `explain` output for a churn-runtime subject is byte-identical
/// across γ-evaluator thread counts, and the reconstructed lifecycle is
/// complete: every hop reaches its arrival through cause links.
#[test]
fn runtime_explain_is_byte_identical_across_thread_counts() {
    let render = |threads: usize| -> Vec<String> {
        let events = load_trace(&runtime_events(threads, 11, 42).render_trace()).unwrap();
        ["admitted", "rejected"]
            .iter()
            .filter_map(|outcome| pick_lineage(&events, outcome))
            .map(|lineage| {
                let explanation = explain(&events, Selector::Lineage(lineage)).unwrap();
                assert!(
                    explanation.is_complete(),
                    "orphaned lifecycle for lineage {lineage}:\n{}",
                    explanation.render()
                );
                explanation.render()
            })
            .collect()
    };
    let single = render(1);
    assert!(
        !single.is_empty(),
        "timeline must decide at least one arrival"
    );
    for threads in [2, 8] {
        assert_eq!(
            single,
            render(threads),
            "explain output diverged between 1 and {threads} evaluator threads"
        );
    }
}

/// Same contract for the service plane, explained through both
/// selectors: an admitted request and a shed one (the hard case — a
/// shed's chain must thread through every defer back to its ingest).
#[test]
fn service_explain_is_byte_identical_across_thread_counts() {
    let render = |threads: usize| -> Vec<String> {
        let events = load_trace(&service_events(threads, 0x5eed).render_trace()).unwrap();
        ["admitted", "shed"]
            .iter()
            .map(|outcome| {
                let lineage = pick_lineage(&events, outcome)
                    .unwrap_or_else(|| panic!("stream produced no {outcome} decision"));
                let explanation = explain(&events, Selector::Lineage(lineage)).unwrap();
                assert!(
                    explanation.is_complete(),
                    "orphaned lifecycle for {outcome} lineage {lineage}:\n{}",
                    explanation.render()
                );
                explanation.render()
            })
            .collect()
    };
    let single = render(1);
    for threads in [2, 8] {
        assert_eq!(
            single,
            render(threads),
            "explain output diverged between 1 and {threads} evaluator threads"
        );
    }
}

/// The no-orphan guarantee is universal, not per-picked-subject: every
/// lineage the service ever ingested explains completely.
#[test]
fn every_service_lineage_explains_completely() {
    let events = load_trace(&service_events(1, 0x5eed).render_trace()).unwrap();
    let mut lineages = Vec::new();
    for event in &events {
        if event.get("type").and_then(sparcle_telemetry::Json::as_str) == Some("service_ingest") {
            if let Some(l) = event
                .get("lineage")
                .and_then(sparcle_telemetry::Json::as_num)
            {
                lineages.push(l as u64);
            }
        }
    }
    assert!(lineages.len() >= 20, "stream too small: {}", lineages.len());
    for lineage in lineages {
        let explanation = explain(&events, Selector::Lineage(lineage)).unwrap();
        assert!(
            explanation.is_complete(),
            "orphaned lifecycle for lineage {lineage}:\n{}",
            explanation.render()
        );
    }
}

/// Recording with provenance disabled still yields a valid, explainable
/// trace-free log: lines keep their ids (schema stays uniform) but no
/// causes are attached, and `explain` reports the absence rather than
/// fabricating a chain.
#[test]
fn provenance_off_drops_causes_but_keeps_ids() {
    let recorder = {
        let config = RuntimeConfig {
            horizon: 30.0,
            failure_seed: 11,
            hold_seed: 7,
            mean_hold: 12.0,
            policy: ReconcilePolicy::Fifo,
            ..RuntimeConfig::default()
        };
        let arrivals = ArrivalTrace::Poisson { rate: 0.8 }.events(config.horizon, 42);
        let mut rt = SparcleRuntime::new(churn_network(), arrivals, churn_app, config);
        let recorder = CollectRecorder::new();
        rt.run_traced(TraceHandle::new(&recorder).without_provenance());
        recorder
    };
    let stamped = recorder.stamped_events();
    assert!(!stamped.is_empty(), "base telemetry must still record");
    for (i, s) in stamped.iter().enumerate() {
        assert_eq!(s.id, i as u64 + 1, "ids survive provenance-off");
        assert!(s.causes.is_empty(), "causes must be dropped when off");
    }
    let events = load_trace(&recorder.render_trace()).unwrap();
    // Base lifecycle events (arrivals) still exist, so explain finds a
    // subject — but with every cause link stripped.
    let explanation = explain(&events, Selector::Lineage(0)).unwrap();
    assert!(explanation
        .timeline
        .iter()
        .all(|entry| entry.causes.is_empty()));
    // A lineage the run never saw names the likely culprit.
    let err = explain(&events, Selector::Lineage(u64::MAX)).expect_err("unknown subject");
    assert!(
        err.contains("without provenance"),
        "error should point at the provenance switch: {err}"
    );
}
