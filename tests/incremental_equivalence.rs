//! Differential suite for the incremental system-state core.
//!
//! `SparcleSystem` maintains its derived state (GR residual, BE
//! constraint matrix, priority loads) by **delta** under
//! `StateMaintenance::Incremental`, with every touched element
//! re-derived through the same canonical fold a from-scratch rebuild
//! uses. The contract (see `sparcle_core::state` module docs) is that
//! the incremental path is *bitwise indistinguishable* from the
//! scratch path: same admissions, same residuals, same BE rates, same
//! decision/event stream.
//!
//! This suite holds the two modes to that contract over full online
//! runtime histories — three arrival traces × two failure regimes,
//! with capacity fluctuation, displacement, and policy-ordered
//! re-placement all active — so every transactional mutation path
//! (submit, displace, readmit, reschedule, fluctuation, rollback) is
//! crossed thousands of times per run.

use sparcle_core::{SparcleSystem, StateMaintenance};
use sparcle_model::{
    Application, LinkDirection, NcpId, Network, NetworkBuilder, QoeClass, ResourceVec,
};
use sparcle_runtime::{
    FluctuationConfig, ReconcilePolicy, RuntimeConfig, SloLedger, SparcleRuntime,
};
use sparcle_sim::FluctuationModel;
use sparcle_workloads::graphs::linear_task_graph;
use sparcle_workloads::ArrivalTrace;

/// Four edge hosts and two hubs with flaky hub links — the same shape
/// as the churn experiment, small enough that a full history runs in
/// well under a second per mode.
fn grid_network(flaky: f64) -> Network {
    let mut b = NetworkBuilder::new();
    let edges: Vec<NcpId> = (0..4)
        .map(|i| b.add_ncp(format!("edge{i}"), ResourceVec::cpu(20.0)))
        .collect();
    let fast = b.add_ncp("hub-fast", ResourceVec::cpu(2000.0));
    let slow = b.add_ncp("hub-slow", ResourceVec::cpu(1500.0));
    for (i, &e) in edges.iter().enumerate() {
        b.add_link_full(
            format!("fast{i}"),
            e,
            fast,
            2e4,
            LinkDirection::Undirected,
            flaky,
        )
        .expect("valid link");
        b.add_link_full(
            format!("slow{i}"),
            e,
            slow,
            8e3,
            LinkDirection::Undirected,
            flaky / 4.0,
        )
        .expect("valid link");
    }
    b.build().expect("valid network")
}

/// Deterministic application mix: every third arrival Guaranteed-Rate,
/// BE priorities cycling 1..=4, endpoints walking the edge hosts.
fn grid_app(index: u64) -> Application {
    let graph = if index.is_multiple_of(2) {
        linear_task_graph(&[60.0], &[1200.0, 600.0])
    } else {
        linear_task_graph(&[40.0, 40.0], &[1000.0, 800.0, 400.0])
    }
    .expect("valid graph");
    let (src, sink) = (graph.sources()[0], graph.sinks()[0]);
    let qoe = if index.is_multiple_of(3) {
        QoeClass::guaranteed_rate(1.5, 0.5)
    } else {
        QoeClass::best_effort(1.0 + (index % 4) as f64)
    };
    Application::new(
        graph,
        qoe,
        [
            (src, NcpId::new((index % 4) as u32)),
            (sink, NcpId::new(((index + 1) % 4) as u32)),
        ],
    )
    .expect("valid app")
}

/// The trace × regime grid: 3 arrival shapes × calm/stormy failures.
fn grid() -> Vec<(String, ArrivalTrace, f64)> {
    let traces = [
        ("poisson", ArrivalTrace::Poisson { rate: 1.5 }),
        (
            "diurnal",
            ArrivalTrace::Diurnal {
                rate: 1.5,
                depth: 0.8,
                period: 40.0,
            },
        ),
        (
            "flash",
            ArrivalTrace::FlashCrowd {
                rate: 1.0,
                burst_rate: 4.0,
                burst_start: 40.0,
                burst_end: 60.0,
            },
        ),
    ];
    let regimes = [("calm", 0.02), ("stormy", 0.10)];
    let mut out = Vec::new();
    for (tn, trace) in &traces {
        for (rn, flaky) in &regimes {
            out.push((format!("{tn}/{rn}"), *trace, *flaky));
        }
    }
    out
}

/// Everything one runtime history observably produces.
struct RunOutput {
    ledger: SloLedger,
    events_processed: u64,
    /// Consumed system at end of run, for final-state comparison.
    system: SparcleSystem,
    #[cfg(feature = "telemetry")]
    event_log: String,
    #[cfg(feature = "telemetry")]
    counters: std::collections::BTreeMap<String, u64>,
}

fn run(trace: &ArrivalTrace, flaky: f64, maintenance: StateMaintenance) -> RunOutput {
    let mut config = RuntimeConfig {
        horizon: 90.0,
        failure_seed: 0xd1ff,
        hold_seed: 0x7e57,
        mean_hold: 15.0,
        policy: ReconcilePolicy::GammaImpact,
        fluctuation: Some(FluctuationConfig {
            model: FluctuationModel {
                floor: 0.6,
                step: 0.05,
                seed: 9,
            },
            period: 2.0,
        }),
        ..RuntimeConfig::default()
    };
    config.system.maintenance = maintenance;
    let arrivals = trace.events(config.horizon, 0x5eed);
    let mut rt = SparcleRuntime::new(grid_network(flaky), arrivals, grid_app, config);

    #[cfg(feature = "telemetry")]
    {
        let recorder = sparcle_telemetry::CollectRecorder::new();
        let ledger = rt
            .run_traced(sparcle_core::TraceHandle::new(&recorder))
            .clone();
        let event_log = recorder.render_trace();
        let counters = recorder.snapshot().counters;
        let events_processed = rt.events_processed();
        RunOutput {
            ledger,
            events_processed,
            system: rt.into_system(),
            event_log,
            counters,
        }
    }
    #[cfg(not(feature = "telemetry"))]
    {
        let ledger = rt.run().clone();
        let events_processed = rt.events_processed();
        RunOutput {
            ledger,
            events_processed,
            system: rt.into_system(),
        }
    }
}

/// The two residual-maintenance counters are *expected* to differ — they
/// are the mode's signature, not part of the behavioral contract.
#[cfg(feature = "telemetry")]
const MODE_SIGNATURE_COUNTERS: [&str; 2] = [
    "system.residual_element_updates",
    "system.residual_full_recomputes",
];

#[test]
fn incremental_matches_scratch_over_full_histories() {
    for (label, trace, flaky) in grid() {
        let inc = run(&trace, flaky, StateMaintenance::Incremental);
        let scr = run(&trace, flaky, StateMaintenance::Scratch);

        assert_eq!(
            inc.events_processed, scr.events_processed,
            "{label}: event counts diverged"
        );
        assert!(
            format!("{:?}", inc.ledger) == format!("{:?}", scr.ledger),
            "{label}: SLO ledgers diverged:\n  inc: {:?}\n  scr: {:?}",
            inc.ledger,
            scr.ledger
        );

        // Final system state, bitwise.
        assert_eq!(
            inc.system.app_ids(),
            scr.system.app_ids(),
            "{label}: admitted id sequences diverged"
        );
        assert_eq!(
            inc.system.gr_residual(),
            scr.system.gr_residual(),
            "{label}: GR residual diverged (delta maintenance leaked)"
        );
        let rates = |s: &SparcleSystem| -> Vec<u64> {
            s.be_apps()
                .iter()
                .map(|a| a.allocated_rate.to_bits())
                .collect()
        };
        assert_eq!(
            rates(&inc.system),
            rates(&scr.system),
            "{label}: BE allocated rates diverged"
        );

        // Useful histories only: every mutation path must actually run.
        assert!(inc.ledger.arrivals() > 0, "{label}: no arrivals");
        assert!(inc.ledger.displacements() > 0, "{label}: no displacements");

        #[cfg(feature = "telemetry")]
        {
            assert!(
                inc.event_log == scr.event_log,
                "{label}: telemetry event logs diverged"
            );
            let strip = |mut c: std::collections::BTreeMap<String, u64>| {
                for k in MODE_SIGNATURE_COUNTERS {
                    c.remove(k);
                }
                c
            };
            assert_eq!(
                strip(inc.counters.clone()),
                strip(scr.counters.clone()),
                "{label}: deterministic counters diverged"
            );
            // The signature counters prove each mode took its own path.
            assert!(
                inc.counters
                    .get("system.residual_element_updates")
                    .copied()
                    .unwrap_or(0)
                    > 0,
                "{label}: incremental mode never used the delta path"
            );
            assert_eq!(
                scr.counters
                    .get("system.residual_element_updates")
                    .copied()
                    .unwrap_or(0),
                0,
                "{label}: scratch mode used the delta path"
            );
            assert!(
                scr.counters
                    .get("system.residual_full_recomputes")
                    .copied()
                    .unwrap_or(0)
                    > inc
                        .counters
                        .get("system.residual_full_recomputes")
                        .copied()
                        .unwrap_or(0),
                "{label}: scratch mode should rebuild strictly more often"
            );
        }
    }
}

/// The γ-probe policy drives rollback-only transactions through the
/// incremental constraint maintenance on every reconcile; it must obey
/// the same cross-mode contract.
#[test]
fn gamma_probe_policy_matches_across_modes() {
    let trace = ArrivalTrace::Poisson { rate: 1.5 };
    let run_probe = |maintenance| {
        let mut config = RuntimeConfig {
            horizon: 80.0,
            failure_seed: 0xfa11,
            hold_seed: 0x0dd,
            mean_hold: 15.0,
            policy: ReconcilePolicy::GammaProbe,
            ..RuntimeConfig::default()
        };
        config.system.maintenance = maintenance;
        let arrivals = trace.events(config.horizon, 0xcafe);
        let mut rt = SparcleRuntime::new(grid_network(0.1), arrivals, grid_app, config);
        let ledger = format!("{:?}", rt.run().clone());
        let stats = rt.system().state_stats().clone();
        (ledger, stats.txn_rollbacks, rt.into_system())
    };
    let (ledger_inc, rollbacks_inc, sys_inc) = run_probe(StateMaintenance::Incremental);
    let (ledger_scr, rollbacks_scr, sys_scr) = run_probe(StateMaintenance::Scratch);
    assert_eq!(ledger_inc, ledger_scr, "γ-probe ledgers diverged");
    assert_eq!(rollbacks_inc, rollbacks_scr, "probe counts diverged");
    assert!(rollbacks_inc > 0, "γ-probe policy never probed");
    assert_eq!(sys_inc.gr_residual(), sys_scr.gr_residual());
    assert_eq!(sys_inc.app_ids(), sys_scr.app_ids());
}
