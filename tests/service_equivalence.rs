//! Differential suite for the admission service plane.
//!
//! The service crate promises (see `sparcle_service::service` module
//! docs) that micro-batched admission is *decision-equivalent* to
//! sequential admission: the same requests are admitted/rejected, with
//! the same placements and the same post-run GR residual, bit for bit.
//! Final BE *rates* are deliberately exempt — the warm solver truncates
//! its barrier schedule, so N chained warm solves and one joint batch
//! solve carry different truncation error toward the same optimum (see
//! the crate's proptest for the worked example). This suite holds the
//! service loop to the decision contract over a pinned flash-crowd
//! stream, and holds its telemetry to the same byte-identity contract
//! the placement engine's trace already obeys: the `service_*` event
//! log must not change with the evaluator thread count.

use sparcle_core::{SparcleSystem, SystemConfig};
use sparcle_model::{Application, NcpId, Network, NetworkBuilder, QoeClass, ResourceVec};
use sparcle_service::{AdmissionService, ServiceConfig, SolveCostModel};
use sparcle_workloads::graphs::linear_task_graph;
use sparcle_workloads::{ArrivalTrace, RequestKind, RequestStream};

/// Four edge hosts behind two hubs — enough capacity contrast that the
/// flash crowd produces both admissions and rejections.
fn service_network() -> Network {
    let mut b = NetworkBuilder::new();
    let edges: Vec<NcpId> = (0..4)
        .map(|i| b.add_ncp(format!("edge{i}"), ResourceVec::cpu(20.0)))
        .collect();
    let fast = b.add_ncp("hub-fast", ResourceVec::cpu(2000.0));
    let slow = b.add_ncp("hub-slow", ResourceVec::cpu(1500.0));
    for (i, &e) in edges.iter().enumerate() {
        b.add_link(format!("fast{i}"), e, fast, 2e4)
            .expect("valid link");
        b.add_link(format!("slow{i}"), e, slow, 8e3)
            .expect("valid link");
    }
    b.build().expect("valid network")
}

/// Deterministic request-index → application factory shared by the
/// service under test and the sequential reference; every third request
/// is Guaranteed-Rate, endpoints walk the edge hosts.
fn service_app(index: u64) -> Application {
    let graph = linear_task_graph(&[50.0], &[1100.0, 500.0]).expect("valid graph");
    let (src, sink) = (graph.sources()[0], graph.sinks()[0]);
    let qoe = if index.is_multiple_of(3) {
        QoeClass::guaranteed_rate(1.5, 0.5)
    } else {
        QoeClass::best_effort(1.0 + (index % 4) as f64)
    };
    let src_host = NcpId::new((index % 4) as u32);
    let sink_host = NcpId::new(((index + 1) % 4) as u32);
    Application::new(graph, qoe, [(src, src_host), (sink, sink_host)]).expect("valid app")
}

/// The pinned flash-crowd stream: steady trickle, 20-second burst, a
/// probe every seventh request.
fn request_stream() -> RequestStream {
    RequestStream::new(
        ArrivalTrace::FlashCrowd {
            rate: 1.0,
            burst_rate: 10.0,
            burst_start: 10.0,
            burst_end: 30.0,
        },
        45.0,
        0x5eed,
    )
    .with_probe_every(7)
}

/// A config whose writer never exerts backpressure: zero solve cost and
/// effectively unbounded queue/batch, so every admit request reaches a
/// batched transaction and the decision sequence is directly comparable
/// to a sequential replay.
fn lossless_config(threads: usize) -> ServiceConfig {
    ServiceConfig {
        batch_window: 0.5,
        max_batch: usize::MAX,
        queue_capacity: usize::MAX,
        solve_cost: SolveCostModel {
            fixed: 0.0,
            per_request: 0.0,
        },
        system: SystemConfig {
            assigner_threads: threads,
            ..SystemConfig::default()
        },
        ..ServiceConfig::default()
    }
}

/// The decision contract: batched admission through the service loop
/// admits exactly the applications a sequential `submit` replay admits,
/// with bit-identical placements and GR residual.
#[test]
fn batched_service_matches_sequential_admission_bitwise() {
    let mut service = AdmissionService::new(service_network(), lossless_config(1), service_app);
    service.run(request_stream());

    let mut reference = SparcleSystem::with_config(service_network(), SystemConfig::default());
    let mut ref_admitted = 0u64;
    let mut ref_rejected = 0u64;
    let mut ref_ids = Vec::new();
    let mut total_admits = 0u64;
    for request in request_stream() {
        if request.kind != RequestKind::Admit {
            continue;
        }
        total_admits += 1;
        match reference
            .submit(service_app(request.index))
            .expect("factory apps are valid")
        {
            sparcle_core::Admission::Admitted(id) => {
                ref_admitted += 1;
                ref_ids.push(id);
            }
            sparcle_core::Admission::Rejected(_) => ref_rejected += 1,
        }
    }
    assert!(total_admits >= 20, "stream too small: {total_admits}");

    let stats = *service.stats();
    assert_eq!(stats.shed, 0, "lossless config must never shed");
    assert_eq!(
        stats.decisions, total_admits,
        "every admit request must get a decision"
    );
    assert_eq!(
        (stats.admitted, stats.rejected),
        (ref_admitted, ref_rejected),
        "batched admission verdict counts diverged from the sequential replay"
    );
    assert!(stats.admitted > 0, "degenerate stream: nothing admitted");
    assert!(stats.probes > 0, "stream must exercise the snapshot reads");

    // Same admitted populations, in the same id order...
    let snap = service.snapshot();
    let ref_snap = reference.snapshot();
    let ids = |s: &sparcle_core::StateSnapshot| -> (Vec<usize>, Vec<usize>) {
        (
            s.be_apps().iter().map(|a| a.id.index()).collect(),
            s.gr_apps().iter().map(|a| a.id.index()).collect(),
        )
    };
    assert_eq!(ids(snap), ids(&ref_snap), "admitted id sequences diverged");
    // ...on the same hosts and routes...
    for &id in &ref_ids {
        assert_eq!(
            snap.elements_of(id),
            ref_snap.elements_of(id),
            "placement of app {} diverged",
            id.index()
        );
    }
    // ...leaving the same GR reservations behind, bit for bit.
    assert_eq!(
        snap.gr_residual(),
        ref_snap.gr_residual(),
        "GR residual diverged between batched and sequential admission"
    );
}

/// Replay determinism with the *lossy* default config (real solve cost,
/// bounded queue): deferrals and sheds are part of the contract too —
/// two runs of the same stream must agree on every counter, every
/// decision wait, and the final snapshot.
#[test]
fn lossy_service_replay_is_deterministic() {
    let run = || {
        let config = ServiceConfig {
            batch_window: 0.5,
            queue_capacity: 16,
            max_defer_windows: 1,
            solve_cost: SolveCostModel {
                fixed: 1.2,
                per_request: 0.05,
            },
            ..ServiceConfig::default()
        };
        let mut service = AdmissionService::new(service_network(), config, service_app);
        service.run(request_stream());
        service
    };
    let a = run();
    let b = run();
    assert_eq!(a.stats(), b.stats(), "run counters diverged on replay");
    assert!(
        a.stats().windows_deferred > 0 && a.stats().shed > 0,
        "config must actually exercise backpressure: {:?}",
        a.stats()
    );
    let bits = |s: &[f64]| -> Vec<u64> { s.iter().map(|w| w.to_bits()).collect() };
    assert_eq!(
        bits(a.decision_waits()),
        bits(b.decision_waits()),
        "decision waits diverged on replay"
    );
    assert_eq!(
        (a.ledger().sheds(), a.ledger().deferrals()),
        (b.ledger().sheds(), b.ledger().deferrals()),
        "ledger backpressure charges diverged on replay"
    );
    assert_eq!(a.snapshot(), b.snapshot(), "final snapshots diverged");
}

/// The service event log obeys the placement engine's byte-identity
/// contract: `service_batch` / `service_decision` / `service_probe` /
/// `monitor_*` lines must be identical whether the γ evaluator fills
/// rows with one worker thread or eight.
#[cfg(feature = "telemetry")]
#[test]
fn service_logs_byte_identical_across_thread_counts() {
    use sparcle_core::TraceHandle;
    use sparcle_runtime::MonitorConfig;
    use sparcle_telemetry::{schema, CollectRecorder};

    let run = |threads: usize| -> String {
        let config = ServiceConfig {
            monitor: Some(MonitorConfig::default()),
            queue_capacity: 16,
            max_defer_windows: 1,
            solve_cost: SolveCostModel {
                fixed: 1.2,
                per_request: 0.05,
            },
            ..lossless_config(threads)
        };
        let recorder = CollectRecorder::new();
        let mut service = AdmissionService::new(service_network(), config, service_app);
        service.run_traced(request_stream(), TraceHandle::new(&recorder));
        recorder.render_trace()
    };

    let log_1 = run(1);
    for threads in [2, 8] {
        let log_n = run(threads);
        assert_eq!(
            log_1, log_n,
            "service event log diverged between 1 and {threads} evaluator threads"
        );
    }

    // The shared log must actually carry the plane's events, and every
    // line must satisfy the published trace schema.
    let mut kinds = std::collections::BTreeSet::new();
    for line in log_1.lines() {
        kinds.insert(schema::validate_line(line).unwrap_or_else(|e| {
            panic!("service trace line failed schema validation: {e}\n{line}")
        }));
    }
    for expected in [
        "service_batch",
        "service_decision",
        "service_probe",
        "monitor_snapshot",
    ] {
        assert!(kinds.contains(expected), "log carries no {expected} events");
    }
}
