//! End-to-end integration tests: scenario generation → task assignment
//! → resource allocation → queueing simulation, spanning every crate.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sparcle::baselines::{optimal_assignment, standard_roster, Assigner};
use sparcle::core::{DynamicRankingAssigner, SparcleSystem};
use sparcle::model::QoeClass;
use sparcle::sim::{simulate_flows, FlowSimConfig, SimApp};
use sparcle::workloads::{
    face_detection::{face_detection_app, testbed_network},
    BottleneckCase, GraphKind, ScenarioConfig, TopologyKind,
};

/// The allocated rate of a placement must be sustainable in the
/// queueing simulation: offering 95 % of it is delivered in full.
#[test]
fn assigned_rate_is_sustainable_in_simulation() {
    let cfg = ScenarioConfig::new(
        BottleneckCase::Balanced,
        GraphKind::Diamond,
        TopologyKind::Star,
    );
    let mut rng = StdRng::seed_from_u64(2024);
    for _ in 0..5 {
        let scenario = cfg.sample(&mut rng).unwrap();
        let caps = scenario.network.capacity_map();
        let path = DynamicRankingAssigner::new()
            .assign(&scenario.app, &scenario.network, &caps)
            .unwrap();
        let offered = 0.95 * path.rate;
        let stats = simulate_flows(
            &scenario.network,
            &[SimApp {
                graph: scenario.app.graph(),
                placement: &path.placement,
                rate: offered,
            }],
            &FlowSimConfig::default(),
        );
        assert!(
            (stats[0].throughput - offered).abs() / offered < 0.06,
            "throughput {} vs offered {offered}",
            stats[0].throughput
        );
    }
}

/// Offering more than the assigned rate must not beat the analytic
/// bottleneck (no free lunch from the simulator).
#[test]
fn simulation_never_beats_analytic_bottleneck() {
    let cfg = ScenarioConfig::new(
        BottleneckCase::LinkBottleneck,
        GraphKind::Linear { stages: 3 },
        TopologyKind::Linear,
    );
    let mut rng = StdRng::seed_from_u64(7);
    let scenario = cfg.sample(&mut rng).unwrap();
    let caps = scenario.network.capacity_map();
    let path = DynamicRankingAssigner::new()
        .assign(&scenario.app, &scenario.network, &caps)
        .unwrap();
    let stats = simulate_flows(
        &scenario.network,
        &[SimApp {
            graph: scenario.app.graph(),
            placement: &path.placement,
            rate: 3.0 * path.rate,
        }],
        &FlowSimConfig::default(),
    );
    assert!(stats[0].throughput <= path.rate * 1.05);
}

/// Every roster algorithm's reported rate is self-consistent: it equals
/// the bottleneck rate recomputed from the placement it returned.
#[test]
fn roster_rates_are_self_consistent() {
    let cfg = ScenarioConfig::new(
        BottleneckCase::Balanced,
        GraphKind::Diamond,
        TopologyKind::FullyConnected,
    );
    let mut rng = StdRng::seed_from_u64(99);
    let scenario = cfg.sample(&mut rng).unwrap();
    let caps = scenario.network.capacity_map();
    for algo in standard_roster(5) {
        let path = algo
            .assign(&scenario.app, &scenario.network, &caps)
            .unwrap();
        let recomputed =
            path.placement
                .bottleneck_rate(scenario.app.graph(), &scenario.network, &caps);
        assert!(
            (path.rate - recomputed).abs() < 1e-9 * recomputed.max(1.0),
            "{}: {} vs {recomputed}",
            algo.name(),
            path.rate
        );
    }
}

/// SPARCLE is never materially worse than the exhaustive optimum on
/// small instances (and never better — the optimum is an upper bound).
#[test]
fn sparcle_bounded_by_optimum() {
    let mut cfg = ScenarioConfig::new(
        BottleneckCase::NcpBottleneck,
        GraphKind::Linear { stages: 2 },
        TopologyKind::Star,
    );
    cfg.ncps = 5;
    let mut rng = StdRng::seed_from_u64(3);
    let mut total_ratio = 0.0;
    let n = 10;
    for _ in 0..n {
        let scenario = cfg.sample(&mut rng).unwrap();
        let caps = scenario.network.capacity_map();
        let opt = optimal_assignment(&scenario.app, &scenario.network, &caps).unwrap();
        let ours = DynamicRankingAssigner::new()
            .assign(&scenario.app, &scenario.network, &caps)
            .unwrap();
        assert!(ours.rate <= opt.rate + 1e-9, "heuristic beat the optimum");
        total_ratio += ours.rate / opt.rate;
    }
    assert!(
        total_ratio / n as f64 > 0.9,
        "mean optimality ratio {}",
        total_ratio / n as f64
    );
}

/// The full system pipeline: GR apps reserve, BE apps share, and the
/// allocated BE rates are simultaneously sustainable in one shared
/// simulation.
#[test]
fn system_allocation_is_jointly_sustainable() {
    let cfg = ScenarioConfig::new(
        BottleneckCase::Balanced,
        GraphKind::Linear { stages: 3 },
        TopologyKind::Star,
    );
    let mut rng = StdRng::seed_from_u64(11);
    let scenario = cfg.sample(&mut rng).unwrap();
    let mut system = SparcleSystem::new(scenario.network.clone());

    // One GR app, two BE apps with 2:1 priorities.
    let gr = cfg
        .sample(&mut rng)
        .unwrap()
        .app
        .with_qoe(QoeClass::guaranteed_rate(0.5, 0.9))
        .unwrap();
    let be1 = cfg
        .sample(&mut rng)
        .unwrap()
        .app
        .with_qoe(QoeClass::best_effort(2.0))
        .unwrap();
    let be2 = cfg
        .sample(&mut rng)
        .unwrap()
        .app
        .with_qoe(QoeClass::best_effort(1.0))
        .unwrap();
    system.submit(gr).unwrap();
    let a1 = system.submit(be1).unwrap();
    let a2 = system.submit(be2).unwrap();
    assert!(a1.is_admitted() && a2.is_admitted());

    // Build one joint simulation: GR paths at reserved rates + BE
    // primary paths at 90 % of allocated rates.
    let mut apps = Vec::new();
    for gr in system.gr_apps() {
        for (path, rate) in &gr.paths {
            apps.push(SimApp {
                graph: gr.app.graph(),
                placement: &path.placement,
                rate: 0.9 * rate,
            });
        }
    }
    for be in system.be_apps() {
        apps.push(SimApp {
            graph: be.app.graph(),
            placement: &be.paths[0].placement,
            rate: 0.9 * be.allocated_rate,
        });
    }
    let stats = simulate_flows(&scenario.network, &apps, &FlowSimConfig::default());
    for (i, s) in stats.iter().enumerate() {
        let offered = apps[i].rate;
        assert!(
            (s.throughput - offered).abs() / offered.max(1e-9) < 0.08,
            "app {i}: throughput {} vs offered {offered}",
            s.throughput
        );
    }
}

/// The face-detection flagship: SPARCLE beats the cloud at low field
/// bandwidth by a large factor and still wins at high bandwidth.
#[test]
fn face_detection_crossover_shape() {
    use sparcle::baselines::CloudAssigner;
    use sparcle::workloads::face_detection::CLOUD;
    let app = face_detection_app(QoeClass::best_effort(1.0)).unwrap();
    let sparcle = DynamicRankingAssigner::new();
    let cloud = CloudAssigner::new(CLOUD);

    let rate = |assigner: &dyn Assigner, bw: f64| {
        let net = testbed_network(bw);
        assigner
            .assign(&app, &net, &net.capacity_map())
            .unwrap()
            .rate
    };
    let s_low = rate(&sparcle, 0.5);
    let c_low = rate(&cloud, 0.5);
    assert!(
        s_low / c_low > 5.0,
        "low-bandwidth speedup only {:.1}x",
        s_low / c_low
    );
    let s_mid = rate(&sparcle, 10.0);
    let c_mid = rate(&cloud, 10.0);
    assert!((s_mid - c_mid).abs() < 1e-9, "cloud is optimal at 10 Mbps");
    let s_high = rate(&sparcle, 22.0);
    let c_high = rate(&cloud, 22.0);
    assert!(
        s_high > c_high * 1.1,
        "dispersed should still win at 22 Mbps: {s_high} vs {c_high}"
    );
}

/// Arrival-order robustness: thanks to the eq. (6) prediction, two
/// equal-priority BE apps end with similar rates regardless of which
/// arrived first.
#[test]
fn allocation_is_arrival_order_insensitive() {
    let cfg = ScenarioConfig::new(
        BottleneckCase::Balanced,
        GraphKind::Linear { stages: 2 },
        TopologyKind::Star,
    );
    let mut rng = StdRng::seed_from_u64(17);
    let scenario = cfg.sample(&mut rng).unwrap();
    let app_a = cfg.sample(&mut rng).unwrap().app;
    let app_b = cfg.sample(&mut rng).unwrap().app;

    let rates = |first: &sparcle::model::Application, second: &sparcle::model::Application| {
        let mut system = SparcleSystem::new(scenario.network.clone());
        system.submit(first.clone()).unwrap();
        system.submit(second.clone()).unwrap();
        let mut out: Vec<f64> = system.be_apps().iter().map(|a| a.allocated_rate).collect();
        out.sort_by(f64::total_cmp);
        out
    };
    let ab = rates(&app_a, &app_b);
    let ba = rates(&app_b, &app_a);
    for (x, y) in ab.iter().zip(&ba) {
        assert!(
            (x - y).abs() / x.max(*y) < 0.35,
            "order-sensitive allocation: {ab:?} vs {ba:?}"
        );
    }
}
