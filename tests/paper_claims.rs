//! Regression guards for the paper's headline claims, in miniature.
//!
//! The full experiments live in `sparcle-bench`; these tests re-check
//! the *direction* of each claim on small seeded samples so that a
//! regression in any algorithm immediately fails `cargo test`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sparcle::baselines::{optimal_assignment, standard_roster, Assigner, GreedySorted};
use sparcle::core::DynamicRankingAssigner;
use sparcle::sim::EnergyModel;
use sparcle::workloads::{BottleneckCase, GraphKind, ScenarioConfig, TopologyKind};

fn mean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len().max(1) as f64
}

/// Figure 8: SPARCLE is near-optimal in the single-resource bottleneck
/// regimes.
#[test]
fn near_optimal_in_bottleneck_regimes() {
    for case in [
        BottleneckCase::NcpBottleneck,
        BottleneckCase::LinkBottleneck,
    ] {
        let mut cfg = ScenarioConfig::new(
            case,
            GraphKind::Linear { stages: 2 },
            TopologyKind::FullyConnected,
        );
        cfg.ncps = 5;
        let mut rng = StdRng::seed_from_u64(81);
        let mut ratios = Vec::new();
        for _ in 0..15 {
            let s = cfg.sample(&mut rng).unwrap();
            let caps = s.network.capacity_map();
            let opt = optimal_assignment(&s.app, &s.network, &caps).unwrap();
            let ours = DynamicRankingAssigner::new()
                .assign(&s.app, &s.network, &caps)
                .unwrap();
            ratios.push(ours.rate / opt.rate);
        }
        assert!(
            mean(&ratios) > 0.93,
            "{case}: mean optimality ratio {}",
            mean(&ratios)
        );
    }
}

/// Figure 11(a): in the NCP-bottleneck case SPARCLE and GS coincide (γ
/// reduces to the compute term).
#[test]
fn ncp_bottleneck_sparcle_equals_gs() {
    let cfg = ScenarioConfig::new(
        BottleneckCase::NcpBottleneck,
        GraphKind::Diamond,
        TopologyKind::Star,
    );
    let mut rng = StdRng::seed_from_u64(111);
    let mut ours = Vec::new();
    let mut theirs = Vec::new();
    for _ in 0..25 {
        let s = cfg.sample(&mut rng).unwrap();
        let caps = s.network.capacity_map();
        ours.push(
            Assigner::assign(&DynamicRankingAssigner::new(), &s.app, &s.network, &caps)
                .unwrap()
                .rate,
        );
        theirs.push(
            GreedySorted::new()
                .assign(&s.app, &s.network, &caps)
                .unwrap()
                .rate,
        );
    }
    let gap = (mean(&ours) - mean(&theirs)).abs() / mean(&ours);
    assert!(gap < 0.05, "SPARCLE vs GS gap {gap} in NCP-bottleneck");
}

/// Figure 11(b): in the link-bottleneck case SPARCLE clearly beats the
/// TT-blind GS ordering.
#[test]
fn link_bottleneck_sparcle_beats_gs() {
    let cfg = ScenarioConfig::new(
        BottleneckCase::LinkBottleneck,
        GraphKind::Diamond,
        TopologyKind::Star,
    );
    let mut rng = StdRng::seed_from_u64(112);
    let mut ours = Vec::new();
    let mut theirs = Vec::new();
    for _ in 0..25 {
        let s = cfg.sample(&mut rng).unwrap();
        let caps = s.network.capacity_map();
        ours.push(
            Assigner::assign(&DynamicRankingAssigner::new(), &s.app, &s.network, &caps)
                .unwrap()
                .rate,
        );
        theirs.push(
            GreedySorted::new()
                .assign(&s.app, &s.network, &caps)
                .unwrap()
                .rate,
        );
    }
    assert!(
        mean(&ours) > 1.3 * mean(&theirs),
        "SPARCLE {} vs GS {} in link-bottleneck",
        mean(&ours),
        mean(&theirs)
    );
}

/// Figure 9's direction: SPARCLE's energy efficiency beats the Random
/// and VNE baselines in the balanced case.
#[test]
fn balanced_energy_efficiency_beats_naive_baselines() {
    let mut cfg = ScenarioConfig::new(
        BottleneckCase::Balanced,
        GraphKind::Linear { stages: 4 },
        TopologyKind::Linear,
    );
    cfg.ncps = 8;
    let model = EnergyModel::default();
    let mut rng = StdRng::seed_from_u64(90);
    let roster = standard_roster(90);
    let mut eff: std::collections::BTreeMap<String, Vec<f64>> = Default::default();
    for _ in 0..30 {
        let s = cfg.sample(&mut rng).unwrap();
        let caps = s.network.capacity_map();
        for algo in &roster {
            let e = algo
                .assign(&s.app, &s.network, &caps)
                .map(|p| {
                    model
                        .evaluate(&s.network, &caps, &p.load, p.rate)
                        .units_per_joule
                })
                .unwrap_or(0.0);
            eff.entry(algo.name().to_owned()).or_default().push(e);
        }
    }
    let sparcle = mean(&eff["SPARCLE"]);
    assert!(
        sparcle > 1.3 * mean(&eff["Random"]),
        "vs Random: {sparcle} vs {}",
        mean(&eff["Random"])
    );
    assert!(
        sparcle > 1.2 * mean(&eff["VNE"]),
        "vs VNE: {sparcle} vs {}",
        mean(&eff["VNE"])
    );
}

/// Figure 12's direction: with CPU + memory requirements SPARCLE beats
/// VNE decisively (their scalar ranking misses the binding resource).
#[test]
fn multi_resource_beats_vne() {
    let cfg = ScenarioConfig::new(
        BottleneckCase::MemoryBottleneck,
        GraphKind::Diamond,
        TopologyKind::Star,
    );
    let mut rng = StdRng::seed_from_u64(120);
    let roster = standard_roster(120);
    let mut ours = Vec::new();
    let mut vne = Vec::new();
    for _ in 0..25 {
        let s = cfg.sample(&mut rng).unwrap();
        let caps = s.network.capacity_map();
        for algo in &roster {
            let rate = algo
                .assign(&s.app, &s.network, &caps)
                .map(|p| p.rate)
                .unwrap_or(0.0);
            match algo.name() {
                "SPARCLE" => ours.push(rate),
                "VNE" => vne.push(rate),
                _ => {}
            }
        }
    }
    assert!(
        mean(&ours) > 1.25 * mean(&vne),
        "SPARCLE {} vs VNE {}",
        mean(&ours),
        mean(&vne)
    );
}
