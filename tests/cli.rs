//! Integration tests for the `sparcle` CLI binary.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sparcle"))
}

#[test]
fn schedules_the_sample_scenario() {
    let out = bin()
        .arg(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/examples/scenarios/smart_factory.scn"
        ))
        .arg("--verbose")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("network: 5 NCPs, 5 links"), "{stdout}");
    assert!(stdout.contains("weld-inspection"), "{stdout}");
    assert!(stdout.contains("guarantees 2.000"), "{stdout}");
    assert!(stdout.contains("[BE ] dashboard"), "{stdout}");
    assert!(stdout.contains("BE utility"), "{stdout}");
    // Verbose mode prints placements and routes.
    assert!(stdout.contains("->"), "{stdout}");
    assert!(stdout.contains("over ["), "{stdout}");
}

#[test]
fn reports_parse_errors_with_line_numbers() {
    let dir = std::env::temp_dir().join("sparcle-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.scn");
    std::fs::write(&path, "ncp a cpu=1\nlink l a missing bw=1\n").unwrap();
    let out = bin().arg(&path).output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 2"), "{stderr}");
    assert!(stderr.contains("unknown ncp"), "{stderr}");
}

#[test]
fn rejects_missing_arguments() {
    let out = bin().output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn rejects_unknown_flags() {
    let out = bin().arg("--frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
}

#[test]
fn schedules_the_campus_scenario_with_directed_links() {
    let out = bin()
        .arg(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/examples/scenarios/campus_iot.scn"
        ))
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("air-quality"), "{stdout}");
    assert!(stdout.contains("guarantees 1.000"), "{stdout}");
    assert!(stdout.contains("[BE ] lecture-video"), "{stdout}");
    assert!(stdout.contains("[BE ] rollups"), "{stdout}");
}

#[test]
fn dot_flag_emits_graphviz() {
    let out = bin()
        .arg(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/examples/scenarios/smart_factory.scn"
        ))
        .arg("--dot")
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("graph \"placement\""), "{stdout}");
    assert!(stdout.matches("# DOT:").count() >= 3, "{stdout}");
}
