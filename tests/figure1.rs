//! End-to-end test of the paper's Figure 1 application: two cameras
//! feeding multi-viewpoint object detection → classification → one
//! consumer, placed on the Figure 2-style computing network.

use sparcle::core::DynamicRankingAssigner;
use sparcle::model::{
    Application, LinkDirection, NetworkBuilder, QoeClass, ResourceVec, TaskGraphBuilder,
};
use sparcle::sim::{simulate_flows, FlowSimConfig, SimApp};

/// The Figure 1 task graph: CT1/CT2 cameras, CT3 detection, CT4
/// classification, CT5 consumer; TT1/TT2 raw image streams, TT3
/// objects, TT4 classes.
fn figure1_app(
    cam1: sparcle::model::NcpId,
    cam2: sparcle::model::NcpId,
    consumer: sparcle::model::NcpId,
) -> Application {
    let mut tb = TaskGraphBuilder::new();
    tb.name("multi-viewpoint-classification");
    let ct1 = tb.add_ct("camera1", ResourceVec::new());
    let ct2 = tb.add_ct("camera2", ResourceVec::new());
    let ct3 = tb.add_ct("object-detection", ResourceVec::cpu(120.0));
    let ct4 = tb.add_ct("object-classification", ResourceVec::cpu(200.0));
    let ct5 = tb.add_ct("consumer", ResourceVec::new());
    tb.add_tt("tt1-images", ct1, ct3, 25.0).unwrap();
    tb.add_tt("tt2-images", ct2, ct3, 25.0).unwrap();
    tb.add_tt("tt3-objects", ct3, ct4, 2.0).unwrap();
    tb.add_tt("tt4-classes", ct4, ct5, 0.1).unwrap();
    Application::new(
        tb.build().unwrap(),
        QoeClass::best_effort(1.0),
        [(ct1, cam1), (ct2, cam2), (ct5, consumer)],
    )
    .unwrap()
}

/// A Figure 2-style network: four NCPs, eight links (some redundant).
fn figure2_network() -> sparcle::model::Network {
    let mut nb = NetworkBuilder::new();
    nb.name("figure2");
    let n1 = nb.add_ncp("ncp1", ResourceVec::cpu(80.0));
    let n2 = nb.add_ncp("ncp2", ResourceVec::cpu(400.0));
    let n3 = nb.add_ncp("ncp3", ResourceVec::cpu(80.0));
    let n4 = nb.add_ncp("ncp4", ResourceVec::cpu(120.0));
    nb.add_link("l1", n1, n2, 100.0).unwrap();
    nb.add_link("l2", n2, n4, 60.0).unwrap();
    nb.add_link("l3", n1, n3, 40.0).unwrap();
    nb.add_link("l4", n3, n4, 40.0).unwrap();
    nb.add_link("l5", n1, n4, 20.0).unwrap();
    nb.add_link("l6", n2, n3, 80.0).unwrap();
    nb.build().unwrap()
}

#[test]
fn figure1_app_is_schedulable_and_sustainable() {
    let net = figure2_network();
    let (n1, n3, n4) = (
        sparcle::model::NcpId::new(0),
        sparcle::model::NcpId::new(2),
        sparcle::model::NcpId::new(3),
    );
    let app = figure1_app(n1, n3, n4);
    let path = DynamicRankingAssigner::new()
        .assign(&app, &net, &net.capacity_map())
        .unwrap();
    path.placement.validate(app.graph(), &net).unwrap();
    assert!(path.rate > 0.0);

    // Both raw streams converge on the detection host; join semantics
    // hold in simulation at 90 % load.
    let offered = 0.9 * path.rate;
    let stats = simulate_flows(
        &net,
        &[SimApp {
            graph: app.graph(),
            placement: &path.placement,
            rate: offered,
        }],
        &FlowSimConfig::default(),
    );
    assert!(
        (stats[0].throughput - offered).abs() / offered < 0.06,
        "throughput {} vs offered {offered}",
        stats[0].throughput
    );
}

#[test]
fn figure1_detection_lands_on_the_big_ncp() {
    // With generous bandwidth, detection + classification belong on the
    // 400 MHz NCP2.
    let net = figure2_network();
    let app = figure1_app(
        sparcle::model::NcpId::new(0),
        sparcle::model::NcpId::new(2),
        sparcle::model::NcpId::new(3),
    );
    let path = DynamicRankingAssigner::new()
        .assign(&app, &net, &net.capacity_map())
        .unwrap();
    let detect_host = path
        .placement
        .ct_host(sparcle::model::CtId::new(2))
        .unwrap();
    let classify_host = path
        .placement
        .ct_host(sparcle::model::CtId::new(3))
        .unwrap();
    assert_eq!(
        detect_host,
        sparcle::model::NcpId::new(1),
        "detection on NCP2"
    );
    assert_eq!(
        classify_host,
        sparcle::model::NcpId::new(1),
        "classification on NCP2"
    );
}

#[test]
fn directed_network_routes_respect_direction() {
    // A directed ring: 0 -> 1 -> 2 -> 0. The TT from a CT on 2 to a CT
    // on 1 must take the long way around (2 -> 0 -> 1).
    let mut nb = NetworkBuilder::new();
    let n0 = nb.add_ncp("n0", ResourceVec::cpu(100.0));
    let n1 = nb.add_ncp("n1", ResourceVec::cpu(100.0));
    let n2 = nb.add_ncp("n2", ResourceVec::cpu(100.0));
    nb.add_link_full("l01", n0, n1, 50.0, LinkDirection::Directed, 0.0)
        .unwrap();
    nb.add_link_full("l12", n1, n2, 50.0, LinkDirection::Directed, 0.0)
        .unwrap();
    nb.add_link_full("l20", n2, n0, 50.0, LinkDirection::Directed, 0.0)
        .unwrap();
    let net = nb.build().unwrap();

    let mut tb = TaskGraphBuilder::new();
    let s = tb.add_ct("s", ResourceVec::new());
    let w = tb.add_ct("w", ResourceVec::cpu(10.0));
    let t = tb.add_ct("t", ResourceVec::new());
    tb.add_tt("sw", s, w, 5.0).unwrap();
    tb.add_tt("wt", w, t, 5.0).unwrap();
    let app = Application::new(
        tb.build().unwrap(),
        QoeClass::best_effort(1.0),
        [(s, n2), (t, n1)],
    )
    .unwrap();

    let path = DynamicRankingAssigner::new()
        .assign(&app, &net, &net.capacity_map())
        .unwrap();
    // Validation checks directed traversal, so passing validate proves
    // no route went against an arrow.
    path.placement.validate(app.graph(), &net).unwrap();
    assert!(path.rate > 0.0);
    // Wherever `w` landed, the combined source-to-sink flow crosses the
    // ring the long way at least once: some route has ≥ 2 hops or the
    // routes' union covers ≥ 2 distinct links.
    let mut used_links = std::collections::BTreeSet::new();
    for (_, route) in path.placement.routed_tts() {
        for &l in route {
            used_links.insert(l);
        }
    }
    assert!(
        used_links.len() >= 2,
        "directed ring forces multi-hop routing: {used_links:?}"
    );
}
