//! `sparcle` — schedule the applications of a scenario file onto its
//! network and report placements, routes, rates, and admissions.
//!
//! ```sh
//! sparcle <scenario.scn> [--emulate] [--verbose] [--dot]
//! ```
//!
//! The scenario format is documented in
//! `sparcle_workloads::scenario_file`; a sample lives at
//! `examples/scenarios/smart_factory.scn`.

use sparcle::core::{Admission, SparcleSystem};
use sparcle::model::{Network, Placement, TaskGraph};
use sparcle::sim::{measure_saturated_rate, EmulatorConfig};
use sparcle::workloads::parse_scenario;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: sparcle <scenario.scn> [--emulate] [--verbose] [--dot]");
    eprintln!();
    eprintln!("  --emulate   also measure each placement's rate on the emulated testbed");
    eprintln!("  --verbose   print every CT host and TT route");
    eprintln!("  --dot       dump each primary placement as Graphviz DOT to stdout");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut path: Option<String> = None;
    let mut emulate = false;
    let mut verbose = false;
    let mut dot = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--emulate" => emulate = true,
            "--verbose" => verbose = true,
            "--dot" => dot = true,
            "--help" | "-h" => return usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}");
                return usage();
            }
            other => {
                if path.replace(other.to_owned()).is_some() {
                    eprintln!("only one scenario file, please");
                    return usage();
                }
            }
        }
    }
    let Some(path) = path else {
        return usage();
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let scenario = match parse_scenario(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "network: {} NCPs, {} links",
        scenario.network.ncp_count(),
        scenario.network.link_count()
    );
    let mut system = SparcleSystem::new(scenario.network.clone());
    for (name, app) in &scenario.apps {
        match system.submit(app.clone()) {
            Ok(Admission::Admitted(id)) => {
                println!("\napp `{name}` admitted as {id}");
            }
            Ok(Admission::Rejected(reason)) => {
                println!("\napp `{name}` REJECTED: {reason:?}");
                continue;
            }
            Err(e) => {
                eprintln!("app `{name}` is malformed for this network: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    for gr in system.gr_apps() {
        println!(
            "\n[GR ] {}  guarantees {:.3} units/s ({} path(s), capacity reserved {:.3}), min-rate availability {:.4}",
            gr.app.graph().name(),
            gr.guaranteed_rate(),
            gr.paths.len(),
            gr.reserved_rate(),
            gr.min_rate_availability
        );
        if verbose {
            for (k, (path, rate)) in gr.paths.iter().enumerate() {
                println!("  path {k} ({rate:.3} units/s):");
                describe_placement(&path.placement, gr.app.graph(), system.network(), "    ");
            }
        }
        if emulate {
            for (k, (path, _)) in gr.paths.iter().enumerate() {
                let report = measure_saturated_rate(
                    system.network(),
                    gr.app.graph(),
                    &path.placement,
                    &EmulatorConfig::default(),
                );
                println!(
                    "  path {k} emulated max rate: {:.3} (analytic {:.3})",
                    report.measured_rate, report.analytic_rate
                );
            }
        }
    }
    for be in system.be_apps() {
        println!(
            "\n[BE ] {}  priority {}  allocated {:.3} units/s over {} path(s){}",
            be.app.graph().name(),
            be.priority,
            be.allocated_rate,
            be.paths.len(),
            match be.availability {
                Some(a) => format!(", availability {a:.4}"),
                None => String::new(),
            }
        );
        if verbose {
            for (k, path) in be.paths.iter().enumerate() {
                println!("  path {k} (standalone {:.3} units/s):", path.rate);
                describe_placement(&path.placement, be.app.graph(), system.network(), "    ");
            }
        }
        if emulate {
            let report = measure_saturated_rate(
                system.network(),
                be.app.graph(),
                &be.paths[0].placement,
                &EmulatorConfig::default(),
            );
            println!(
                "  primary path emulated max rate: {:.3} (analytic {:.3})",
                report.measured_rate, report.analytic_rate
            );
        }
    }
    if !system.be_apps().is_empty() {
        println!(
            "\nBE utility Σ P log x = {:.4}; total GR reservation = {:.3} units/s",
            system.be_utility(),
            system.total_gr_rate()
        );
    }
    if dot {
        for gr in system.gr_apps() {
            println!("\n# DOT: {} (primary path)", gr.app.graph().name());
            print!(
                "{}",
                sparcle::model::dot::placement_dot(
                    gr.app.graph(),
                    system.network(),
                    &gr.paths[0].0.placement
                )
            );
        }
        for be in system.be_apps() {
            println!("\n# DOT: {} (primary path)", be.app.graph().name());
            print!(
                "{}",
                sparcle::model::dot::placement_dot(
                    be.app.graph(),
                    system.network(),
                    &be.paths[0].placement
                )
            );
        }
    }
    ExitCode::SUCCESS
}

fn describe_placement(placement: &Placement, graph: &TaskGraph, network: &Network, indent: &str) {
    for (ct, host) in placement.placed_cts() {
        println!(
            "{indent}{:<16} -> {}",
            graph.ct(ct).name(),
            network.ncp(host).name()
        );
    }
    for (tt, route) in placement.routed_tts() {
        if route.is_empty() {
            println!("{indent}{:<16} (local)", graph.tt(tt).name());
        } else {
            let hops: Vec<&str> = route.iter().map(|&l| network.link(l).name()).collect();
            println!(
                "{indent}{:<16} over [{}]",
                graph.tt(tt).name(),
                hops.join(", ")
            );
        }
    }
}
