//! SPARCLE: network-aware scheduling for stream processing applications
//! over dispersed computing networks.
//!
//! This is the facade crate of the SPARCLE workspace — a from-scratch
//! reproduction of *SPARCLE: Stream Processing Applications over Dispersed
//! Computing Networks* (ICDCS 2020). It re-exports the public API of every
//! member crate:
//!
//! * [`model`] — task graphs, networks, placements, capacities.
//! * [`core`] — Algorithm 1 (widest-path routing), Algorithm 2
//!   (dynamic-ranking task assignment), multi-path extraction, and the
//!   full SPARCLE system pipeline (admission control + allocation).
//! * [`alloc`] — the proportional-fair rate allocator for problem (4),
//!   priority-share capacity prediction (eq. 6), and availability
//!   analysis for BE and GR applications.
//! * [`baselines`] — the comparison algorithms of §V: T-Storm, VNE,
//!   HEFT, Greedy Sorted/Random, Random, cloud-only, and exhaustive
//!   optimal search.
//! * [`sim`] — a discrete-event queueing simulator, the emulated
//!   testbed of Figure 4, failure injection, and the energy model.
//! * [`workloads`] — generators for the paper's task graphs, network
//!   topologies, bottleneck scenarios, arrival traces, and the
//!   face-detection workload.
//! * [`runtime`] — the online churn runtime: a deterministic control
//!   plane driving a live system through arrivals, departures, element
//!   failures, and capacity fluctuation, with pluggable reconcile
//!   policies and an SLO ledger.
//! * [`service`] — the admission service plane: a long-running loop
//!   that coalesces placement requests into micro-batched transactions
//!   (one warm solve per window), answers what-if probes from an
//!   immutable state snapshot, and sheds load under backpressure.
//!
//! # Quickstart
//!
//! ```
//! use sparcle::core::DynamicRankingAssigner;
//! use sparcle::model::QoeClass;
//! use sparcle::workloads::{face_detection_app, testbed_network};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let network = testbed_network(10.0e6); // 10 Mbps field bandwidth
//! let app = face_detection_app(QoeClass::best_effort(1.0))?;
//! let assigner = DynamicRankingAssigner::new();
//! let path = assigner.assign(&app, &network, &network.capacity_map())?;
//! println!(
//!     "processing rate: {:.3} images/s via {} elements",
//!     path.rate,
//!     path.placement.elements_used(&network).len()
//! );
//! # Ok(())
//! # }
//! ```

pub use sparcle_alloc as alloc;
pub use sparcle_baselines as baselines;
pub use sparcle_core as core;
pub use sparcle_model as model;
pub use sparcle_runtime as runtime;
pub use sparcle_service as service;
pub use sparcle_sim as sim;
pub use sparcle_workloads as workloads;
