//! Sequence helpers, mirroring `rand::seq`.

use crate::{Rng, RngCore};

/// Slice extensions: uniform element choice and Fisher–Yates shuffle.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Uniformly random element, or `None` for an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*v.choose(&mut rng).unwrap() as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
