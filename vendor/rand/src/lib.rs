//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network and no vendored crates.io
//! registry, so this workspace ships the small slice of the `rand 0.8`
//! API it actually uses, implemented over xoshiro256++ (public-domain
//! algorithm by Blackman & Vigna) seeded via SplitMix64.
//!
//! Determinism is the only contract: the same seed always yields the
//! same stream on every platform and thread count. Streams are NOT
//! compatible with upstream `rand`'s `StdRng` — all seeded fixtures in
//! this workspace were (re)baselined against this implementation.

#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// Low-level uniform bit generation, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion
    /// (every bit of the seed affects every word of the state).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut sm);
            let bytes = word.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32` in `[0, 1)`, integers over their full range).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `u64` bits → `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                self.start.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
                i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64);

/// Unbiased uniform integer in `[0, bound)` by rejection (Lemire).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0);
    // Rejection zone keeps the multiply-shift unbiased.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let hi = ((x as u128 * bound as u128) >> 64) as u64;
        let lo = (x as u128 * bound as u128) as u64;
        if lo >= threshold {
            return hi;
        }
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let u = unit_f64(rng.next_u64());
        let v = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on `end`; fold it back.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty gen_range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty gen_range");
        let u: f32 = f32::sample(rng);
        let v = self.start + u * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = rng.gen_range(-2.0..3.5);
            assert!((-2.0..3.5).contains(&y));
            let z: usize = rng.gen_range(0..=4);
            assert!(z <= 4);
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn uniform_int_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.gen_range(0usize..5)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts {counts:?}");
        }
    }
}
