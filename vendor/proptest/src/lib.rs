//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the slice of proptest it uses: [`Strategy`] sampling (ranges,
//! tuples, [`Just`], `prop_map`/`prop_flat_map`/`prop_filter`,
//! [`collection::vec`], `prop_oneof!`) and the [`proptest!`] /
//! `prop_assert!` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its test name, case index,
//!   and seed; re-running is fully deterministic, so the failing input
//!   can be reproduced by the same binary.
//! * **Case count**: `PROPTEST_CASES` (env) *overrides* the per-block
//!   `ProptestConfig::with_cases` value, so CI's nightly tier can raise
//!   coverage without touching source.
//! * Generation is driven by the workspace's vendored xoshiro `StdRng`;
//!   `proptest-regressions` files from upstream are not understood.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

pub mod collection;
pub mod strategy;

pub use strategy::{Just, Strategy};

/// Everything a `proptest!` test file needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestCaseError,
    };
}

/// Per-block test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to generate per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property (produced by `prop_assert!`).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// FNV-1a, used to derive a per-property base seed from its name.
fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Driver behind the [`proptest!`] macro: runs `case` for each case
/// index with a deterministic per-case RNG, reporting name/index/seed on
/// failure. Not intended to be called directly.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(config.cases);
    let base = name_seed(name);
    for i in 0..u64::from(cases) {
        let seed = base ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(seed);
        match catch_unwind(AssertUnwindSafe(|| case(&mut rng))) {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                panic!("property '{name}' failed at case {i}/{cases} (seed {seed:#x}): {e}")
            }
            Err(payload) => {
                eprintln!("property '{name}' panicked at case {i}/{cases} (seed {seed:#x})");
                resume_unwind(payload);
            }
        }
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples its arguments [`ProptestConfig::cases`]
/// times (see crate docs for the `PROPTEST_CASES` override).
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            // Build each strategy once; sample left-to-right every case.
            let strategies = ($($strat,)+);
            $crate::run_cases(&config, stringify!($name), |proptest_rng| {
                #[allow(irrefutable_let_patterns)]
                let ($($pat,)+) = $crate::strategy::sample_args(&strategies, proptest_rng);
                $body
                Ok(())
            });
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)) => {};
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property, failing the case (with
/// formatted context) rather than panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// `prop_assert!` for equality, printing both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// `prop_assert!` for inequality, printing both sides.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $( $crate::strategy::OneOf::case($strat) ),+
        ])
    };
}
