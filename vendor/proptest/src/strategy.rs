//! Value-generation strategies (sampling only — no shrinking).

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating random values of one type.
///
/// Upstream proptest builds a lazy value *tree* to support shrinking;
/// this vendored stand-in samples concrete values directly, which keeps
/// the combinator API identical at the call sites this workspace uses.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds from
    /// it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects values failing `pred`, resampling (up to an internal
    /// retry bound). `reason` is reported if the filter starves.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn sample(&self, rng: &mut StdRng) -> V {
        (**self).sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn sample(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter starved after 1000 rejections: {}", self.reason);
    }
}

/// Uniform choice among same-valued strategies (`prop_oneof!`).
pub struct OneOf<V> {
    cases: Vec<BoxedStrategy<V>>,
}

impl<V> std::fmt::Debug for OneOf<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "OneOf({} cases)", self.cases.len())
    }
}

impl<V> OneOf<V> {
    /// Builds the choice from boxed branches (see `prop_oneof!`).
    pub fn new(cases: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!cases.is_empty(), "prop_oneof! needs at least one case");
        OneOf { cases }
    }

    /// Boxes one branch.
    pub fn case<S>(strategy: S) -> BoxedStrategy<V>
    where
        S: Strategy<Value = V> + 'static,
    {
        Box::new(strategy)
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn sample(&self, rng: &mut StdRng) -> V {
        let idx = rng.gen_range(0..self.cases.len());
        self.cases[idx].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                // Left-to-right, matching upstream's field order.
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
}

/// Samples a tuple of strategies by reference — the driver behind the
/// `proptest!` macro's argument binding.
pub fn sample_args<T: Strategy>(strategies: &T, rng: &mut StdRng) -> T::Value {
    strategies.sample(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_and_combinators_sample_in_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        let strat = (1usize..=5)
            .prop_flat_map(|n| (Just(n), crate::collection::vec(0.0f64..1.0, n)))
            .prop_map(|(n, v)| (n, v.len()));
        for _ in 0..500 {
            let (n, len) = strat.sample(&mut rng);
            assert_eq!(n, len);
            assert!((1..=5).contains(&n));
        }
    }

    #[test]
    fn oneof_hits_every_branch() {
        let mut rng = StdRng::seed_from_u64(2);
        let strat = OneOf::new(vec![
            OneOf::case(Just(0u8)),
            OneOf::case(Just(1u8)),
            OneOf::case((2u8..4).prop_map(|x| x)),
        ]);
        let mut seen = [false; 4];
        for _ in 0..400 {
            seen[strat.sample(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn filter_rejects() {
        let mut rng = StdRng::seed_from_u64(9);
        let strat = (0u32..100).prop_filter("even", |x| x % 2 == 0);
        for _ in 0..200 {
            assert_eq!(strat.sample(&mut rng) % 2, 0);
        }
    }
}
