//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Acceptable size arguments for [`fn@vec`]: a fixed length, a half-open
/// range, or an inclusive range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        if self.lo >= self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..=self.hi)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`fn@vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lengths_track_the_size_argument() {
        let mut rng = StdRng::seed_from_u64(7);
        let fixed = vec(0u32..10, 4usize);
        assert_eq!(fixed.sample(&mut rng).len(), 4);
        let ranged = vec(0u32..10, 1..5usize);
        for _ in 0..100 {
            let v = ranged.sample(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }
}
