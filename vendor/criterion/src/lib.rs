//! Offline stand-in for the `criterion` crate.
//!
//! Supplies the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple calibrated timing loop
//! instead of criterion's statistical machinery.
//!
//! Command-line behavior:
//!
//! * `--test` runs every benchmark exactly once (CI smoke mode);
//! * `--quick` shortens the measurement window;
//! * a bare positional argument filters benchmarks by substring;
//! * `--bench`, `--color`, and other harness flags are ignored.
//!
//! Results are printed as `name ... time: <median> ns/iter` lines.

#![warn(missing_docs)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers resolve.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Calibrated timing (default).
    Measure { quick: bool },
    /// Run each benchmark body once and report nothing (`--test`).
    Test,
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            mode: Mode::Measure { quick: false },
            filter: None,
        }
    }
}

impl Criterion {
    /// Builds the driver from `std::env::args` (see crate docs).
    pub fn from_args() -> Self {
        let mut mode = Mode::Measure { quick: false };
        let mut filter = None;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => mode = Mode::Test,
                "--quick" => mode = Mode::Measure { quick: true },
                "--bench" | "--nocapture" => {}
                s if s.starts_with("--") => {
                    // Unknown harness flag; skip a value-looking follower.
                    if !s.contains('=') {
                        let _ = args.next();
                    }
                }
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { mode, filter }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        run_one(self.mode, &self.filter, &name, f);
        self
    }

    /// Prints the trailing summary (no-op in this stand-in).
    pub fn final_summary(&mut self) {}
}

/// A named collection of benchmarks sharing a prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under `<group>/<id>`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        run_one(self.criterion.mode, &self.criterion.filter, &full, f);
        self
    }

    /// Benchmarks `f` with an input value under `<group>/<id>`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        run_one(self.criterion.mode, &self.criterion.filter, &full, |b| {
            f(b, input)
        });
        self
    }

    /// Accepted for API compatibility; sampling here is time-based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier (`BenchmarkId::from_parameter(n)` etc.).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `<function>/<parameter>` style id.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    /// Median nanoseconds per iteration, filled by `iter`.
    ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Times `routine` (or runs it once in `--test` mode).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.mode == Mode::Test {
            std_black_box(routine());
            return;
        }
        let quick = matches!(self.mode, Mode::Measure { quick: true });
        let target = if quick {
            Duration::from_millis(30)
        } else {
            Duration::from_millis(200)
        };
        // Calibrate: find an iteration count taking ≥ ~1/10 the target.
        let mut n: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..n {
                std_black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= target / 10 || n >= 1 << 30 {
                break elapsed.as_nanos() as f64 / n as f64;
            }
            n = n.saturating_mul(
                ((target.as_nanos() as u64 / 5) / (elapsed.as_nanos().max(1) as u64)).clamp(2, 100),
            );
        };
        // Measure: several samples of the calibrated batch; keep the median.
        let mut samples = Vec::with_capacity(7);
        samples.push(per_iter);
        for _ in 0..6 {
            let start = Instant::now();
            for _ in 0..n {
                std_black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / n as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = Some(samples[samples.len() / 2]);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(mode: Mode, filter: &Option<String>, name: &str, mut f: F) {
    if let Some(needle) = filter {
        if !name.contains(needle.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher {
        mode,
        ns_per_iter: None,
    };
    f(&mut bencher);
    match (mode, bencher.ns_per_iter) {
        (Mode::Test, _) => println!("test {name} ... ok"),
        (_, Some(ns)) => {
            let (value, unit) = if ns >= 1e9 {
                (ns / 1e9, "s")
            } else if ns >= 1e6 {
                (ns / 1e6, "ms")
            } else if ns >= 1e3 {
                (ns / 1e3, "µs")
            } else {
                (ns, "ns")
            };
            println!("{name:<55} time: {value:>10.3} {unit}/iter");
        }
        (_, None) => println!("{name:<55} (no measurement)"),
    }
}

/// Groups benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            mode: Mode::Measure { quick: true },
            ns_per_iter: None,
        };
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.ns_per_iter.expect("measured") > 0.0);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut b = Bencher {
            mode: Mode::Test,
            ns_per_iter: None,
        };
        let mut calls = 0;
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(b.ns_per_iter.is_none());
    }
}
