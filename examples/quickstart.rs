//! Quickstart: place one stream processing application on a small
//! dispersed computing network and inspect the result.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use sparcle::core::DynamicRankingAssigner;
use sparcle::model::{Application, NetworkBuilder, QoeClass, ResourceVec, TaskGraphBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the application: a three-stage video analytics
    //    pipeline. Requirements are per data unit (here: per frame).
    let mut tb = TaskGraphBuilder::new();
    tb.name("video-analytics");
    let camera = tb.add_ct("camera", ResourceVec::new());
    let decode = tb.add_ct("decode", ResourceVec::cpu(400.0)); // mega-cycles/frame
    let detect = tb.add_ct("detect", ResourceVec::cpu(1_500.0));
    let alert = tb.add_ct("alert", ResourceVec::new());
    tb.add_tt("raw", camera, decode, 8.0)?; // megabits/frame
    tb.add_tt("frames", decode, detect, 2.0)?;
    tb.add_tt("events", detect, alert, 0.05)?;
    let graph = tb.build()?;

    // 2. Describe the network: a weak camera gateway, two edge boxes,
    //    and the operator's workstation.
    let mut nb = NetworkBuilder::new();
    nb.name("edge-site");
    let gateway = nb.add_ncp("gateway", ResourceVec::cpu(800.0)); // MHz
    let edge_a = nb.add_ncp("edge-a", ResourceVec::cpu(2_400.0));
    let edge_b = nb.add_ncp("edge-b", ResourceVec::cpu(3_200.0));
    let operator = nb.add_ncp("operator", ResourceVec::cpu(1_600.0));
    nb.add_link("wifi-a", gateway, edge_a, 40.0)?; // Mbps
    nb.add_link("wifi-b", gateway, edge_b, 25.0)?;
    nb.add_link("lan", edge_a, operator, 100.0)?;
    nb.add_link("lan2", edge_b, operator, 100.0)?;
    let network = nb.build()?;

    // 3. The camera and the alert consumer live on fixed hosts.
    let app = Application::new(
        graph,
        QoeClass::best_effort(1.0),
        [(camera, gateway), (alert, operator)],
    )?;

    // 4. Run SPARCLE's dynamic-ranking task assignment (Algorithm 2).
    let assigner = DynamicRankingAssigner::new();
    let path = assigner.assign(&app, &network, &network.capacity_map())?;

    println!("maximum stable processing rate: {:.2} frames/s", path.rate);
    println!("placement:");
    for (ct, host) in path.placement.placed_cts() {
        println!(
            "  {:<8} -> {}",
            app.graph().ct(ct).name(),
            network.ncp(host).name()
        );
    }
    for (tt, route) in path.placement.routed_tts() {
        let hops: Vec<&str> = route.iter().map(|&l| network.link(l).name()).collect();
        println!(
            "  {:<8} over [{}]",
            app.graph().tt(tt).name(),
            hops.join(", ")
        );
    }
    Ok(())
}
