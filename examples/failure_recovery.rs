//! Multi-path provisioning against element failures.
//!
//! Extracts several task assignment paths for one application
//! (Algorithm 2 on residual capacities), computes the exact availability
//! of every prefix analytically (inclusion–exclusion over shared
//! elements), and cross-checks with epoch-based failure injection —
//! Figure 10 of the paper, as a library walkthrough.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example failure_recovery
//! ```

use sparcle::alloc::PathAvailability;
use sparcle::core::{assign_multipath, DynamicRankingAssigner};
use sparcle::model::{
    Application, LinkDirection, NetworkBuilder, QoeClass, ResourceVec, TaskGraphBuilder,
};
use sparcle::sim::{FailurePath, FailureSim};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A drone-swarm relay network: every link is flaky (3 %).
    let mut nb = NetworkBuilder::new();
    let base = nb.add_ncp("base", ResourceVec::cpu(1_000.0));
    let mut relays = Vec::new();
    for i in 0..5 {
        let r = nb.add_ncp(format!("relay{i}"), ResourceVec::cpu(600.0));
        nb.add_link_full(
            format!("up{i}"),
            base,
            r,
            50.0,
            LinkDirection::Undirected,
            0.03,
        )?;
        relays.push(r);
    }
    let ops = nb.add_ncp("ops", ResourceVec::cpu(800.0));
    for (i, &r) in relays.iter().enumerate() {
        nb.add_link_full(
            format!("down{i}"),
            r,
            ops,
            50.0,
            LinkDirection::Undirected,
            0.03,
        )?;
    }
    let network = nb.build()?;

    // Telemetry pipeline: compress → analyze.
    let mut tb = TaskGraphBuilder::new();
    let src = tb.add_ct("telemetry", ResourceVec::new());
    let compress = tb.add_ct("compress", ResourceVec::cpu(120.0));
    let analyze = tb.add_ct("analyze", ResourceVec::cpu(200.0));
    let sink = tb.add_ct("ops-console", ResourceVec::new());
    tb.add_tt("raw", src, compress, 12.0)?;
    tb.add_tt("packed", compress, analyze, 3.0)?;
    tb.add_tt("insights", analyze, sink, 0.5)?;
    let app = Application::new(
        tb.build()?,
        QoeClass::best_effort(1.0),
        [(src, base), (sink, ops)],
    )?;

    let (paths, _) = assign_multipath(
        &DynamicRankingAssigner::new(),
        &app,
        &network,
        &network.capacity_map(),
        4,
        1e-6,
    );
    println!("extracted {} task assignment paths", paths.len());

    let mut analyzer = PathAvailability::new();
    let mut injected = Vec::new();
    for (k, path) in paths.iter().enumerate() {
        let elements = path.placement.elements_used(&network);
        analyzer.add_path(&network, elements.iter().copied(), path.rate)?;
        injected.push(FailurePath {
            elements,
            rate: path.rate,
        });
        let analytic = analyzer.any_working()?;
        let measured = FailureSim::new(100_000, 7)
            .run(&network, &injected, None)
            .availability;
        println!(
            "  with {} path(s): rate {:.2}/s each-new {:.2}, availability analytic {:.4} vs injected {:.4}",
            k + 1,
            injected.iter().map(|p| p.rate).sum::<f64>(),
            path.rate,
            analytic,
            measured,
        );
    }

    // How much rate survives failures, on average?
    let stats = FailureSim::new(100_000, 8).run(&network, &injected, Some(2.0));
    println!(
        "\nmean surviving rate {:.2}/s; P(rate >= 2.0) = {:.4}",
        stats.mean_rate, stats.min_rate_availability
    );
    Ok(())
}
