//! The paper's flagship scenario: offloading a face-detection stream
//! pipeline over the Figure 4 testbed, sweeping the field bandwidth.
//!
//! Shows the crossover the paper highlights: with scarce field
//! bandwidth dispersed computing crushes the cloud; with moderate
//! bandwidth SPARCLE *chooses* the cloud; with plentiful bandwidth a
//! hybrid split beats both.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example face_detection_offload
//! ```

use sparcle::baselines::{Assigner, CloudAssigner};
use sparcle::core::DynamicRankingAssigner;
use sparcle::model::QoeClass;
use sparcle::sim::{measure_saturated_rate, EmulatorConfig};
use sparcle::workloads::face_detection::{face_detection_app, testbed_network, CLOUD};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = face_detection_app(QoeClass::best_effort(1.0))?;
    let sparcle = DynamicRankingAssigner::new();
    let cloud = CloudAssigner::new(CLOUD);

    println!("field BW | SPARCLE (analytic/emulated) | cloud | SPARCLE placement");
    println!("---------+-----------------------------+-------+------------------");
    for bw in [0.5, 1.0, 2.0, 5.0, 10.0, 15.0, 22.0, 50.0] {
        let network = testbed_network(bw);
        let caps = network.capacity_map();
        let ours = sparcle.assign(&app, &network, &caps)?;
        let theirs = Assigner::assign(&cloud, &app, &network, &caps)?;
        let emulated = measure_saturated_rate(
            &network,
            app.graph(),
            &ours.placement,
            &EmulatorConfig::default(),
        );
        // Where did the compute stages land?
        let hosts: Vec<String> = app
            .graph()
            .ct_ids()
            .filter(|&ct| !app.graph().ct(ct).requirement().is_zero())
            .map(|ct| {
                let host = ours.placement.ct_host(ct).expect("complete");
                network.ncp(host).name().to_owned()
            })
            .collect();
        println!(
            "{:>7.1}  | {:.3} / {:.3}               | {:.3} | [{}]",
            bw,
            ours.rate,
            emulated.measured_rate,
            theirs.rate,
            hosts.join(", ")
        );
    }
    println!(
        "\nNote the regimes: all-field at low bandwidth, all-cloud in the middle,\n\
         cloud+field split at high bandwidth — Figure 6 of the paper."
    );
    Ok(())
}
