//! Multi-tenant scheduling: Guaranteed-Rate reservations next to
//! prioritized Best-Effort applications, through the full SPARCLE
//! system pipeline (Figure 3).
//!
//! A factory edge cluster hosts (1) a safety-critical defect scanner
//! that needs 2 items/s guaranteed 97 % of the time (its console sits
//! behind a single 1 %-flaky link, capping any schedule at 99 %),
//! (2) a gold-tier
//! dashboard, and (3) a best-effort archival job at half the
//! dashboard's priority. Watch admission control reserve capacity for
//! the GR application and the proportional-fair allocator split the
//! rest 2:1.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example multi_tenant_qoe
//! ```

use sparcle::core::SparcleSystem;
use sparcle::model::{Application, NetworkBuilder, QoeClass, ResourceVec, TaskGraphBuilder};

fn pipeline(
    name: &str,
    cycles: &[f64],
    bits: f64,
    qoe: QoeClass,
    src: sparcle::model::NcpId,
    dst: sparcle::model::NcpId,
) -> Result<Application, Box<dyn std::error::Error>> {
    let mut tb = TaskGraphBuilder::new();
    tb.name(name);
    let source = tb.add_ct("source", ResourceVec::new());
    let mut prev = source;
    for (i, &c) in cycles.iter().enumerate() {
        let ct = tb.add_ct(format!("stage{i}"), ResourceVec::cpu(c));
        tb.add_tt(format!("tt{i}"), prev, ct, bits)?;
        prev = ct;
    }
    let sink = tb.add_ct("sink", ResourceVec::new());
    tb.add_tt("out", prev, sink, bits / 20.0)?;
    Ok(Application::new(
        tb.build()?,
        qoe,
        [(source, src), (sink, dst)],
    )?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A star-shaped factory network: PLC gateway + four edge servers.
    let mut nb = NetworkBuilder::new();
    let gw = nb.add_ncp("plc-gateway", ResourceVec::cpu(500.0));
    let mut edges = Vec::new();
    for i in 0..4 {
        let e = nb.add_ncp(format!("edge{i}"), ResourceVec::cpu(2_000.0));
        nb.add_link_full(
            format!("link{i}"),
            gw,
            e,
            80.0,
            sparcle::model::LinkDirection::Undirected,
            0.01, // links drop out 1 % of the time
        )?;
        edges.push(e);
    }
    let network = nb.build()?;
    let mut system = SparcleSystem::new(network);

    // 1. The safety-critical defect scanner (GR): 2 items/s, 97 % of
    //    the time.
    let scanner = pipeline(
        "defect-scanner",
        &[300.0, 500.0],
        10.0,
        QoeClass::guaranteed_rate(2.0, 0.97),
        gw,
        edges[0],
    )?;
    let adm = system.submit(scanner)?;
    println!("defect-scanner admission: {adm:?}");
    let gr = &system.gr_apps()[0];
    println!(
        "  guarantees {:.2} items/s over {} path(s), min-rate availability {:.4}",
        gr.guaranteed_rate(),
        gr.paths.len(),
        gr.min_rate_availability
    );

    // 2. The dashboard (BE, priority 2) and the archiver (BE, priority 1).
    let dashboard = pipeline(
        "dashboard",
        &[200.0, 400.0],
        8.0,
        QoeClass::best_effort(2.0),
        gw,
        edges[1],
    )?;
    let archiver = pipeline(
        "archiver",
        &[250.0, 350.0],
        8.0,
        QoeClass::best_effort(1.0),
        gw,
        edges[2],
    )?;
    system.submit(dashboard)?;
    system.submit(archiver)?;

    println!("\nbest-effort allocation (proportional fair, problem (4)):");
    for be in system.be_apps() {
        println!(
            "  {:<10} priority {:.0}  ->  {:.3} items/s",
            be.app.graph().name(),
            be.priority,
            be.allocated_rate
        );
    }
    println!(
        "\nBE utility Σ P log x = {:.3}; total GR reservation = {:.2} items/s",
        system.be_utility(),
        system.total_gr_rate()
    );

    // 3. An over-greedy GR request bounces off admission control.
    let greedy = pipeline(
        "firehose",
        &[4_000.0, 4_000.0],
        200.0,
        QoeClass::guaranteed_rate(50.0, 0.999),
        gw,
        edges[3],
    )?;
    let adm = system.submit(greedy)?;
    println!("\nfirehose admission: {adm:?} (rejected, state untouched)");
    Ok(())
}
